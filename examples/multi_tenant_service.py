"""Multi-tenant serving: namespaces, quotas, LRU activation, replicas.

One `repro.serve.Service` hosts many isolated clustering namespaces
over a single durable tenant-stamped log. This example runs a zipfian
multi-tenant stream through a capped, quota'd service and shows:

* per-tenant ingest through cheap `TenantHandle`s;
* typed `QuotaExceeded` rejections (and how a caller backs off);
* LRU activation — only the hottest tenants stay resident, the rest
  checkpoint out and reload lazily with nothing lost;
* a tenant-filtered read replica catching up from the shared log;
* per-tenant and service-wide stats, plus shared-log compaction.

    python examples/multi_tenant_service.py
"""

from pathlib import Path
from tempfile import TemporaryDirectory

from repro import DynamicC, QuotaExceeded, Service
from repro.clustering.objectives import DBIndexObjective
from repro.data import OperationMix, tenant_stream
from repro.data.generators import generate_access

dataset = generate_access(n_profiles=8, n_records=400, seed=3)


def engine_factory():
    return DynamicC(dataset.graph(), DBIndexObjective(), seed=0)


# A skewed multi-tenant stream: a few hot tenants dominate, and each
# tenant hammers its own hot keys (ids are per-tenant namespaces, so
# tenants reuse them freely).
stream = tenant_stream(
    dataset,
    n_tenants=6,
    n_ops=600,
    tenant_skew=1.2,
    key_skew=1.1,
    mix=OperationMix(add=0.60, remove=0.15, update=0.25),
    seed=7,
)

with TemporaryDirectory() as scratch:
    service = Service.open(
        engine_factory=engine_factory,
        n_shards=2,
        batch_max_ops=32,
        train_rounds=2,
        root_dir=Path(scratch) / "state",  # shared log + per-tenant checkpoints
        keep_checkpoints=1,                # retain only each tenant's newest
        max_resident_tenants=3,            # LRU: at most 3 live engine pools
        quota_ops_per_s=500.0,             # per-tenant token bucket
        quota_burst=200,
        quota_max_objects=400,             # per-tenant live-object ceiling
    )
    with service:
        # --- ingest with admission control ---------------------------
        rejected = 0
        for tenant, op in stream:
            try:
                service.tenant(tenant).ingest([op])
            except QuotaExceeded as exc:
                rejected += 1  # typed: exc.reason, exc.limit, exc.retry_after_s
        service.flush()  # cut every tenant's pending partial batch

        stats = service.stats()
        print(
            f"{stats['ops_total']} ops accepted, {rejected} rejected; "
            f"{stats['resident_tenants']}/{stats['known_tenants']} tenants "
            f"resident (cap {stats['max_resident_tenants']}), "
            f"{stats['evictions_total']} evictions"
        )

        # --- isolation: handles survive eviction ---------------------
        # tenant-005 is cold and was likely evicted; touching it
        # reloads the pool from its checkpoint + the shared-log suffix.
        cold = service.tenant("tenant-005")
        print(
            f"{cold.name}: resident={cold.resident} before touch, "
            f"{cold.num_objects()} objects after lazy reload"
        )

        # --- a tenant-filtered read replica --------------------------
        hot = service.tenant("tenant-000")
        replica = hot.add_replica(name="hot-follower")
        service.sync()  # ship the shared log; the follower applies only
        #                 tenant-000's stamped slice
        assert replica.partition() == hot.partition()
        print(
            f"replica {replica.name!r} caught up: "
            f"lag {replica.lag()['seq_delta']} seqs behind the primary"
        )

        # --- durability housekeeping ---------------------------------
        # The log can only be truncated up to the floor every tenant's
        # oldest retained checkpoint (and every replica cursor) allows:
        # flush + checkpoint each namespace, then compact.
        for entry in service.tenants():
            service.tenant(entry["tenant"]).flush()
            service.tenant(entry["tenant"]).checkpoint()
        report = service.compact()
        print(
            f"compaction: truncated through seq {report['truncated_through']} "
            f"of {stats['oplog']['last_seq']}"
        )

        # Handles stay valid across evictions: the housekeeping loop
        # above pushed tenant-000 out of the resident pool, but reading
        # through its handle just reloads it.
        print(
            f"{hot.name}: resident={hot.resident}, {hot.num_objects()} "
            f"objects in {len(hot.clusters())} clusters after reload"
        )

print("done — one front door, six isolated namespaces")
