"""Serving DynamicC as a durable, sharded streaming service.

Ingests a dynamic workload as an event stream, queries memberships,
takes a checkpoint, simulates a crash, and recovers:

    python examples/streaming_service.py
"""

import pathlib
import tempfile

from repro.clustering.objectives import DBIndexObjective
from repro.core import DynamicC
from repro.data.generators import generate_access
from repro.data.workload import OperationMix, build_workload
from repro.stream import ClusteringService, StreamConfig

# ---------------------------------------------------------------------------
# 1. A workload, an engine factory, a durable two-shard service.
# ---------------------------------------------------------------------------
dataset = generate_access(n_profiles=8, n_records=500, seed=3)
workload = build_workload(
    dataset,
    initial_count=150,
    n_snapshots=8,
    mixes=OperationMix(add=0.14, remove=0.03, update=0.04),
    seed=2,
)
events = workload.event_stream()
print(f"workload: {len(workload.initial)} initial records, {len(events)} events total")


def factory():
    return DynamicC(dataset.graph(), DBIndexObjective(), seed=0)


state_dir = pathlib.Path(tempfile.mkdtemp(prefix="repro-stream-"))
config = StreamConfig(
    n_shards=2,
    batch_max_ops=48,
    train_rounds=2,
    oplog_path=state_dir / "oplog.jsonl",
    checkpoint_dir=state_dir / "checkpoints",
)
service = ClusteringService(factory, config)

# ---------------------------------------------------------------------------
# 2. Ingest most of the stream; each shard observes its first rounds with
#    the batch algorithm, trains, then serves predictions.
# ---------------------------------------------------------------------------
cut = (len(events) * 2) // 3
service.ingest(events[:cut])
service.checkpoint()  # snapshot all shard state, compact the oplog
service.ingest(events[cut : cut + 50])

stats = service.stats()
print(
    f"ingested {stats['events_ingested']} events in {stats['batches_applied']} rounds, "
    f"{stats['num_objects']} live objects in {stats['num_clusters']} clusters"
)
print(
    "per-shard (observed, predicted, mean round ms):",
    [
        (s["rounds_observed"], s["rounds_predicted"], round(s["round_latency"]["mean_s"] * 1e3, 1))
        for s in stats["shards"]
    ],
)

# ---------------------------------------------------------------------------
# 3. Crash. Only the oplog and the checkpoint survive.
# ---------------------------------------------------------------------------
service.close()
del service
print("crash! recovering from", state_dir)

service = ClusteringService.recover(factory, config)
service.ingest(events[cut + 50 :])
service.flush()

some_id = sorted(service.membership.live_ids())[0]
gcid = service.cluster_of(some_id)
print(f"recovered: object {some_id} lives in cluster {gcid} with {len(service.members(gcid))} members")
print(f"final: {service.num_objects()} objects, {len(service.clusters())} clusters, "
      f"throughput {service.stats()['throughput_events_per_s']:.0f} events/s")
