"""A tour of `repro.obs`: one recorder, every layer, two artifacts.

Runs a replicated DynamicC topology (durable primary, two read
replicas) with telemetry on, then walks what a single shared recorder
collected: span latency percentiles per pipeline stage, component
registries, replica freshness, the Prometheus exposition, and a Chrome
trace (load ``trace.json`` at ``chrome://tracing`` or ui.perfetto.dev —
primary and replica activity land on separate rows):

    python examples/observability_tour.py

Artifacts are written next to this script's temp state dir and their
paths printed at the end.
"""

import pathlib
import tempfile

from repro.clustering.objectives import DBIndexObjective
from repro.core import DynamicC
from repro.data.generators import generate_access
from repro.data.workload import OperationMix, build_workload
from repro.obs import Telemetry, write_metrics_json, write_metrics_prometheus
from repro.replica import ReplicatedClusteringService
from repro.stream import StreamConfig

# ---------------------------------------------------------------------------
# 1. One Telemetry instance, threaded through the whole topology.
#    StreamConfig(telemetry="on") would also work for a single service;
#    passing the *instance* is how primary, shipper and replicas share
#    one collection point (the replicated service does this for its
#    default replica configs automatically).
# ---------------------------------------------------------------------------
telemetry = Telemetry()

dataset = generate_access(n_profiles=8, n_records=500, seed=3)
workload = build_workload(
    dataset,
    initial_count=150,
    n_snapshots=8,
    mixes=OperationMix(add=0.14, remove=0.03, update=0.04),
    seed=2,
)
events = workload.event_stream()

def factory():
    return DynamicC(dataset.graph(), DBIndexObjective(), seed=0)

state_dir = pathlib.Path(tempfile.mkdtemp(prefix="repro-obs-"))
service = ReplicatedClusteringService(
    factory,
    StreamConfig(
        n_shards=2,
        batch_max_ops=48,
        train_rounds=2,
        oplog_path=state_dir / "primary" / "oplog.jsonl",
        checkpoint_dir=state_dir / "primary" / "checkpoints",
        fsync=True,  # so the trace shows where durability is paid
        telemetry=telemetry,
    ),
)
service.add_replica(name="replica-0")
service.add_replica(name="replica-1")

# ---------------------------------------------------------------------------
# 2. Drive the pipeline: burst ingest, replica catch-up, a checkpoint.
#    Every stage traces itself — nothing here mentions telemetry again.
# ---------------------------------------------------------------------------
burst = len(events) // 4
for start in range(0, len(events), burst):
    service.ingest(events[start : start + burst])
    service.sync()
service.flush()
service.sync()
service.checkpoint()
print(f"ran {len(events)} events through primary + 2 replicas\n")

# ---------------------------------------------------------------------------
# 3. What the recorder saw: per-stage latency percentiles, free with
#    every span site. span_seconds is a labeled histogram family — one
#    streaming p50/p95/p99 series per instrumented code path.
# ---------------------------------------------------------------------------
merged = service.stats()  # primary + shipper + replicas, one snapshot
families = merged["primary"]["telemetry"]["metrics"]["span_seconds"]
print(f"{'span':<24}{'count':>7}{'p50 ms':>10}{'p95 ms':>10}{'p99 ms':>10}")
for key, series in sorted(families.items()):
    name = key.split("=", 1)[1]
    print(
        f"{name:<24}{series['count']:>7}"
        f"{series['p50'] * 1e3:>10.2f}"
        f"{series['p95'] * 1e3:>10.2f}"
        f"{series['p99'] * 1e3:>10.2f}"
    )

# Replica freshness: clamped wall-clock staleness plus the skew-immune
# monotonic age of the last applied artifact.
print()
for lag in service.lag():
    print(
        f"{lag['name']}: seq_delta={lag['seq_delta']} "
        f"staleness={lag['staleness_s']:.3f}s "
        f"applied_age={lag['applied_age_s']:.3f}s"
    )

trace_snapshot = merged["primary"]["telemetry"]["trace"]
print(
    f"\ntracer: {trace_snapshot['spans_recorded']} spans recorded, "
    f"{trace_snapshot['spans_dropped']} dropped (bounded ring buffer)"
)

# ---------------------------------------------------------------------------
# 4. The artifact set: Prometheus text exposition of the *entire* merged
#    snapshot (every numeric leaf becomes a series — obs-native metrics
#    and plain stats() fields alike), the JSON snapshot, and the Chrome
#    trace.
# ---------------------------------------------------------------------------
write_metrics_json(state_dir / "metrics.json", merged)
write_metrics_prometheus(state_dir / "metrics.prom", merged)
telemetry.write_chrome_trace(state_dir / "trace.json")

prom_lines = (state_dir / "metrics.prom").read_text().splitlines()
print(f"\nmetrics.prom: {len(prom_lines)} series, e.g.")
for line in prom_lines[:4]:
    print(f"  {line}")
print("  ...")
print(
    f"\nartifacts:\n  {state_dir / 'metrics.json'}\n"
    f"  {state_dir / 'metrics.prom'}\n"
    f"  {state_dir / 'trace.json'}  <- load at ui.perfetto.dev"
)
service.close()
