"""Record linkage over a streaming person database (DB-index clustering).

The scenario from the paper's introduction: a database of person records
receives continuous inserts/updates/deletes; duplicate records must stay
grouped (entity resolution). We compare DynamicC against the Naive and
Greedy baselines, using the batch Hill-climbing result as ground truth:

    python examples/record_linkage_stream.py
"""

import time

from repro.clustering.baselines import GreedyIncremental, NaiveIncremental
from repro.clustering.batch import HillClimbing
from repro.clustering.objectives import DBIndexObjective
from repro.core import DynamicC
from repro.data.generators import generate_febrl
from repro.data.workload import OperationMix, build_workload
from repro.eval import print_table
from repro.eval.harness import (
    f1_against_reference,
    run_batch_per_round,
    run_incremental,
)

dataset = generate_febrl(n_originals=120, n_duplicates=240, distribution="uniform", seed=3)
workload = build_workload(
    dataset,
    initial_count=120,
    n_snapshots=7,
    mixes=OperationMix(add=0.15, remove=0.03, update=0.04),
    seed=11,
)
print(f"dataset: {len(dataset)} person records, "
      f"{workload.final_object_count()} live at the end")

start = time.perf_counter()
reference = run_batch_per_round(workload, lambda: HillClimbing(DBIndexObjective()))
print(f"batch ground truth computed in {time.perf_counter() - start:.1f}s")

bootstrap = lambda g: HillClimbing(DBIndexObjective()).cluster(g)
runs = {
    "naive": run_incremental(
        workload, lambda g: NaiveIncremental(g, threshold=0.4), bootstrap=bootstrap
    ),
    "greedy": run_incremental(
        workload, lambda g: GreedyIncremental(g, DBIndexObjective()), bootstrap=bootstrap
    ),
    "dynamicc": run_incremental(
        workload,
        lambda g: DynamicC(g, DBIndexObjective(), seed=0),
        bootstrap=bootstrap,
        train_rounds=3,
    ),
}

rows = []
for name, run in runs.items():
    metrics = f1_against_reference(run, reference)
    offset = 3 if name != "dynamicc" else 0  # align to prediction rounds
    scores = [m.f1 for m in metrics[offset:]]
    rows.append(
        [
            name,
            sum(scores) / len(scores),
            min(scores),
            sum(run.latencies()[offset:]),
        ]
    )
rows.append(["batch (truth)", 1.0, 1.0, sum(r.latency for r in reference.rounds[4:])])
print_table(
    ["method", "mean pair-F1", "min pair-F1", "total latency (s)"],
    rows,
    title="\nEntity resolution vs. batch ground truth (prediction rounds)",
)
