"""Quickstart: DynamicC on the paper's own running example + a tiny workload.

Walks through the complete life cycle on the 7-object example of
Figures 1–2, runs a small end-to-end dynamic workload, then serves the
same engine through the public front door — ``repro.serve.Service``:

    python examples/quickstart.py
"""

from repro import Clustering, CorrelationObjective, DynamicC, HillClimbing, SimilarityGraph
from repro.similarity.table import TableSimilarity

# ---------------------------------------------------------------------------
# 1. The paper's running example: seven objects, six similarity edges.
# ---------------------------------------------------------------------------
EDGES = {
    ("r1", "r7"): 1.0,
    ("r1", "r2"): 0.9,
    ("r2", "r3"): 0.9,
    ("r4", "r5"): 0.9,
    ("r4", "r6"): 0.8,
    ("r5", "r6"): 0.7,
}

graph = SimilarityGraph(TableSimilarity(EDGES))
ids = {}
for index, name in enumerate(["r1", "r2", "r3", "r4", "r5", "r6", "r7"], start=1):
    ids[name] = index
    graph.add_object(index, name)

objective = CorrelationObjective()

# Example 4.1's arithmetic: all-singletons scores F(L1) = 5.2 under Eq. (1).
singles = Clustering.singletons(graph)
print(f"F(singletons) = {objective.score(singles):.1f}   (paper Example 4.1: 5.2)")

# Batch clustering from scratch reaches the Figure 2 result
# {C'1 = {r2,r3}, C'2 = {r4,r5,r6}, C'3 = {r1,r7}}.
final = HillClimbing(objective).cluster(graph)
names = {v: k for k, v in ids.items()}
print(
    "Batch clustering:",
    sorted(sorted(names[o] for o in grp) for grp in final.as_partition()),
)

# ---------------------------------------------------------------------------
# 2. Dynamic scenario: r6 and r7 arrive. A trained DynamicC would predict
#    the merges/splits; here we run the full system on a real workload.
# ---------------------------------------------------------------------------
from repro.clustering.objectives import DBIndexObjective
from repro.data.generators import generate_cora
from repro.data.workload import OperationMix, build_workload

dataset = generate_cora(n_entities=40, n_duplicates=140, seed=7)
workload = build_workload(
    dataset,
    initial_count=80,
    n_snapshots=6,
    mixes=OperationMix(add=0.18, remove=0.03, update=0.03),
    seed=1,
)

graph = dataset.graph()
for obj_id, payload in workload.initial.items():
    graph.add_object(obj_id, payload)

dynamic = DynamicC(graph, DBIndexObjective(), seed=0)
dynamic.bootstrap(HillClimbing(DBIndexObjective()).cluster(graph))

# Training phase: observe the batch algorithm over the first 3 snapshots.
for snapshot in workload.snapshots[:3]:
    _, stats = dynamic.observe_round(
        added=snapshot.added, removed=snapshot.removed, updated=snapshot.updated
    )
    print("observed evolution:", stats.samples)
report = dynamic.train()
print(
    f"trained: merge θ={report.merge_theta:.3f} (recall {report.merge_recall:.2f}), "
    f"split θ={report.split_theta:.3f}"
)

# Prediction phase: the remaining snapshots are clustered by the model.
for snapshot in workload.snapshots[3:]:
    dynamic.apply_round(
        added=snapshot.added, removed=snapshot.removed, updated=snapshot.updated
    )
    stats = dynamic.last_round_stats
    print(
        f"round: {dynamic.clustering.num_clusters()} clusters, "
        f"{stats.merges_applied} merges, {stats.splits_applied} splits, "
        f"{stats.verifications} objective checks"
    )
print("done — DynamicC kept the clustering fresh without re-running the batch algorithm")

# ---------------------------------------------------------------------------
# 3. Serving it: the public front door is `repro.serve.Service`. One call
#    opens the whole stack — sharded engines, micro-batched rounds, and
#    (with root_dir=...) a durable tenant-stamped log — behind named
#    tenant handles. See examples/multi_tenant_service.py for quotas,
#    LRU activation and replicas.
# ---------------------------------------------------------------------------
from repro.serve import Service


def engine_factory():
    return DynamicC(dataset.graph(), DBIndexObjective(), seed=0)


with Service.open(engine_factory=engine_factory, n_shards=2, batch_max_ops=32) as svc:
    crm = svc.tenant("crm")
    crm.ingest(
        ("add", obj_id, payload) for obj_id, payload in workload.initial.items()
    )
    crm.flush()  # cut the pending partial batch as one round
    print(
        f"served: tenant {crm.name!r} holds {crm.num_objects()} objects "
        f"in {len(crm.clusters())} clusters"
    )

