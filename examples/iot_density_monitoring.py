"""IoT density monitoring: dynamic DBSCAN over streaming spatial readings.

The paper's motivating high-velocity scenario: sensors report 3-D
positions continuously (the Road-like workload); density clusters must
be kept current. DynamicC is augmented with DBSCAN (§7.2.1) — no
objective function exists, so predicted changes are verified by
core-point stability:

    python examples/iot_density_monitoring.py
"""

from repro.clustering.batch import DBSCAN
from repro.core import DBSCANBatchAdapter, DynamicCConfig, make_dynamic_dbscan
from repro.data.generators import generate_road
from repro.data.workload import OperationMix, build_workload
from repro.eval import print_table
from repro.eval.harness import (
    f1_against_reference,
    run_batch_per_round,
    run_incremental,
)

SIM_EPS, MIN_PTS = 0.37, 3

dataset = generate_road(n_roads=25, points_per_road=40, seed=5)
workload = build_workload(
    dataset,
    initial_count=400,
    n_snapshots=7,
    mixes=OperationMix(add=0.15, remove=0.02, update=0.03),
    seed=2,
)
print(f"spatial stream: {len(workload.initial)} initial readings, "
      f"{workload.final_object_count()} at the end")

reference = run_batch_per_round(workload, lambda: DBSCANBatchAdapter(SIM_EPS, MIN_PTS))
run = run_incremental(
    workload,
    lambda g: make_dynamic_dbscan(
        g, SIM_EPS, MIN_PTS, config=DynamicCConfig(candidate_scope="local"), seed=0
    ),
    bootstrap=lambda g: DBSCAN(SIM_EPS, MIN_PTS).run(g).clustering,
    train_rounds=2,
)

rows = []
for record, metrics in zip(run.predict_rounds(), f1_against_reference(run, reference)):
    batch_round = reference.rounds[record.index]
    rows.append(
        [
            record.index,
            record.num_clusters,
            batch_round.num_clusters,
            metrics.f1,
            record.latency,
            batch_round.latency,
        ]
    )
print_table(
    ["round", "clusters", "batch clusters", "pair-F1", "dynamic s", "batch s"],
    rows,
    title="\nDynamic DBSCAN vs per-round batch DBSCAN",
)
