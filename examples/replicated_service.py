"""Primary/replica DynamicC: oplog shipping, lagging reads, failover.

A durable primary ingests a dynamic workload in bursts while two read
replicas (one in-memory, one durable with sqlite storage) tail its
shipped operation log. Along the way: explicit lag before/after each
catch-up, membership equality after catch-up, a follower→primary
failover that keeps serving, and — after the log has been compacted —
a brand-new mailbox follower that joins from a shipped snapshot with
no access to the primary's state directories:

    python examples/replicated_service.py
"""

import pathlib
import tempfile

from repro.clustering.objectives import DBIndexObjective
from repro.core import DynamicC
from repro.data.generators import generate_access
from repro.data.workload import OperationMix, build_workload
from repro.replica import MailboxTransport, ReadReplica, ReplicatedClusteringService
from repro.stream import StreamConfig

# ---------------------------------------------------------------------------
# 1. A workload, an engine factory, a durable primary with two replicas.
# ---------------------------------------------------------------------------
dataset = generate_access(n_profiles=8, n_records=500, seed=3)
workload = build_workload(
    dataset,
    initial_count=150,
    n_snapshots=8,
    mixes=OperationMix(add=0.14, remove=0.03, update=0.04),
    seed=2,
)
events = workload.event_stream()
print(f"workload: {len(events)} events")

def factory():
    return DynamicC(dataset.graph(), DBIndexObjective(), seed=0)

state_dir = pathlib.Path(tempfile.mkdtemp(prefix="repro-replica-"))
service = ReplicatedClusteringService(
    factory,
    StreamConfig(
        n_shards=2,
        batch_max_ops=48,
        train_rounds=2,
        oplog_path=state_dir / "primary" / "oplog.jsonl",
        checkpoint_dir=state_dir / "primary" / "checkpoints",
    ),
)
service.add_replica(name="mem-replica")  # disposable, in-memory
service.add_replica(  # durable follower on sqlite storage: the promotion heir
    StreamConfig(
        n_shards=2,
        batch_max_ops=48,
        train_rounds=2,
        oplog_path=state_dir / "heir" / "oplog.sqlite",
        checkpoint_dir=state_dir / "heir" / "checkpoints",
        log_backend="sqlite",
        checkpoint_backend="sqlite",
    ),
    name="heir",
)

# ---------------------------------------------------------------------------
# 2. Ingest on the primary in bursts; replicas answer (stale) reads and
#    catch up on every sync().
# ---------------------------------------------------------------------------
burst = len(events) // 4
for start in range(0, len(events), burst):
    service.ingest(events[start : start + burst])
    # Two views of lag: the shipper knows how far each follower's cursor
    # trails the log; lag() is each replica's own (last-heard) view.
    behind = [s["behind"] for s in service.shipper.stats()]
    service.sync()
    after = [(lag["name"], lag["seq_delta"]) for lag in service.lag()]
    print(f"burst at {start:4d}: followers behind by {behind} ops -> after sync {after}")

service.flush()
service.sync()

# Reads round-robin over the replicas; membership equality after catch-up.
primary_live = service.primary.membership.live_ids()
assert all(r.service.membership.live_ids() == primary_live for r in service.replicas)
assert all(r.partition() == service.primary.partition() for r in service.replicas)
some_id = sorted(primary_live)[0]
print(
    f"caught up: {len(primary_live)} objects on all nodes; object {some_id} "
    f"has {len(service.members_of(some_id))} cluster peers (served by a replica)"
)

# ---------------------------------------------------------------------------
# 3. Failover: the durable follower becomes the primary (recover path),
#    the in-memory replica keeps tailing the new log, ingest continues.
# ---------------------------------------------------------------------------
service.checkpoint()
promoted = service.promote(1)  # "heir"
print(f"failover: new primary at seq {promoted.oplog.last_seq} (sqlite log)")

late_updates = [("update", some_id, dataset.records[0].payload)]
service.ingest(late_updates)
service.flush()
service.sync()
assert service.replicas[0].partition() == promoted.partition()
print(
    f"post-failover: {promoted.num_objects()} objects, "
    f"{len(promoted.clusters())} clusters, replica lag "
    f"{service.lag()[0]['seq_delta']} — membership equal on both nodes"
)

# ---------------------------------------------------------------------------
# 4. Compaction, then a late joiner: truncate the log through the newest
#    snapshot, and have a brand-new follower join anyway — the shipper
#    heals the missing prefix by shipping the checkpoint itself, so the
#    follower needs only the spool directory (never the primary's
#    checkpoint or oplog paths).
# ---------------------------------------------------------------------------
service.checkpoint()
report = service.compact()
print(
    f"compaction: log truncated through seq {report['truncated_through']}, "
    f"{report['reclaimed_bytes']} bytes reclaimed, {report['log_bytes']} left"
)

spool = state_dir / "spool"
service.shipper.attach(MailboxTransport(spool), from_seq=0)  # knows nothing yet
service.shipper.ship()  # gap at seq 0 → snapshot + suffix into the spool
joiner = ReadReplica(
    factory,
    StreamConfig(  # the joiner's own two directories, nothing shared
        n_shards=2,
        batch_max_ops=48,
        train_rounds=2,
        oplog_path=state_dir / "joiner" / "oplog.jsonl",
        checkpoint_dir=state_dir / "joiner" / "checkpoints",
    ),
    MailboxTransport(spool),
    name="late-joiner",
)
joiner.poll()
assert joiner.partition() == promoted.partition()
print(
    f"late joiner: bootstrapped from {joiner.snapshots_applied} shipped "
    f"snapshot to seq {joiner.received_seq}, lag {joiner.lag()['seq_delta']} "
    "— partition equal to the primary, via the spool alone"
)
joiner.close()
service.close()
