"""A tour of the live operational surface: HTTP endpoints, health,
structured logs, and freshness watermarks.

Boots a replicated DynamicC topology with ``obs_server=`` and scrapes
its own endpoints the way a monitoring stack would, printing what came
back at each step: the Prometheus exposition (watch the
``e2e_visibility_seconds{replica=...}`` quantiles — seconds from
primary ingest to queryable on each node), the health report behind
``/readyz``, and the structured log lines the service emitted along
the way. Then it breaks the oplog on purpose to show readiness flip to
503 while liveness stays 200:

    python examples/operational_surface.py

Pair it with the standalone follower for the cross-process version —
ship into a spool directory and run
``python -m repro.replica.follower --spool <dir> --listen 127.0.0.1:9101``
in another shell.
"""

import io
import json
import pathlib
import tempfile
import urllib.error
import urllib.request

from repro.clustering.objectives import DBIndexObjective
from repro.core import DynamicC
from repro.data.generators import generate_access
from repro.data.workload import OperationMix, build_workload
from repro.replica import ReplicatedClusteringService
from repro.stream import StreamConfig


def scrape(address, path):
    try:
        with urllib.request.urlopen(f"http://{address}{path}", timeout=10) as resp:
            return resp.status, resp.read().decode()
    except urllib.error.HTTPError as exc:  # 503 still carries a JSON body
        return exc.code, exc.read().decode()


dataset = generate_access(n_profiles=8, n_records=500, seed=3)
workload = build_workload(
    dataset,
    initial_count=150,
    n_snapshots=8,
    mixes=OperationMix(add=0.14, remove=0.03, update=0.04),
    seed=2,
)
events = workload.event_stream()


def factory():
    return DynamicC(dataset.graph(), DBIndexObjective(), seed=0)


# ---------------------------------------------------------------------------
# 1. obs_server="host:0" binds a free loopback port; log_stream turns on
#    structured JSON-lines logging (here into a buffer so the example
#    can show the lines; use sys.stderr in a real deployment).
# ---------------------------------------------------------------------------
log_lines = io.StringIO()
state_dir = pathlib.Path(tempfile.mkdtemp(prefix="repro-ops-"))
service = ReplicatedClusteringService(
    factory,
    StreamConfig(
        n_shards=2,
        batch_max_ops=48,
        train_rounds=2,
        oplog_path=state_dir / "oplog.jsonl",
        checkpoint_dir=state_dir / "checkpoints",
        telemetry="on",
        obs_server="127.0.0.1:0",
        log_stream=log_lines,
    ),
)
service.add_replica(name="r0")
address = service.obs_address
print(f"operational surface live at http://{address}\n")

# ---------------------------------------------------------------------------
# 2. Push a workload through and let the replica catch up.
# ---------------------------------------------------------------------------
service.ingest(events[:400])
service.flush()
service.sync()
service.checkpoint()

# ---------------------------------------------------------------------------
# 3. /metrics — the freshness lines a dashboard would alert on.
# ---------------------------------------------------------------------------
status, body = scrape(address, "/metrics")
print(f"GET /metrics -> {status}; freshness families:")
for line in body.splitlines():
    if "watermark" in line or "e2e_visibility" in line:
        if not line.startswith("#"):
            print(f"  {line}")

# ---------------------------------------------------------------------------
# 4. /readyz — every named check, worst-wins aggregate.
# ---------------------------------------------------------------------------
status, body = scrape(address, "/readyz")
report = json.loads(body)
print(f"\nGET /readyz -> {status} ({report['status']})")
for name, check in report["checks"].items():
    print(f"  {name:14s} {check['status']:9s} {check['detail']}")

# ---------------------------------------------------------------------------
# 5. The structured log: one JSON object per line; lines emitted inside
#    a span carry trace/span ids that match /traces.
# ---------------------------------------------------------------------------
print("\nstructured log sample:")
for line in log_lines.getvalue().splitlines()[:3]:
    print(f"  {line}")

# ---------------------------------------------------------------------------
# 6. Break the oplog on purpose: readiness flips to 503 so a balancer
#    pulls the node, liveness stays 200 so nothing restarts it.
# ---------------------------------------------------------------------------
service.primary.oplog._handle.close()
ready_status, _ = scrape(address, "/readyz")
alive_status, _ = scrape(address, "/healthz")
print(f"\nafter killing the oplog handle: /readyz -> {ready_status}, "
      f"/healthz -> {alive_status}")

service.obs_server.close()
print(f"\nstate dir: {state_dir} (safe to delete)")
