"""Fixed-k customer/access segmentation under churn (k-means clustering).

Access-profile vectors arrive, churn out, and get re-provisioned
(updated); the segmentation must keep exactly k segments current.
DynamicC runs over the fixed-k k-means objective with best-delta partner
selection and move refinement (see DESIGN.md):

    python examples/fixed_k_segmentation.py
"""

from repro.clustering.batch import HillClimbing
from repro.clustering.objectives import KMeansObjective
from repro.core import DynamicC, DynamicCConfig
from repro.data.generators import generate_access
from repro.data.workload import OperationMix, build_workload
from repro.eval import print_table
from repro.eval.harness import run_batch_per_round, run_incremental

K = 18
PENALTY = 1e5

dataset = generate_access(n_profiles=K, n_records=900, seed=9)
workload = build_workload(
    dataset,
    initial_count=350,
    n_snapshots=7,
    mixes=OperationMix(add=0.12, remove=0.03, update=0.04),
    seed=4,
)


def make_objective() -> KMeansObjective:
    return KMeansObjective(k=K, penalty=PENALTY)


reference = run_batch_per_round(
    workload, lambda: HillClimbing(make_objective()), score_fn=lambda c: make_objective().sse(c)
)


def dynamicc_factory(graph):
    objective = make_objective()
    config = DynamicCConfig(candidate_scope="all", partner_selection="best-delta")
    return DynamicC(graph, objective, batch=HillClimbing(objective), config=config, seed=0)


run = run_incremental(
    workload,
    dynamicc_factory,
    bootstrap=lambda g: HillClimbing(make_objective()).cluster(g),
    train_rounds=3,
    score_fn=lambda c: make_objective().sse(c),
)

rows = []
for record in run.predict_rounds():
    batch_round = reference.rounds[record.index]
    rows.append(
        [
            record.index,
            record.num_clusters,
            record.score,
            batch_round.score,
            record.latency,
            batch_round.latency,
        ]
    )
print_table(
    ["round", "segments", "dynamic SSE", "batch SSE", "dynamic s", "batch s"],
    rows,
    title=f"\nFixed-k (k={K}) segmentation under churn",
    precision=1,
)
print("\nthe segment count stays pinned at k while DynamicC re-clusters "
      "in a fraction of the batch latency")
