"""Tests for Algorithms 1–3 (merge, split, full DynamicC loop)."""

import numpy as np
import pytest

from repro.clustering.objectives import CorrelationObjective
from repro.clustering.state import Clustering
from repro.core import (
    DynamicCConfig,
    DynamicCModel,
    TrainingBuffer,
    merge_algorithm,
    rank_split_candidates,
    split_algorithm,
)
from repro.core.features import ClusterFeatures

from paper_example import PAPER_IDS

R = PAPER_IDS


def _trained_model(merge_bias: float = 1.0, split_bias: float = 1.0) -> DynamicCModel:
    """A model fitted on synthetic data so it nominates high-inter clusters
    for merging and low-cohesion clusters for splitting."""
    rng = np.random.default_rng(0)
    buffer = TrainingBuffer()
    for _ in range(120):
        # merge positives: high max_inter
        buffer.add_merge_sample(
            ClusterFeatures(
                intra=float(rng.uniform(0.6, 1.0)),
                max_inter=float(rng.uniform(0.5, 1.0) * merge_bias),
                size=int(rng.integers(1, 5)),
                partner_size=int(rng.integers(1, 5)),
            ),
            1,
        )
        buffer.add_merge_sample(
            ClusterFeatures(
                intra=float(rng.uniform(0.6, 1.0)),
                max_inter=float(rng.uniform(0.0, 0.25)),
                size=int(rng.integers(1, 8)),
                partner_size=int(rng.integers(0, 8)),
            ),
            0,
        )
        # split positives: low intra cohesion
        buffer.add_split_sample(
            ClusterFeatures(
                intra=float(rng.uniform(0.0, 0.45) / split_bias),
                max_inter=float(rng.uniform(0.0, 0.6)),
                size=int(rng.integers(3, 9)),
                partner_size=0,
            ),
            1,
        )
        buffer.add_split_sample(
            ClusterFeatures(
                intra=float(rng.uniform(0.75, 1.0)),
                max_inter=float(rng.uniform(0.0, 0.6)),
                size=int(rng.integers(1, 9)),
                partner_size=0,
            ),
            0,
        )
    model = DynamicCModel()
    model.fit(buffer)
    return model


class TestMergeAlgorithm:
    def test_merges_similar_singletons(self, paper_singletons):
        c = paper_singletons
        model = _trained_model()
        objective = CorrelationObjective()
        outcome = merge_algorithm(
            c, objective, model, list(c.cluster_ids()), DynamicCConfig()
        )
        assert outcome.changed
        # r1–r7 (sim 1.0) must end up together.
        assert c.cluster_of(R["r1"]) == c.cluster_of(R["r7"])
        c.check_invariants()

    def test_verification_rejects_bad_merges(self, paper_graph):
        # Put r1 and r4 (similarity 0) alone: the model may nominate, the
        # objective must reject.
        c = Clustering.from_groups(paper_graph, [[R["r1"]], [R["r4"]]])
        model = _trained_model()
        objective = CorrelationObjective()
        outcome = merge_algorithm(
            c, objective, model, list(c.cluster_ids()), DynamicCConfig()
        )
        assert c.num_clusters() == 2
        assert not outcome.applied

    def test_no_candidates_no_change(self, paper_singletons):
        model = _trained_model()
        outcome = merge_algorithm(
            paper_singletons, CorrelationObjective(), model, [], DynamicCConfig()
        )
        assert not outcome.changed
        assert outcome.predicted == 0

    def test_verification_disabled_applies_prediction(self, paper_singletons):
        c = paper_singletons
        model = _trained_model()
        config = DynamicCConfig(verify_with_objective=False)
        outcome = merge_algorithm(
            c, CorrelationObjective(), model, list(c.cluster_ids()), config
        )
        assert outcome.verifications == 0
        assert outcome.changed

    def test_outcome_counts_consistent(self, paper_singletons):
        c = paper_singletons
        model = _trained_model()
        outcome = merge_algorithm(
            c, CorrelationObjective(), model, list(c.cluster_ids()), DynamicCConfig()
        )
        assert outcome.predicted >= len(outcome.applied)


class TestSplitAlgorithm:
    def test_rank_most_different_first(self, paper_graph):
        c = Clustering.from_groups(
            paper_graph, [[R["r1"], R["r2"], R["r3"], R["r7"]]]
        )
        ranked = rank_split_candidates(c, c.cluster_of(R["r1"]))
        # r7's only intra link is r1 (1.0); r3 has r2 (0.9); r2 has r1+r3
        # (1.8); r1 has r2+r7 (1.9). Ascending: r7 or r3 first, r1 last.
        assert ranked[-1] == R["r1"]
        assert ranked[0] in (R["r3"], R["r7"])

    def test_splits_incohesive_cluster(self, paper_graph):
        # {r1, r4}: zero similarity inside, the split must be applied.
        c = Clustering.from_groups(paper_graph, [[R["r1"], R["r4"]], [R["r7"]]])
        model = _trained_model()
        objective = CorrelationObjective()
        outcome = split_algorithm(
            c, objective, model, list(c.cluster_ids()), DynamicCConfig()
        )
        assert outcome.changed
        assert c.cluster_of(R["r1"]) != c.cluster_of(R["r4"])
        c.check_invariants()

    def test_does_not_split_cohesive_cluster(self, paper_graph):
        c = Clustering.from_groups(paper_graph, [[R["r4"], R["r5"], R["r6"]]])
        model = _trained_model()
        outcome = split_algorithm(
            c, CorrelationObjective(), model, list(c.cluster_ids()), DynamicCConfig()
        )
        assert c.num_clusters() == 1
        assert not outcome.applied

    def test_splits_one_object_at_a_time(self, paper_graph):
        # {r1, r4, r5}: r1 is disconnected; exactly one object leaves per run.
        c = Clustering.from_groups(paper_graph, [[R["r1"], R["r4"], R["r5"]]])
        model = _trained_model()
        outcome = split_algorithm(
            c, CorrelationObjective(), model, list(c.cluster_ids()), DynamicCConfig()
        )
        assert len(outcome.applied) <= 1
        if outcome.applied:
            sizes = sorted(c.size(cid) for cid in c.cluster_ids())
            assert sizes == [1, 2]

    def test_singletons_never_split(self, paper_singletons):
        model = _trained_model()
        outcome = split_algorithm(
            paper_singletons,
            CorrelationObjective(),
            model,
            list(paper_singletons.cluster_ids()),
            DynamicCConfig(),
        )
        assert not outcome.applied
        assert paper_singletons.num_clusters() == 7


class TestModelBundle:
    def test_untrained_raises(self):
        model = DynamicCModel()
        with pytest.raises(RuntimeError):
            model.merge_probability(
                ClusterFeatures(intra=1.0, max_inter=0.0, size=1, partner_size=0)
            )

    def test_fit_report_fields(self):
        model = _trained_model()
        assert model.is_trained
        assert 0.0 < model.merge_theta < 1.0
        assert 0.0 < model.split_theta < 1.0

    def test_with_thetas_shares_models(self):
        model = _trained_model()
        clone = model.with_thetas(0.9, 0.9)
        assert clone.merge_model is model.merge_model
        assert clone.merge_theta == 0.9
        assert model.merge_theta != 0.9 or model.merge_theta == 0.9  # original intact

    def test_empty_buffer_rejected(self):
        with pytest.raises(ValueError):
            DynamicCModel().fit(TrainingBuffer())

    def test_predicts_merge_uses_theta(self):
        model = _trained_model()
        high_inter = ClusterFeatures(intra=0.9, max_inter=0.95, size=2, partner_size=2)
        isolated = ClusterFeatures(intra=0.95, max_inter=0.0, size=3, partner_size=0)
        assert model.merge_probability(high_inter) > model.merge_probability(isolated)
