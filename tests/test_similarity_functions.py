"""Unit tests for the similarity measures (Table 1's per-dataset set)."""

import math

import pytest

from repro.similarity import (
    CosineTrigramSimilarity,
    EuclideanSimilarity,
    JaccardSimilarity,
    LevenshteinSimilarity,
    WeightedCombination,
    cosine_trigram,
    jaccard,
    levenshtein_distance,
    normalized_levenshtein,
    tokenize,
)
from repro.similarity.table import TableSimilarity


class TestJaccard:
    def test_identical_sets(self):
        assert jaccard({"a", "b"}, {"a", "b"}) == 1.0

    def test_disjoint_sets(self):
        assert jaccard({"a"}, {"b"}) == 0.0

    def test_partial_overlap(self):
        assert jaccard({"a", "b", "c"}, {"b", "c", "d"}) == pytest.approx(2 / 4)

    def test_empty_sets(self):
        assert jaccard(frozenset(), frozenset()) == 0.0

    def test_one_empty(self):
        assert jaccard({"a"}, frozenset()) == 0.0

    def test_tokenize_lowercases_and_splits(self):
        assert tokenize("Hello  World") == frozenset({"hello", "world"})

    def test_accepts_strings(self):
        assert JaccardSimilarity().similarity("a b", "b c") == pytest.approx(1 / 3)

    def test_accepts_frozensets(self):
        sim = JaccardSimilarity()
        assert sim.similarity(frozenset({"x"}), frozenset({"x"})) == 1.0

    def test_rejects_unknown_payloads(self):
        with pytest.raises(TypeError):
            JaccardSimilarity().similarity(1.5, 2.5)

    def test_symmetry(self):
        a, b = frozenset({"a", "b", "c"}), frozenset({"c", "d"})
        assert jaccard(a, b) == jaccard(b, a)


class TestLevenshtein:
    def test_identical(self):
        assert levenshtein_distance("abc", "abc") == 0

    def test_empty_vs_word(self):
        assert levenshtein_distance("", "abc") == 3
        assert levenshtein_distance("abc", "") == 3

    def test_substitution(self):
        assert levenshtein_distance("kitten", "sitten") == 1

    def test_classic_example(self):
        assert levenshtein_distance("kitten", "sitting") == 3

    def test_symmetry(self):
        assert levenshtein_distance("abcd", "badc") == levenshtein_distance(
            "badc", "abcd"
        )

    def test_normalized_range(self):
        assert normalized_levenshtein("abc", "xyz") == 0.0
        assert normalized_levenshtein("abc", "abc") == 1.0

    def test_normalized_empty_strings(self):
        assert normalized_levenshtein("", "") == 1.0

    def test_class_wrapper(self):
        assert LevenshteinSimilarity().similarity("abcd", "abce") == pytest.approx(0.75)


class TestCosineTrigram:
    def test_identical_strings(self):
        assert cosine_trigram("hello world", "hello world") == pytest.approx(1.0)

    def test_unrelated_strings(self):
        assert cosine_trigram("aaaa", "zzzz") == 0.0

    def test_empty_string(self):
        assert cosine_trigram("", "abc") <= 1.0  # padding still yields trigrams

    def test_typo_stays_high(self):
        # Trigram cosine is robust to single typos — the reason the paper
        # uses it for MusicBrainz.
        assert cosine_trigram("midnight river band", "midnigt river band") > 0.8

    def test_symmetry(self):
        a, b = "golden summer", "golden winter"
        assert cosine_trigram(a, b) == pytest.approx(cosine_trigram(b, a))

    def test_range(self):
        value = CosineTrigramSimilarity().similarity("abc def", "abc xyz")
        assert 0.0 <= value <= 1.0


class TestEuclidean:
    def test_zero_distance_is_one(self):
        sim = EuclideanSimilarity(scale=2.0)
        assert sim.similarity([1.0, 2.0], [1.0, 2.0]) == pytest.approx(1.0)

    def test_decay(self):
        sim = EuclideanSimilarity(scale=1.0)
        assert sim.similarity([0.0], [1.0]) == pytest.approx(math.exp(-1.0))

    def test_scale_inverse(self):
        sim = EuclideanSimilarity(scale=2.0)
        assert sim.distance_for_similarity(
            sim.similarity([0.0], [3.0])
        ) == pytest.approx(3.0)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            EuclideanSimilarity(scale=0.0)

    def test_invalid_inversion(self):
        with pytest.raises(ValueError):
            EuclideanSimilarity().distance_for_similarity(0.0)


class TestWeightedCombination:
    def test_normalises_weights(self):
        combo = WeightedCombination(
            [(LevenshteinSimilarity(), 2.0), (JaccardSimilarity(), 2.0)]
        )
        assert combo.similarity("a b", "a b") == pytest.approx(1.0)

    def test_requires_parts(self):
        with pytest.raises(ValueError):
            WeightedCombination([])

    def test_requires_positive_weights(self):
        with pytest.raises(ValueError):
            WeightedCombination([(JaccardSimilarity(), 0.0)])

    def test_mixture_value(self):
        combo = WeightedCombination(
            [(LevenshteinSimilarity(), 1.0), (JaccardSimilarity(), 1.0)]
        )
        expected = 0.5 * normalized_levenshtein("ab cd", "ab ce") + 0.5 * jaccard(
            tokenize("ab cd"), tokenize("ab ce")
        )
        assert combo.similarity("ab cd", "ab ce") == pytest.approx(expected)


class TestTableSimilarity:
    def test_symmetric_lookup(self):
        table = TableSimilarity({("a", "b"): 0.5})
        assert table.similarity("a", "b") == 0.5
        assert table.similarity("b", "a") == 0.5

    def test_missing_pair_is_zero(self):
        assert TableSimilarity({}).similarity("a", "b") == 0.0

    def test_self_similarity_is_one(self):
        assert TableSimilarity({}).similarity("a", "a") == 1.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            TableSimilarity({("a", "b"): 1.5})

    def test_distance_complement(self):
        table = TableSimilarity({("a", "b"): 0.3})
        assert table.distance("a", "b") == pytest.approx(0.7)
