"""Property tests for the incremental hot path.

Three guarantees the serving layer leans on:

* every objective's incremental ``delta_merge`` / ``delta_split`` /
  ``delta_move`` matches the exact copy-mutate-rescore oracle
  (``exact_delta_*``) to 1e-9 on seeded random graphs and clusterings;
* the maintained per-cluster aggregates (k-means vector sums, DB-index
  term/scatter caches, the Clustering intra/adjacency sums) survive
  long random merge/split/move sequences driven through the ``apply_*``
  gateways — a fresh objective rescoring from scratch agrees at every
  checkpoint;
* the scoped greedy-pass hill climber (dirty-cluster worklist) produces
  exactly the clustering the exhaustive full-rescan greedy produces.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.clustering.batch import HillClimbing
from repro.clustering.objectives import (
    CorrelationObjective,
    DBIndexObjective,
    KMeansObjective,
)
from repro.clustering.state import Clustering
from repro.similarity.euclidean import EuclideanSimilarity
from repro.similarity.graph import SimilarityGraph


def random_graph(seed: int, n: int = 24) -> SimilarityGraph:
    """Clumpy 2-d point set — sparse but connected similarity structure."""
    rng = random.Random(seed)
    graph = SimilarityGraph(EuclideanSimilarity(scale=1.0), store_threshold=0.2)
    centers = [(rng.uniform(0, 6), rng.uniform(0, 6)) for _ in range(4)]
    for obj_id in range(n):
        cx, cy = centers[rng.randrange(len(centers))]
        graph.add_object(
            obj_id,
            np.array([cx + rng.gauss(0, 0.7), cy + rng.gauss(0, 0.7)]),
        )
    return graph


def random_clustering(graph: SimilarityGraph, seed: int, k: int = 6) -> Clustering:
    rng = random.Random(seed)
    labels = {obj_id: rng.randrange(k) for obj_id in graph.object_ids()}
    return Clustering.from_labels(graph, labels)


def make_objectives():
    return [
        CorrelationObjective(),
        DBIndexObjective(),
        KMeansObjective(k=4, penalty=10.0),
    ]


def make_oracle(objective):
    """A fresh twin used only for exact copy-rescore scoring, so the
    cached instance under test can never leak state into its oracle."""
    if isinstance(objective, KMeansObjective):
        return KMeansObjective(k=objective.k, penalty=objective.penalty)
    return type(objective)()


class TestDeltasMatchExactOracle:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_all_deltas_match_copy_rescore(self, seed):
        graph = random_graph(seed)
        rng = random.Random(seed + 100)
        for objective in make_objectives():
            clustering = random_clustering(graph, seed + 1)
            if isinstance(objective, KMeansObjective):
                objective.bind_graph_payloads(clustering)
            oracle = make_oracle(objective)
            if isinstance(oracle, KMeansObjective):
                oracle.bind_graph_payloads(clustering)

            cids = list(clustering.cluster_ids())
            # Merges: every adjacent pair plus a few arbitrary ones.
            pairs = set()
            for cid in cids:
                for other in clustering.neighbor_clusters(cid):
                    pairs.add((min(cid, other), max(cid, other)))
            for _ in range(4):
                a, b = rng.sample(cids, 2)
                pairs.add((min(a, b), max(a, b)))
            for a, b in sorted(pairs):
                assert objective.delta_merge(clustering, a, b) == pytest.approx(
                    oracle.exact_delta_merge(clustering, a, b), abs=1e-9
                ), f"{objective.name} delta_merge({a},{b}) seed={seed}"

            # Splits: a random member out of every multi-member cluster.
            for cid in cids:
                members = sorted(clustering.members_view(cid))
                if len(members) < 2:
                    continue
                part = {rng.choice(members)}
                assert objective.delta_split(clustering, cid, part) == pytest.approx(
                    oracle.exact_delta_split(clustering, cid, part), abs=1e-9
                ), f"{objective.name} delta_split({cid}) seed={seed}"

            # Moves: random objects into random other clusters.
            objects = sorted(clustering.labels())
            for _ in range(8):
                obj_id = rng.choice(objects)
                target = rng.choice(cids)
                if target == clustering.cluster_of(obj_id):
                    continue
                assert objective.delta_move(clustering, obj_id, target) == pytest.approx(
                    oracle.exact_delta_move(clustering, obj_id, target), abs=1e-9
                ), f"{objective.name} delta_move({obj_id}->{target}) seed={seed}"

            # Group merges: chains of 3 mutually-listed clusters.
            if len(cids) >= 3:
                group = rng.sample(cids, 3)
                assert objective.delta_merge_group(
                    clustering, group
                ) == pytest.approx(
                    oracle.exact_delta_merge_group(clustering, group), abs=1e-9
                ), f"{objective.name} delta_merge_group seed={seed}"


class TestAggregatesSurviveLongSequences:
    @pytest.mark.parametrize("seed", [5, 6])
    def test_gateway_mutations_keep_caches_exact(self, seed):
        graph = random_graph(seed, n=30)
        rng = random.Random(seed + 50)
        for objective in make_objectives():
            clustering = random_clustering(graph, seed + 2)
            if isinstance(objective, KMeansObjective):
                objective.bind_graph_payloads(clustering)
            objective.score(clustering)  # warm the caches

            for step in range(60):
                cids = list(clustering.cluster_ids())
                op = rng.choice(("merge", "split", "move"))
                if op == "merge" and len(cids) >= 2:
                    a, b = rng.sample(cids, 2)
                    objective.apply_merge(clustering, a, b)
                elif op == "split":
                    cid = rng.choice(cids)
                    members = sorted(clustering.members_view(cid))
                    if len(members) < 2:
                        continue
                    objective.apply_split(clustering, cid, {rng.choice(members)})
                else:
                    obj_id = rng.choice(sorted(clustering.labels()))
                    target = rng.choice(cids)
                    if not clustering.contains_cluster(target):
                        continue
                    if clustering.cluster_of(obj_id) == target:
                        continue
                    objective.apply_move(clustering, obj_id, target)

                if step % 10 == 9:
                    clustering.check_invariants()
                    oracle = make_oracle(objective)
                    if isinstance(oracle, KMeansObjective):
                        oracle.bind_graph_payloads(clustering)
                    assert objective.score(clustering) == pytest.approx(
                        oracle.score(clustering.copy()), abs=1e-8
                    ), f"{objective.name} drifted at step {step} seed={seed}"


class TestScopedGreedyEquivalence:
    @pytest.mark.parametrize("seed", [11, 12, 13])
    @pytest.mark.parametrize("make", [CorrelationObjective, DBIndexObjective])
    def test_scoped_matches_full_rescan(self, seed, make):
        graph = random_graph(seed, n=28)

        scoped = HillClimbing(make())
        result_scoped = scoped.cluster(graph)

        exhaustive_objective = make()
        # Forcing "global" locality disables the dirty worklist, so
        # every pass rescans every cluster — the pre-scoping behaviour.
        exhaustive_objective.locality = "global"
        exhaustive = HillClimbing(exhaustive_objective)
        result_full = exhaustive.cluster(graph)

        assert result_scoped.as_partition() == result_full.as_partition()
        fresh = make()
        assert fresh.score(result_scoped) == pytest.approx(
            make().score(result_full), abs=1e-9
        )

    @pytest.mark.parametrize("seed", [21, 22])
    def test_scoped_not_worse_than_steepest_start(self, seed):
        """Greedy-pass (scoped) still strictly improves on singletons and
        lands within the same optimisation regime as the literal
        steepest oracle on small seeded graphs."""
        graph = random_graph(seed, n=16)
        objective = DBIndexObjective()
        greedy = HillClimbing(DBIndexObjective()).cluster(graph)
        steepest = HillClimbing(DBIndexObjective(), strategy="steepest").cluster(graph)
        singletons_score = objective.score(Clustering.singletons(graph))
        greedy_score = DBIndexObjective().score(greedy)
        steepest_score = DBIndexObjective().score(steepest)
        # ≤: a seeded graph may admit no improving change at all, in
        # which case both searches must leave singletons untouched.
        assert greedy_score <= singletons_score + 1e-9
        assert steepest_score <= singletons_score + 1e-9
        # The scoped greedy search must stay in the same ballpark as the
        # exact oracle (it may differ by path, not by regime).
        assert greedy_score <= steepest_score * 1.25 + 1e-9
