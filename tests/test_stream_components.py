"""Unit tests for the repro.stream building blocks (events, oplog,
batching, routing, checkpoints, metrics)."""

import json

import numpy as np
import pytest

from repro.stream import (
    CheckpointManager,
    HashRouter,
    MembershipTable,
    MetricsRegistry,
    MicroBatcher,
    Operation,
    OperationLog,
    RoundOps,
    add,
    global_cluster_id,
    parse_cluster_id,
    remove,
    stable_hash,
    update,
)
from repro.stream.events import decode_payload, encode_payload


class TestEvents:
    def test_kind_validation(self):
        with pytest.raises(ValueError):
            Operation("upsert", 1, "x")
        with pytest.raises(ValueError):
            Operation("remove", 1, "payload")
        with pytest.raises(ValueError):
            Operation("add", 1, None)

    @pytest.mark.parametrize(
        "payload",
        [
            "a string record",
            frozenset({"token", "set"}),
            {"s", "e", "t"},
            (1.5, "mixed", (2, 3)),
            [1, 2, [3, 4]],
            {"key": np.asarray([1.0, 2.0]), "nested": {"x": 1}},
            np.asarray([0.25, -1.5, 3.0]),
            None,
            42,
            3.5,
            True,
        ],
    )
    def test_payload_codec_roundtrip(self, payload):
        encoded = encode_payload(payload)
        json.dumps(encoded)  # must be JSON-compatible
        decoded = decode_payload(encoded)
        if isinstance(payload, np.ndarray):
            assert np.array_equal(decoded, payload)
        elif isinstance(payload, dict):
            assert set(decoded) == set(payload)
            assert np.array_equal(decoded["key"], payload["key"])
            assert decoded["nested"] == payload["nested"]
        else:
            assert decoded == payload
            assert type(decoded) is type(payload)

    def test_operation_dict_roundtrip(self):
        op = update(7, np.asarray([1.0, 2.0])).with_seq(12)
        back = Operation.from_dict(op.to_dict())
        assert back.kind == "update" and back.obj_id == 7 and back.seq == 12
        assert np.array_equal(back.payload, op.payload)

    def test_canonical_set_encoding(self):
        a = encode_payload(frozenset({"b", "a", "c"}))
        b = encode_payload(frozenset({"c", "b", "a"}))
        assert json.dumps(a) == json.dumps(b)

    def test_set_of_nonprimitive_members(self):
        # Raw encodings of tuples are marker dicts, which don't compare;
        # the codec must still order them canonically.
        payload = frozenset({(1, 2), (0, 3), (0, 2)})
        assert decode_payload(encode_payload(payload)) == payload
        mixed = frozenset({1, "a"})
        assert decode_payload(encode_payload(mixed)) == mixed

    def test_dict_payload_non_string_keys_rejected(self):
        # JSON would stringify the keys, silently mutating the payload
        # on a WAL roundtrip — refuse instead.
        with pytest.raises(TypeError):
            encode_payload({1: "a"})

    def test_flush_marker_roundtrip(self):
        marker = Operation("flush", 0).with_seq(9)
        assert Operation.from_dict(marker.to_dict()) == marker
        with pytest.raises(ValueError):
            Operation("flush", 0, payload="x")


class TestOperationLog:
    def test_append_assigns_monotonic_seqs(self, tmp_path):
        with OperationLog(tmp_path / "wal.jsonl") as log:
            stamped = log.append([add(1, "a"), add(2, "b"), remove(1)])
            assert [op.seq for op in stamped] == [1, 2, 3]
            assert log.last_seq == 3

    def test_reopen_continues_sequence(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with OperationLog(path) as log:
            log.append([add(1, "a")])
        with OperationLog(path) as log:
            assert log.last_seq == 1
            stamped = log.append([add(2, "b")])
            assert stamped[0].seq == 2
            assert [op.obj_id for op in log.replay()] == [1, 2]

    def test_replay_after_seq(self, tmp_path):
        with OperationLog(tmp_path / "wal.jsonl") as log:
            log.append([add(i, str(i)) for i in range(5)])
            assert [op.seq for op in log.replay(after_seq=3)] == [4, 5]

    def test_torn_tail_ignored(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with OperationLog(path) as log:
            log.append([add(1, "a"), add(2, "b")])
        with open(path, "a") as handle:
            handle.write('{"seq": 3, "kind": "add", "id": 3, "pay')  # crash mid-write
        with OperationLog(path) as log:
            assert [op.obj_id for op in log.replay()] == [1, 2]
            # The torn line is superseded; the next append reuses seq 3.
            assert log.append([add(4, "d")])[0].seq == 3

    def test_failed_append_burns_no_seqs(self, tmp_path):
        # An unencodable payload must not advance last_seq: a burned
        # seq reads as a log gap at recovery time.
        with OperationLog(tmp_path / "wal.jsonl") as log:
            log.append([add(1, "a")])
            with pytest.raises(TypeError):
                log.append([add(2, "b"), add(3, {4: "bad-key"})])
            assert log.last_seq == 1
            assert log.append([add(5, "c")])[0].seq == 2
            assert [op.seq for op in log.replay()] == [1, 2]

    def test_compact(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with OperationLog(path) as log:
            log.append([add(i, str(i)) for i in range(6)])
            kept = log.compact(upto_seq=4)
            assert kept == 2
            assert [op.seq for op in log.replay()] == [5, 6]
            # Appends continue beyond the compacted prefix.
            assert log.append([add(9, "i")])[0].seq == 7

    def test_failed_compact_leaves_log_usable(self, tmp_path, monkeypatch):
        path = tmp_path / "wal.jsonl"
        with OperationLog(path) as log:
            log.append([add(i, str(i)) for i in range(4)])
            monkeypatch.setattr(
                "os.replace", lambda *a, **k: (_ for _ in ()).throw(OSError("boom"))
            )
            with pytest.raises(OSError):
                log.compact(upto_seq=2)
            monkeypatch.undo()
            # The log object still appends and replays correctly.
            assert log.append([add(9, "x")])[0].seq == 5
            assert [op.seq for op in log.replay()] == [1, 2, 3, 4, 5]


class TestBatchingFold:
    def test_fold_nets_out_per_id(self):
        ops = [
            add(1, "a"),
            add(2, "b"),
            remove(2),          # add+remove in batch: no-op
            update(3, "c1"),
            update(3, "c2"),    # last payload wins
            remove(4),
            add(4, "d"),        # remove+add same id: update (§6.1)
        ]
        folded = RoundOps.fold([op.with_seq(i + 1) for i, op in enumerate(ops)])
        assert folded.added == {1: "a"}
        assert folded.updated == {3: "c2", 4: "d"}
        assert folded.removed == []
        assert folded.first_seq == 1 and folded.last_seq == 7
        assert folded.raw_count == 7

    def test_add_then_update_stays_add(self):
        folded = RoundOps.fold([add(1, "a"), update(1, "a2")])
        assert folded.added == {1: "a2"} and not folded.updated

    def test_normalized_against_membership(self):
        folded = RoundOps.fold(
            [add(1, "new"), add(2, "dup"), update(3, "u"), remove(4), remove(5)]
        )
        live = {2, 3, 4}
        out = folded.normalized(lambda obj_id: obj_id in live)
        assert out.added == {1: "new"}
        assert out.updated == {2: "dup", 3: "u"}
        assert out.removed == [4]
        assert out.ignored == 1  # remove(5): id 5 was never live

    def test_update_of_unknown_id_becomes_add(self):
        out = RoundOps.fold([update(9, "x")]).normalized(lambda _: False)
        assert out.added == {9: "x"} and not out.updated


class TestMicroBatcher:
    def test_count_budget(self):
        batcher = MicroBatcher(max_ops=3)
        batcher.extend(add(i, "x") for i in range(7))
        assert batcher.ready()
        assert [op.obj_id for op in batcher.next_batch()] == [0, 1, 2]
        assert [op.obj_id for op in batcher.next_batch()] == [3, 4, 5]
        assert not batcher.ready()
        assert [op.obj_id for op in batcher.drain()] == [6]
        assert len(batcher) == 0

    def test_age_budget_with_injected_clock(self):
        now = [0.0]
        batcher = MicroBatcher(max_ops=100, max_age=5.0, clock=lambda: now[0])
        batcher.add(add(1, "a"))
        assert not batcher.ready()
        now[0] = 6.0
        assert batcher.ready()
        assert len(batcher.next_batch()) == 1

    def test_leftovers_keep_their_age(self):
        # Popping a full batch must not reset the remainder's age clock.
        now = [0.0]
        batcher = MicroBatcher(max_ops=2, max_age=5.0, clock=lambda: now[0])
        batcher.extend([add(1, "a"), add(2, "b"), add(3, "c")])
        now[0] = 4.0
        assert len(batcher.next_batch()) == 2
        assert not batcher.ready()
        now[0] = 5.0  # op 3 arrived at t=0, so it is 5s old now
        assert batcher.ready()

    def test_validation(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_ops=0)


class TestRouting:
    def test_stable_hash_is_deterministic_and_mixing(self):
        assert stable_hash(1) == stable_hash(1)
        buckets = {stable_hash(i) % 4 for i in range(100)}
        assert buckets == {0, 1, 2, 3}

    def test_partition_preserves_order_and_covers(self):
        router = HashRouter(3)
        ops = [add(i, "x").with_seq(i + 1) for i in range(20)]
        parts = router.partition(ops)
        recombined = sorted(
            (op for slice_ops in parts.values() for op in slice_ops),
            key=lambda op: op.seq,
        )
        assert recombined == ops
        for shard_index, slice_ops in parts.items():
            assert all(router.shard_of(op.obj_id) == shard_index for op in slice_ops)
            assert [op.seq for op in slice_ops] == sorted(op.seq for op in slice_ops)

    def test_global_cluster_id_roundtrip(self):
        assert parse_cluster_id(global_cluster_id(2, 17)) == (2, 17)
        with pytest.raises(ValueError):
            parse_cluster_id("bogus")

    def test_membership_table_rebuild(self):
        table = MembershipTable()
        table.add(1, 0)
        table.add(2, 1)
        table.discard(1)
        assert table.shard_of(2) == 1 and 1 not in table
        table.rebuild([[10, 11], [20]])
        assert table.live_ids() == {10, 11, 20}
        assert table.shard_of(20) == 1


class TestCheckpointManager:
    def test_save_load_prune(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=2)
        for seq in (10, 20, 30):
            manager.save({"applied_seq": seq, "blob": seq * 2})
        assert manager.list_seqs() == [20, 30]
        assert manager.load_latest()["blob"] == 60

    def test_corrupt_latest_falls_back(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=3)
        manager.save({"applied_seq": 1, "ok": True})
        manager.save({"applied_seq": 2, "ok": True})
        (tmp_path / "checkpoint-2.json").write_text('{"truncated')
        assert manager.load_latest()["applied_seq"] == 1

    def test_empty_directory(self, tmp_path):
        assert CheckpointManager(tmp_path).load_latest() is None


class TestMetrics:
    def test_latency_and_throughput(self):
        registry = MetricsRegistry(2)
        registry.shard(0).record_round("observe", n_ops=10, ignored=1, latency=0.5)
        registry.shard(1).record_round("predict", n_ops=30, ignored=0, latency=0.5)
        assert registry.shard(0).rounds_observed == 1
        assert registry.shard(1).rounds_predicted == 1
        assert registry.throughput_events_per_s() == pytest.approx(40.0)
        snapshot = registry.snapshot()
        assert snapshot["shards"][0]["ops_ignored"] == 1
        assert snapshot["shards"][1]["round_latency"]["mean_s"] == pytest.approx(0.5)
        json.dumps(snapshot)  # must be JSON-compatible
