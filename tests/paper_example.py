"""The paper's running example (Figures 1-2) as reusable constants."""

from __future__ import annotations

from repro.clustering.state import Clustering
from repro.similarity.graph import SimilarityGraph
from repro.similarity.table import TableSimilarity

# The seven-object example of Figures 1 and 2. Edge weights chosen so
# that F(L1) = 0.9·3 + 0.8 + 0.7 + 1 = 5.2 exactly as in Example 4.1.
PAPER_EDGES = {
    ("r1", "r7"): 1.0,
    ("r1", "r2"): 0.9,
    ("r2", "r3"): 0.9,
    ("r4", "r5"): 0.9,
    ("r4", "r6"): 0.8,
    ("r5", "r6"): 0.7,
}

PAPER_OBJECTS = ["r1", "r2", "r3", "r4", "r5", "r6", "r7"]

#: Object name → integer id used in graphs.
PAPER_IDS = {name: idx + 1 for idx, name in enumerate(PAPER_OBJECTS)}

#: The paper's final clustering {C'1, C'2, C'3} of Figure 2 (by id).
PAPER_FINAL_CLUSTERING = frozenset(
    {
        frozenset({PAPER_IDS["r2"], PAPER_IDS["r3"]}),
        frozenset({PAPER_IDS["r4"], PAPER_IDS["r5"], PAPER_IDS["r6"]}),
        frozenset({PAPER_IDS["r1"], PAPER_IDS["r7"]}),
    }
)


def build_paper_graph() -> SimilarityGraph:
    """Graph of the running example, payloads are the object names."""
    similarity = TableSimilarity(PAPER_EDGES)
    graph = SimilarityGraph(similarity, store_threshold=0.05)
    for name in PAPER_OBJECTS:
        graph.add_object(PAPER_IDS[name], name)
    return graph


