"""Tests for the live HTTP operational surface (`repro.obs.server`).

Covers the issue's acceptance scrape: a ReplicatedClusteringService
started with ``obs_server=`` must answer all five endpoints with
well-formed payloads; ``/readyz`` must flip to 503 when a health check
turns failing; servers must shut down cleanly with the service; and a
``FollowerDaemon`` must report ready only after it has bootstrapped
from the spool.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.clustering.objectives import DBIndexObjective
from repro.core import DynamicC
from repro.data.generators import generate_access
from repro.data.workload import OperationMix, build_workload
from repro.obs import HealthRegistry, ObsServer, Telemetry, failing, ok, parse_listen
from repro.replica import ReplicatedClusteringService
from repro.replica.follower import FollowerDaemon
from repro.replica.transport import MailboxTransport
from repro.stream import ClusteringService, StreamConfig

from test_obs import parse_prometheus


@pytest.fixture(scope="module")
def dataset():
    return generate_access(n_profiles=6, n_records=240, seed=3)


@pytest.fixture(scope="module")
def events(dataset):
    workload = build_workload(
        dataset,
        initial_count=80,
        n_snapshots=5,
        mixes=OperationMix(add=0.12, remove=0.03, update=0.03),
        seed=2,
    )
    return workload.event_stream()


def make_factory(dataset):
    def factory():
        return DynamicC(dataset.graph(), DBIndexObjective(), seed=0)

    return factory


def get(address, path):
    """GET http://address/path → (status, headers, body bytes).

    Non-2xx answers are returned, not raised, so tests can assert on
    503 bodies the same way as on 200s.
    """
    try:
        with urllib.request.urlopen(f"http://{address}{path}", timeout=10) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


def get_json(address, path):
    status, _, body = get(address, path)
    return status, json.loads(body)


class TestParseListen:
    def test_host_port(self):
        assert parse_listen("127.0.0.1:9100") == ("127.0.0.1", 9100)

    def test_bare_port_binds_loopback(self):
        assert parse_listen("0") == ("127.0.0.1", 0)
        assert parse_listen("9100") == ("127.0.0.1", 9100)

    @pytest.mark.parametrize("bad", ["host:", "host:notaport", "host:70000", ""])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_listen(bad)


class TestObsServerStandalone:
    def test_all_five_endpoints(self):
        telemetry = Telemetry()
        telemetry.counter("ops_total", help="ops").inc(3)
        with telemetry.span("work"):
            pass
        health = HealthRegistry()
        health.register("always", lambda: ok("fine"))
        with ObsServer("127.0.0.1:0", telemetry=telemetry, health=health) as server:
            server.start()
            address = server.address

            status, headers, body = get(address, "/metrics")
            assert status == 200
            assert headers["Content-Type"].startswith("text/plain")
            samples = parse_prometheus(body.decode())
            assert samples["repro_ops_total"][frozenset()] == 3.0

            status, snapshot = get_json(address, "/metrics.json")
            assert status == 200
            assert snapshot["metrics"]["ops_total"] == 3

            status, trace = get_json(address, "/traces")
            assert status == 200
            assert {e["name"] for e in trace["traceEvents"]} >= {"work"}

            status, alive = get_json(address, "/healthz")
            assert status == 200 and alive == {"status": "alive"}

            status, report = get_json(address, "/readyz")
            assert status == 200
            assert report["status"] == "ok" and report["ready"] is True
            assert report["checks"]["always"]["detail"] == "fine"

    def test_unknown_path_404(self):
        with ObsServer("127.0.0.1:0") as server:
            server.start()
            status, body = get_json(server.address, "/nope")
            assert status == 404 and "error" in body

    def test_readyz_503_on_failing_check(self):
        health = HealthRegistry()
        health.register("db", lambda: failing("disk full"))
        with ObsServer("127.0.0.1:0", health=health) as server:
            server.start()
            status, report = get_json(server.address, "/readyz")
            assert status == 503
            assert report["status"] == "failing" and report["ready"] is False

    def test_healthz_stays_200_while_readyz_fails(self):
        # Liveness and readiness are different questions: a failing
        # check must not make the orchestrator restart the process.
        health = HealthRegistry()
        health.register("db", lambda: failing("disk full"))
        with ObsServer("127.0.0.1:0", health=health) as server:
            server.start()
            assert get(server.address, "/healthz")[0] == 200
            assert get(server.address, "/readyz")[0] == 503

    def test_close_is_idempotent_and_frees_port(self):
        server = ObsServer("127.0.0.1:0").start()
        host, port = server.address.rsplit(":", 1)
        server.close()
        server.close()  # second close is a no-op
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(f"http://{host}:{port}/healthz", timeout=2)
        # The port is actually released: a new server can bind it.
        rebound = ObsServer(f"{host}:{port}").start()
        assert get(rebound.address, "/healthz")[0] == 200
        rebound.close()


class TestServiceSurface:
    def test_single_service_scrape(self, dataset, events, tmp_path):
        service = ClusteringService(
            make_factory(dataset),
            StreamConfig(
                n_shards=2,
                batch_max_ops=32,
                train_rounds=2,
                oplog_path=tmp_path / "oplog.jsonl",
                telemetry="on",
                obs_server="127.0.0.1:0",
            ),
        )
        try:
            service.ingest(events[:160])
            service.flush()
            address = service.obs_address
            samples = parse_prometheus(get(address, "/metrics")[2].decode())
            visibility = samples["repro_e2e_visibility_seconds"]
            assert any(
                dict(key).get("replica") == "primary" for key in visibility
            ), "visibility quantiles missing primary label"
            assert samples["repro_commit_watermark_ts"]
            assert samples["repro_applied_watermark_ts"]
            status, report = get_json(address, "/readyz")
            assert status == 200
            assert set(report["checks"]) == {"backlog", "checkpoints", "oplog"}
        finally:
            service.close()
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(f"http://{address}/healthz", timeout=2)

    def test_replicated_topology_acceptance_scrape(self, dataset, events, tmp_path):
        """The issue's acceptance test: every endpoint live on a
        replicated topology, per-replica visibility quantiles present."""
        topology = ReplicatedClusteringService(
            make_factory(dataset),
            StreamConfig(
                n_shards=2,
                batch_max_ops=32,
                train_rounds=2,
                oplog_path=tmp_path / "oplog.jsonl",
                checkpoint_dir=tmp_path / "ckpt",
                telemetry="on",
                obs_server="127.0.0.1:0",
            ),
        )
        try:
            topology.add_replica(name="r0")
            topology.ingest(events[:200])
            topology.flush()
            topology.sync()
            address = topology.obs_address

            status, headers, body = get(address, "/metrics")
            assert status == 200
            samples = parse_prometheus(body.decode())
            replicas = {
                dict(key).get("replica")
                for key in samples["repro_e2e_visibility_seconds"]
            }
            assert replicas >= {"primary", "r0"}

            status, snapshot = get_json(address, "/metrics.json")
            assert status == 200 and "metrics" in snapshot

            status, trace = get_json(address, "/traces")
            assert status == 200
            tids = {e["args"].get("node") for e in trace["traceEvents"] if e.get("ph") == "X"}

            status, _, _ = get(address, "/healthz")
            assert status == 200

            status, report = get_json(address, "/readyz")
            assert status == 200
            assert "replica:r0" in report["checks"]
            assert report["checks"]["replica:r0"]["status"] == "ok"
            lag_data = report["checks"]["replica:r0"]["data"]
            assert lag_data["seq_delta"] == 0
            assert lag_data["visibility_lag_s"] is not None
        finally:
            topology.close()

    def test_forced_degraded_flips_readyz(self, dataset, events, tmp_path):
        service = ClusteringService(
            make_factory(dataset),
            StreamConfig(
                n_shards=2,
                batch_max_ops=32,
                train_rounds=2,
                oplog_path=tmp_path / "oplog.jsonl",
                obs_server="127.0.0.1:0",
            ),
        )
        try:
            service.ingest(events[:80])
            address = service.obs_address
            assert get(address, "/readyz")[0] == 200
            # Force the oplog probe to fail by yanking its handle —
            # the storage equivalent of a full/detached disk.
            service.oplog._handle.close()
            status, report = get_json(address, "/readyz")
            assert status == 503
            assert report["checks"]["oplog"]["status"] == "failing"
            # Liveness is unaffected.
            assert get(address, "/healthz")[0] == 200
        finally:
            service.obs_server.close()
            service.batcher._pending.clear()  # nothing flushable onto a dead log

    def test_obs_address_survives_promotion(self, dataset, events, tmp_path):
        topology = ReplicatedClusteringService(
            make_factory(dataset),
            StreamConfig(
                n_shards=2,
                batch_max_ops=32,
                train_rounds=2,
                oplog_path=tmp_path / "oplog.jsonl",
                checkpoint_dir=tmp_path / "ckpt",
                telemetry="on",
                obs_server="127.0.0.1:0",
            ),
        )
        try:
            topology.add_replica(name="r0")
            topology.add_replica(
                StreamConfig(
                    n_shards=2,
                    batch_max_ops=32,
                    train_rounds=2,
                    oplog_path=tmp_path / "heir-oplog.jsonl",
                    checkpoint_dir=tmp_path / "heir-ckpt",
                ),
                name="heir",
            )
            topology.ingest(events[:120])
            topology.flush()
            topology.sync()
            address = topology.obs_address
            topology.promote(1)  # the durable follower takes over
            assert topology.obs_address == address
            status, report = get_json(address, "/readyz")
            assert status == 200
            # The surviving replica is re-registered on the new primary;
            # the promoted one no longer reports as a replica.
            assert "replica:r0" in report["checks"]
            assert "replica:heir" not in report["checks"]
        finally:
            topology.close()


class TestFollowerDaemon:
    def make_primary(self, dataset, tmp_path, spool):
        config = StreamConfig(
            n_shards=2,
            batch_max_ops=32,
            train_rounds=2,
            oplog_path=tmp_path / "primary-oplog.jsonl",
            checkpoint_dir=tmp_path / "primary-ckpt",
        )
        primary = ClusteringService(make_factory(dataset), config)
        from repro.replica import LogShipper

        shipper = LogShipper(
            primary.oplog, snapshots=primary.checkpoints.load_latest
        )
        transport = MailboxTransport(spool)
        shipper.attach(transport)
        return primary, shipper, transport

    def follower_config(self, tmp_path):
        return StreamConfig(n_shards=2, batch_max_ops=32, train_rounds=2)

    def test_ready_only_after_bootstrap(self, dataset, events, tmp_path):
        spool = tmp_path / "spool"
        primary, shipper, _ = self.make_primary(dataset, tmp_path, spool)
        primary.ingest(events[:120])
        primary.flush()
        primary.checkpoint()
        shipper.ship()

        daemon = FollowerDaemon(
            make_factory(dataset),
            self.follower_config(tmp_path),
            spool,
            name="f1",
            listen="127.0.0.1:0",
        )
        try:
            address = daemon.obs_address
            # Before the first poll: alive, but gated out of the pool.
            assert get(address, "/healthz")[0] == 200
            status, report = get_json(address, "/readyz")
            assert status == 503
            assert report["gated"] is True and report["ready"] is False

            assert daemon.run_once() > 0
            assert daemon.bootstrapped

            status, report = get_json(address, "/readyz")
            assert status == 200
            assert report["gated"] is False and report["ready"] is True
            assert set(report["checks"]) >= {"spool", "service"}

            # The follower converged to the primary's partition.
            assert daemon.replica.service.partition() == primary.partition()
        finally:
            daemon.close()
            primary.close()

    def test_heartbeat_alone_opens_the_gate(self, dataset, tmp_path):
        # A live-but-idle primary still counts as bootstrapped: the
        # follower has proof of a primary and an (empty) state to serve.
        spool = tmp_path / "spool"
        primary, shipper, _ = self.make_primary(dataset, tmp_path, spool)
        shipper.ship(heartbeat=True)
        daemon = FollowerDaemon(
            make_factory(dataset), self.follower_config(tmp_path), spool, name="f1"
        )
        try:
            assert not daemon.bootstrapped
            daemon.run_once()
            assert daemon.bootstrapped
        finally:
            daemon.close()
            primary.close()

    def test_gap_flips_spool_check_failing_but_keeps_serving(
        self, dataset, events, tmp_path
    ):
        spool = tmp_path / "spool"
        primary, shipper, transport = self.make_primary(dataset, tmp_path, spool)
        primary.ingest(events[:120])
        primary.flush()
        primary.checkpoint()
        shipper.ship()

        daemon = FollowerDaemon(
            make_factory(dataset), self.follower_config(tmp_path), spool, name="f1"
        )
        try:
            daemon.run_once()
            assert daemon.bootstrapped and daemon.gap is None
            before = daemon.replica.service.partition()

            # Ship a segment the follower can't connect to (a hole).
            from repro.replica.segment import LogSegment
            from repro.stream import add

            hole = tuple(
                add(9000 + i, "px").with_seq(10_000 + i) for i in range(3)
            )
            MailboxTransport(spool).publish(
                LogSegment(10_000, 10_002, hole, primary_seq=10_002, shipped_at=1.0)
            )
            assert daemon.run_once() == 0
            assert daemon.gap is not None
            report = daemon.health.report()
            assert report["status"] == "failing" and report["ready"] is False
            assert report["checks"]["spool"]["status"] == "failing"
            # Stale but consistent state keeps serving.
            assert daemon.replica.service.partition() == before

            # A primary-side resync heals it (the shipper addresses its
            # own attached transport; both point at the same spool).
            shipper.resync(transport)
            daemon.run_once()
            assert daemon.gap is None
            assert daemon.health.report()["ready"] is True
        finally:
            daemon.close()
            primary.close()

    def test_main_max_polls_runs_and_exits(self, dataset, events, tmp_path, capsys):
        # The CLI end-to-end with the built-in demo factory: the primary
        # side must use the *same* factory for states to line up.
        from repro.replica.follower import demo_factory, main

        spool = tmp_path / "spool"
        config = StreamConfig(
            n_shards=2,
            batch_max_ops=256,
            train_rounds=3,
            oplog_path=tmp_path / "primary-oplog.jsonl",
            checkpoint_dir=tmp_path / "primary-ckpt",
        )
        primary = ClusteringService(demo_factory, config)
        from repro.data.workload import OperationMix, build_workload
        from repro.replica import LogShipper

        demo_dataset = generate_access(n_profiles=8, n_records=500, seed=3)
        workload = build_workload(
            demo_dataset,
            initial_count=60,
            n_snapshots=3,
            mixes=OperationMix(add=0.1),
            seed=2,
        )
        primary.ingest(workload.event_stream()[:100])
        primary.flush()
        primary.checkpoint()
        shipper = LogShipper(primary.oplog, snapshots=primary.checkpoints.load_latest)
        shipper.attach(MailboxTransport(spool))
        shipper.ship()
        primary.close()

        code = main(
            [
                "--spool",
                str(spool),
                "--name",
                "cli-follower",
                "--max-polls",
                "2",
                "--poll-interval",
                "0.01",
                "--batch-max-ops",
                "256",
                "--train-rounds",
                "3",
                "--quiet",
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "cli-follower" in err and "endpoints at http://" in err

    def test_load_factory_errors_are_actionable(self):
        from repro.replica.follower import load_factory

        with pytest.raises(SystemExit, match="cannot import"):
            load_factory("no.such.module:factory")
        with pytest.raises(SystemExit, match="no attribute"):
            load_factory("json:nope")
        with pytest.raises(SystemExit, match="module:attr"):
            load_factory("bare")
