"""Tests for model serialisation (train once, serve after restart)."""

import numpy as np
import pytest

from repro.clustering.batch import HillClimbing
from repro.clustering.objectives import DBIndexObjective
from repro.core import DynamicC, DynamicCModel
from repro.data.generators import generate_cora
from repro.data.workload import OperationMix, build_workload
from repro.ml import (
    ConstantClassifier,
    DecisionTreeClassifier,
    LinearSVMClassifier,
    LogisticRegressionClassifier,
)
from repro.ml.persistence import load_model, model_from_dict, model_to_dict, save_model


def _data(seed=0, n=80):
    rng = np.random.default_rng(seed)
    X0 = rng.normal([-1.5, -1.5], 0.5, size=(n // 2, 2))
    X1 = rng.normal([1.5, 1.5], 0.5, size=(n // 2, 2))
    return np.vstack([X0, X1]), np.array([0] * (n // 2) + [1] * (n // 2))


@pytest.mark.parametrize(
    "model_cls",
    [LogisticRegressionClassifier, LinearSVMClassifier, DecisionTreeClassifier],
)
class TestClassifierRoundtrip:
    def test_probabilities_preserved(self, model_cls, tmp_path):
        X, y = _data()
        model = model_cls().fit(X, y)
        path = tmp_path / "model.json"
        save_model(model, path)
        restored = load_model(path)
        np.testing.assert_allclose(
            restored.predict_proba(X), model.predict_proba(X), rtol=1e-12
        )

    def test_unfitted_rejected(self, model_cls, tmp_path):
        with pytest.raises(ValueError):
            save_model(model_cls(), tmp_path / "x.json")


class TestEdgeCases:
    def test_constant_classifier_roundtrip(self):
        restored = model_from_dict(model_to_dict(ConstantClassifier(0.25)))
        assert restored.predict_proba([[1.0, 2.0]])[0] == 0.25

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            model_from_dict({"kind": "transformer"})

    def test_unknown_model_type_rejected(self):
        with pytest.raises(TypeError):
            model_to_dict(object())


class TestDynamicCModelBundle:
    def test_bundle_roundtrip_drives_identical_predictions(self, tmp_path):
        dataset = generate_cora(n_entities=25, n_duplicates=75, seed=41)
        workload = build_workload(
            dataset,
            initial_count=40,
            n_snapshots=4,
            mixes=OperationMix(add=0.2, remove=0.02, update=0.03),
            seed=2,
        )
        graph = dataset.graph()
        for obj_id, payload in workload.initial.items():
            graph.add_object(obj_id, payload)
        dyn = DynamicC(graph, DBIndexObjective(), seed=0)
        dyn.bootstrap(HillClimbing(DBIndexObjective()).cluster(graph))
        for snapshot in workload.snapshots[:2]:
            dyn.observe_round(
                added=snapshot.added,
                removed=snapshot.removed,
                updated=snapshot.updated,
            )
        dyn.train()

        path = tmp_path / "dynamicc.json"
        dyn.model.save(path)
        restored = DynamicCModel.load(path)
        assert restored.is_trained
        assert restored.merge_theta == dyn.model.merge_theta
        assert restored.split_theta == dyn.model.split_theta

        # The restored bundle drives an identical prediction round.
        from repro.core.features import cluster_features

        for cid in list(dyn.clustering.cluster_ids())[:10]:
            feats = cluster_features(dyn.clustering, cid)
            assert restored.merge_probability(feats) == pytest.approx(
                dyn.model.merge_probability(feats)
            )

    def test_untrained_bundle_save_rejected(self, tmp_path):
        with pytest.raises(RuntimeError):
            DynamicCModel().save(tmp_path / "x.json")

    def test_untrained_bundle_dict_rejected(self):
        from repro.ml.persistence import bundle_to_dict

        with pytest.raises(ValueError):
            bundle_to_dict(DynamicCModel())


class TestDynamicCCheckpointHooks:
    """The repro.stream durability hooks: full engine state roundtrip."""

    def _trained_engine(self):
        dataset = generate_cora(n_entities=25, n_duplicates=75, seed=41)
        workload = build_workload(
            dataset,
            initial_count=40,
            n_snapshots=4,
            mixes=OperationMix(add=0.2, remove=0.02, update=0.03),
            seed=2,
        )
        graph = dataset.graph()
        for obj_id, payload in workload.initial.items():
            graph.add_object(obj_id, payload)
        dyn = DynamicC(graph, DBIndexObjective(), seed=0)
        dyn.bootstrap(HillClimbing(DBIndexObjective()).cluster(graph))
        for snapshot in workload.snapshots[:2]:
            dyn.observe_round(
                added=snapshot.added,
                removed=snapshot.removed,
                updated=snapshot.updated,
            )
        dyn.train()
        return dataset, workload, dyn

    def test_state_roundtrips_through_json(self):
        import json

        dataset, workload, dyn = self._trained_engine()
        state = json.loads(json.dumps(dyn.checkpoint_state()))

        # Rebuild a twin engine over an identical graph.
        graph = dataset.graph()
        for obj_id in dyn.graph.object_ids():
            graph.add_object(obj_id, dyn.graph.payload(obj_id))
        twin = DynamicC(graph, DBIndexObjective(), seed=999)
        twin.restore_state(state)

        assert twin.clustering.as_partition() == dyn.clustering.as_partition()
        assert twin.model.is_trained
        assert twin.model.merge_theta == dyn.model.merge_theta
        assert len(twin.buffer) == len(dyn.buffer)
        # RNG state carried over: both engines draw identically.
        assert twin._rng.random() == dyn._rng.random()

        # And the twin predicts the next round identically.
        snapshot = workload.snapshots[2]
        dyn.apply_round(
            added=snapshot.added, removed=snapshot.removed, updated=snapshot.updated
        )
        twin.apply_round(
            added=snapshot.added, removed=snapshot.removed, updated=snapshot.updated
        )
        assert twin.clustering.as_partition() == dyn.clustering.as_partition()

    def test_untrained_engine_checkpoints_without_model(self):
        dataset = generate_cora(n_entities=10, n_duplicates=20, seed=1)
        graph = dataset.graph()
        for record in dataset.records[:10]:
            graph.add_object(record.id, record.payload)
        dyn = DynamicC(graph, DBIndexObjective(), seed=0)
        dyn.bootstrap(HillClimbing(DBIndexObjective()).cluster(graph))
        state = dyn.checkpoint_state()
        assert state["model"] is None

        twin = DynamicC(graph, DBIndexObjective(), seed=0)
        twin.restore_state(state)
        assert not twin.model.is_trained
        assert twin.clustering.as_partition() == dyn.clustering.as_partition()

    def test_restore_keeps_configured_model_factories(self):
        """The bundle serialises fitted parameters, not factories; a
        restored engine must refit in its configured model family."""
        from repro.ml import DecisionTreeClassifier

        dataset, _, dyn = self._trained_engine()
        state = dyn.checkpoint_state()

        graph = dataset.graph()
        for obj_id in dyn.graph.object_ids():
            graph.add_object(obj_id, dyn.graph.payload(obj_id))
        twin = DynamicC(
            graph,
            DBIndexObjective(),
            model=DynamicCModel(merge_factory=DecisionTreeClassifier),
            seed=0,
        )
        twin.restore_state(state)
        assert twin.model._merge_factory is DecisionTreeClassifier
        # A post-recovery refit really fits the configured family.
        twin.train()
        assert isinstance(twin.model.merge_model, DecisionTreeClassifier)

    def test_untrained_snapshot_clears_trained_model(self):
        _, _, trained = self._trained_engine()
        untrained_state = {
            "labels": trained.checkpoint_state()["labels"],
            "model": None,
            "buffer": trained.buffer.state_dict(),
            "rounds_since_fit": 0,
            "rng_state": trained._rng.bit_generator.state,
        }
        trained.restore_state(untrained_state)
        # A stale trained model must not survive an untrained snapshot.
        assert not trained.model.is_trained
