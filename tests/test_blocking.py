"""Unit tests for candidate indexes (blocking)."""

from repro.similarity.blocking import BruteForceIndex, TokenBlockingIndex


class TestBruteForce:
    def test_everything_is_candidate(self):
        index = BruteForceIndex()
        index.add(1, "a")
        index.add(2, "b")
        assert index.candidates("anything") == {1, 2}

    def test_remove(self):
        index = BruteForceIndex()
        index.add(1, "a")
        index.remove(1, "a")
        assert index.candidates("x") == set()

    def test_len(self):
        index = BruteForceIndex()
        index.add(1, "a")
        assert len(index) == 1


class TestTokenBlocking:
    def test_shared_token_generates_candidate(self):
        index = TokenBlockingIndex()
        index.add(1, "red apple")
        index.add(2, "green apple")
        index.add(3, "blue sky")
        assert index.candidates("yellow apple") == {1, 2}

    def test_no_shared_token(self):
        index = TokenBlockingIndex()
        index.add(1, "red apple")
        assert index.candidates("blue sky") == set()

    def test_remove_clears_blocks(self):
        index = TokenBlockingIndex()
        index.add(1, "red apple")
        index.remove(1, "red apple")
        assert index.candidates("red") == set()
        assert index.block_sizes() == {}

    def test_custom_key(self):
        index = TokenBlockingIndex(key=lambda payload: payload)
        index.add(1, frozenset({"x", "y"}))
        assert index.candidates(frozenset({"y"})) == {1}

    def test_stopword_guard(self):
        index = TokenBlockingIndex(max_block_size=2)
        for obj_id in range(5):
            index.add(obj_id, "common token%d" % obj_id)
        # "common" block exceeded the cap, so it stops producing candidates.
        assert index.candidates("common") == set()
        assert index.candidates("token3") == {3}

    def test_multiple_tokens_union(self):
        index = TokenBlockingIndex()
        index.add(1, "alpha beta")
        index.add(2, "gamma delta")
        assert index.candidates("beta gamma") == {1, 2}
