"""Tests for the from-scratch ML substrate (Table 4's model families)."""

import numpy as np
import pytest

from repro.ml import (
    DecisionTreeClassifier,
    LinearSVMClassifier,
    LogisticRegressionClassifier,
    StandardScaler,
    accuracy,
    confusion_matrix,
    f1_score,
    precision,
    recall,
)


def _separable(n=120, seed=0):
    """Linearly separable 2-D data with a margin."""
    rng = np.random.default_rng(seed)
    X0 = rng.normal([-2.0, -2.0], 0.6, size=(n // 2, 2))
    X1 = rng.normal([2.0, 2.0], 0.6, size=(n // 2, 2))
    X = np.vstack([X0, X1])
    y = np.array([0] * (n // 2) + [1] * (n // 2))
    return X, y


def _xorish(n=200, seed=1):
    """XOR data: not linearly separable, easy for a tree."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    return X, y


ALL_MODELS = [
    LogisticRegressionClassifier,
    LinearSVMClassifier,
    DecisionTreeClassifier,
]


@pytest.mark.parametrize("model_cls", ALL_MODELS)
class TestCommonBehaviour:
    def test_separable_accuracy(self, model_cls):
        X, y = _separable()
        model = model_cls().fit(X, y)
        assert accuracy(y, model.predict(X)) >= 0.95

    def test_proba_in_unit_interval(self, model_cls):
        X, y = _separable()
        probabilities = model_cls().fit(X, y).predict_proba(X)
        assert np.all(probabilities >= 0.0) and np.all(probabilities <= 1.0)

    def test_threshold_semantics(self, model_cls):
        # Eq. (2): label 1 iff P >= θ; θ=0 ⇒ everything positive.
        X, y = _separable()
        model = model_cls().fit(X, y)
        assert np.all(model.predict(X, threshold=0.0) == 1)

    def test_predict_one(self, model_cls):
        X, y = _separable()
        model = model_cls().fit(X, y)
        assert model.predict_one(X[0]) == y[0]

    def test_unfitted_raises(self, model_cls):
        with pytest.raises(RuntimeError):
            model_cls().predict_proba([[0.0, 0.0]])

    def test_rejects_non_binary_labels(self, model_cls):
        with pytest.raises(ValueError):
            model_cls().fit([[0.0], [1.0]], [0, 2])

    def test_length_mismatch(self, model_cls):
        with pytest.raises(ValueError):
            model_cls().fit([[0.0], [1.0], [2.0]], [0, 1])


class TestLogisticRegression:
    def test_probabilities_ordered_along_margin(self):
        X, y = _separable()
        model = LogisticRegressionClassifier().fit(X, y)
        p_neg = model.proba_one([-3.0, -3.0])
        p_mid = model.proba_one([0.0, 0.0])
        p_pos = model.proba_one([3.0, 3.0])
        assert p_neg < p_mid < p_pos

    def test_feature_weights_exposed(self):
        X, y = _separable()
        model = LogisticRegressionClassifier().fit(X, y)
        weights = model.feature_weights()
        assert weights.shape == (2,)
        assert np.all(weights > 0)  # both features push towards class 1

    def test_balanced_class_weight(self):
        rng = np.random.default_rng(3)
        X0 = rng.normal(-1.5, 0.5, size=(180, 1))
        X1 = rng.normal(1.5, 0.5, size=(20, 1))
        X = np.vstack([X0, X1])
        y = np.array([0] * 180 + [1] * 20)
        balanced = LogisticRegressionClassifier(class_weight="balanced").fit(X, y)
        assert recall(y, balanced.predict(X)) >= 0.9


class TestLinearSVM:
    def test_decision_function_sign(self):
        X, y = _separable()
        model = LinearSVMClassifier().fit(X, y)
        margins = model.decision_function(X)
        assert accuracy(y, (margins > 0).astype(int)) >= 0.95

    def test_platt_calibration_monotone(self):
        X, y = _separable()
        model = LinearSVMClassifier().fit(X, y)
        margins = model.decision_function(X)
        probabilities = model.predict_proba(X)
        order = np.argsort(margins)
        assert np.all(np.diff(probabilities[order]) >= -1e-9)


class TestDecisionTree:
    def test_learns_xor(self):
        X, y = _xorish()
        model = DecisionTreeClassifier(max_depth=4).fit(X, y)
        assert accuracy(y, model.predict(X)) >= 0.9

    def test_depth_respected(self):
        X, y = _xorish()
        model = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert model.depth() <= 2

    def test_single_class_leaf(self):
        model = DecisionTreeClassifier().fit([[0.0], [1.0]], [1, 1])
        # Laplace smoothing keeps probability off exactly 1.
        assert 0.5 < model.proba_one([0.5]) < 1.0

    def test_constant_features_fall_back_to_leaf(self):
        X = np.zeros((10, 3))
        y = np.array([0, 1] * 5)
        model = DecisionTreeClassifier().fit(X, y)
        assert model.depth() == 0
        assert model.proba_one([0, 0, 0]) == pytest.approx(0.5)


class TestScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5.0, 3.0, size=(200, 4))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-9)

    def test_constant_feature_guard(self):
        X = np.array([[1.0, 5.0], [1.0, 7.0]])
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z[:, 0], 0.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform([[1.0]])


class TestMetrics:
    def test_confusion_matrix_layout(self):
        # Figure 3's layout: rows actual, columns predicted.
        matrix = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1])
        assert matrix[0][0] == 1 and matrix[0][1] == 1
        assert matrix[1][0] == 0 and matrix[1][1] == 2

    def test_paper_figure3_numbers(self):
        # §5.4 example: 144 clusters, accuracy 0.889, precision ~0.889,
        # recall ~0.992 from the heat map counts (8, 15 / 1, 120).
        y_true = [0] * 23 + [1] * 121
        y_pred = [0] * 8 + [1] * 15 + [0] * 1 + [1] * 120
        assert accuracy(y_true, y_pred) == pytest.approx(128 / 144)
        assert precision(y_true, y_pred) == pytest.approx(120 / 135)
        assert recall(y_true, y_pred) == pytest.approx(120 / 121)

    def test_recall_with_no_positives_is_one(self):
        assert recall([0, 0], [0, 1]) == 1.0

    def test_precision_with_no_predictions_is_zero(self):
        assert precision([1, 1], [0, 0]) == 0.0

    def test_f1_harmonic_mean(self):
        y_true = [1, 1, 0, 0]
        y_pred = [1, 0, 1, 0]
        p, r = precision(y_true, y_pred), recall(y_true, y_pred)
        assert f1_score(y_true, y_pred) == pytest.approx(2 * p * r / (p + r))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            confusion_matrix([0, 1], [0])
