"""Fault-injection tests: sweep a crash through every durability boundary.

Each scenario is run once uninjected to enumerate its crash points
(`FaultInjector` dry run), then re-run crashing before each point in
turn, asserting the published/stored state is never partially visible
— the systematic version of the ad-hoc "kill it mid-write" tests.
"""

from __future__ import annotations

import pytest

from faultinject import FaultInjector, InjectedCrash, sample_crash_points, tear_file
from repro.faults import ErrorInjector, FaultSpec
from repro.replica import LogSegment, MailboxTransport, SnapshotArtifact
from repro.stream import add, open_checkpoints
from repro.stream.oplog import OperationLog


def snapshot_artifact(applied_seq=7):
    state = {"applied_seq": applied_seq, "n_shards": 1, "shards": ["stub"]}
    return SnapshotArtifact.from_state(state, primary_seq=9, shipped_at=1.0)


def segment(first=1, n=3):
    ops = tuple(add(100 + i, f"p{i}").with_seq(first + i) for i in range(n))
    return LogSegment(first, first + n - 1, ops, primary_seq=first + n - 1, shipped_at=1.0)


def crash_point_count(scenario) -> int:
    """Dry-run a scenario callable against a fresh env; returns op count."""
    with FaultInjector() as injector:
        scenario()
    return len(injector)


class TestPublishAtomicity:
    @pytest.mark.parametrize("make_artifact", [snapshot_artifact, segment])
    def test_crash_at_every_publish_point_leaves_nothing_visible(
        self, tmp_path, make_artifact
    ):
        artifact = make_artifact()
        total = crash_point_count(
            lambda: MailboxTransport(tmp_path / "dry").publish(artifact)
        )
        assert total >= 3  # temp fsync, rename, directory fsync
        for crash_at in range(1, total + 1):
            spool = tmp_path / f"crash-{crash_at}"
            transport = MailboxTransport(spool)
            with pytest.raises(InjectedCrash):
                with FaultInjector(crash_at=crash_at):
                    transport.publish(artifact)
            # All-or-nothing: before the rename nothing is visible;
            # after it the complete artifact is — a *partial* artifact
            # is never pollable at any crash point.
            reader = MailboxTransport(spool)
            assert reader.poll() in ([], [artifact])
            assert reader.quarantined == 0
            # The "restarted publisher" retries and the artifact arrives
            # complete — leftover temp files don't get in the way.
            MailboxTransport(spool).publish(artifact)
            assert MailboxTransport(spool).poll() == [artifact]

    def test_publish_trace_is_deterministic(self, tmp_path):
        traces = []
        for run in range(2):
            with FaultInjector() as injector:
                MailboxTransport(tmp_path / f"run-{run}").publish(segment())
            traces.append([kind for kind, _ in injector.trace])
        assert traces[0] == traces[1]

    def test_torn_mailbox_file_is_quarantined_not_fatal(self, tmp_path):
        spool = tmp_path / "mail"
        publisher = MailboxTransport(spool)
        good = segment(first=1)
        damaged = segment(first=4)
        publisher.publish(good)
        publisher.publish(damaged)
        (torn_path,) = [
            p for p in publisher.pending() if "000000000004" in p.name
        ]
        assert tear_file(torn_path, seed=7) > 0

        consumer = MailboxTransport(spool)
        assert consumer.poll() == [good]  # the damage is not fatal…
        assert consumer.quarantined == 1  # …and is set aside, with evidence:
        assert list(spool.glob("*.quarantined"))
        # A quarantined file is not re-read forever.
        assert consumer.poll() == []
        assert consumer.quarantined == 1

    def test_transient_read_errors_stop_the_drain_without_quarantining(
        self, tmp_path
    ):
        """Only proven damage is quarantined; an OSError on read (fd
        pressure, a lock on a synced spool) must leave the file pending
        for a later poll — and must stop the drain there, so later
        artifacts are neither delivered out of order nor deleted."""
        spool = tmp_path / "mail"
        publisher = MailboxTransport(spool)
        good = segment(first=1)
        behind = segment(first=11, n=2)
        publisher.publish(good)
        publisher.publish(behind)
        # A directory wearing a segment file's name: open() raises
        # IsADirectoryError (an OSError) even for root, unlike chmod.
        (spool / "segment-000000000009-000000000009.json").mkdir()
        consumer = MailboxTransport(spool)
        assert consumer.poll() == [good]  # stops at the unreadable file
        assert consumer.quarantined == 0
        assert [p.name for p in consumer.pending()] == [
            "segment-000000000009-000000000009.json",
            "segment-000000000011-000000000012.json",
        ]
        # Once the blip clears, the stream resumes in order.
        (spool / "segment-000000000009-000000000009.json").rmdir()
        assert consumer.poll() == [behind]

    def test_unlink_failure_does_not_lose_delivered_artifacts(
        self, tmp_path, monkeypatch
    ):
        """An OSError on consume-time unlink must not discard the drain:
        the artifact is delivered, the file stays, and the next poll's
        redelivery is dropped by the follower's duplicate handling."""
        import pathlib

        spool = tmp_path / "mail"
        good = segment(first=1)
        MailboxTransport(spool).publish(good)
        consumer = MailboxTransport(spool)
        with monkeypatch.context() as patched:
            patched.setattr(
                pathlib.Path,
                "unlink",
                lambda self, *a, **k: (_ for _ in ()).throw(OSError("locked")),
            )
            assert consumer.poll() == [good]
        # The blip cleared: the leftover file is redelivered, then gone.
        assert consumer.poll() == [good]
        assert consumer.poll() == []

    def test_tear_file_is_deterministic(self, tmp_path):
        kept = []
        for run in range(2):
            path = tmp_path / f"victim-{run}"
            path.write_bytes(b"x" * 100)
            kept.append(tear_file(path, seed=13))
        assert kept[0] == kept[1] and 0 < kept[0] < 100


class TestCheckpointSaveAtomicity:
    def test_crash_at_every_save_point_keeps_a_loadable_store(self, tmp_path):
        old_state = {"applied_seq": 5, "shards": ["old"]}
        new_state = {"applied_seq": 9, "shards": ["new"]}
        total = crash_point_count(
            lambda: open_checkpoints(tmp_path / "dry").save(dict(new_state))
        )
        assert total >= 3  # file fsync, rename, directory fsync
        for crash_at in range(1, total + 1):
            directory = tmp_path / f"crash-{crash_at}"
            store = open_checkpoints(directory)
            store.save(dict(old_state))
            with pytest.raises(InjectedCrash):
                with FaultInjector(crash_at=crash_at):
                    store.save(dict(new_state))
            # Whatever the crash point: the newest *readable* snapshot
            # is exactly the old or the new one, never garbage.
            recovered = open_checkpoints(directory).load_latest()
            assert recovered in (old_state, new_state)
            # The restarted process saves again and the new state wins.
            open_checkpoints(directory).save(dict(new_state))
            assert open_checkpoints(directory).load_latest() == new_state


class TestLogTruncateAtomicity:
    N_OPS = 20
    TRUNCATE_THROUGH = 10

    def _build_log(self, path) -> OperationLog:
        log = OperationLog(path)
        log.append([add(i, f"p{i}") for i in range(self.N_OPS)])
        return log

    def test_crash_at_every_truncate_point_leaves_log_usable(self, tmp_path):
        def dry():
            log = self._build_log(tmp_path / "dry.jsonl")
            log.truncate_through(self.TRUNCATE_THROUGH)
            log.close()

        total = crash_point_count(dry)
        assert total >= 3  # suffix fsync, rename, directory fsync
        for crash_at in range(1, total + 1):
            path = tmp_path / f"crash-{crash_at}.jsonl"
            log = self._build_log(path)
            with pytest.raises(InjectedCrash):
                with FaultInjector(crash_at=crash_at):
                    log.truncate_through(self.TRUNCATE_THROUGH)
            log.close()
            # The "restarted process" reopens whichever file survived:
            # the full log or the truncated suffix — contiguous either
            # way, with the tail position intact and appends working.
            reopened = OperationLog(path)
            seqs = [op.seq for op in reopened.iter_from(0)]
            assert seqs in (
                list(range(1, self.N_OPS + 1)),
                list(range(self.TRUNCATE_THROUGH + 1, self.N_OPS + 1)),
            )
            assert reopened.last_seq == self.N_OPS
            (appended,) = reopened.append([add(999, "post-crash")])
            assert appended.seq == self.N_OPS + 1
            reopened.close()


class TestSqliteTruncateAtomicity:
    """Exhaustive crash sweep of sqlite ``truncate_through``.

    The sqlite backend commits inside the C library, below every os-level
    boundary :class:`FaultInjector` can intercept — so this sweep drives
    the *named* boundaries (``fire()`` crossings) instead: a census run
    counts them, then one run per (boundary, crossing) crashes exactly
    there. Whatever the crash point, the reopened log must hold either
    the full history or the truncated suffix — contiguous either way,
    with ``last_seq`` intact and appends working.
    """

    N_OPS = 20
    TRUNCATE_THROUGH = 10

    def _build_log(self, path):
        from repro.stream import SqliteOperationLog

        log = SqliteOperationLog(path)
        log.append([add(i, f"p{i}") for i in range(self.N_OPS)])
        return log

    def test_crash_at_every_named_boundary_leaves_log_usable(self, tmp_path):
        from repro.stream import SqliteOperationLog

        log = self._build_log(tmp_path / "dry.sqlite")
        with ErrorInjector() as census:  # no specs: pure boundary census
            log.truncate_through(self.TRUNCATE_THROUGH)
        log.close()
        assert census.hits.get("oplog.compact", 0) >= 2  # DELETE + VACUUM legs
        assert census.hits.get("oplog.fsync", 0) >= 1  # the COMMIT

        full = list(range(1, self.N_OPS + 1))
        suffix = list(range(self.TRUNCATE_THROUGH + 1, self.N_OPS + 1))
        for boundary, crossings in sorted(census.hits.items()):
            for crash_at in range(1, crossings + 1):
                path = tmp_path / f"crash-{boundary}-{crash_at}.sqlite"
                log = self._build_log(path)
                with pytest.raises(InjectedCrash):
                    with ErrorInjector(FaultSpec(boundary, crash_at=crash_at)):
                        log.truncate_through(self.TRUNCATE_THROUGH)
                log.close()
                reopened = SqliteOperationLog(path)
                seqs = [op.seq for op in reopened.iter_from(0)]
                assert seqs in (full, suffix), (
                    f"{boundary} crash #{crash_at}: partially-truncated "
                    f"log visible after reopen: {seqs}"
                )
                # Truncation never moves the durable upper bound.
                assert reopened.last_seq == self.N_OPS
                (appended,) = reopened.append([add(999, "post-crash")])
                assert appended.seq == self.N_OPS + 1
                reopened.close()


class TestSharedOplogTearSweep:
    """Torn-tail sweep over the *tenant-stamped* shared oplog.

    The multi-tenant service funnels every tenant through one log; a
    torn tail there must heal on reopen, and each tenant's recovered
    membership must equal exactly the adds that survived in the healed
    log — no tenant may see a neighbour's ops or its own lost ones.
    """

    N_PER_TENANT = 12

    def _populate(self, root):
        from repro.serve import Service

        svc = Service.open(
            engine_factory=TestRoutedAssignmentRecovery._factory,
            n_shards=2,
            batch_max_ops=8,
            train_rounds=1,
            root_dir=root,
        )
        for i in range(self.N_PER_TENANT):
            svc.tenant("alpha").ingest([add(i, f"tok{i % 5} shared{i % 3}")])
            svc.tenant("bravo").ingest([add(100 + i, f"tok{i % 4} other{i % 2}")])
        # Simulated crash: abandon the service without close() — close
        # checkpoints, and a checkpoint would mask the log damage this
        # sweep exists to exercise. Only the log handle is released so
        # buffered lines reach the file the tear will bite.
        svc.manager.oplog.close()

    @staticmethod
    def _logged_adds(path):
        """id set per tenant actually present in the (healed) log."""
        from repro.stream.events import ADD

        log = OperationLog(path)
        try:
            by_tenant: dict = {}
            for op in log.iter_from(0):
                if op.kind == ADD:
                    by_tenant.setdefault(op.tenant, set()).add(op.obj_id)
            return by_tenant
        finally:
            log.close()

    def test_torn_shared_log_recovers_each_tenant_exactly(self, tmp_path):
        import shutil

        from repro.serve import Service

        pristine = tmp_path / "pristine"
        self._populate(pristine)
        losses = 0
        for seed in (3, 11, 19, 27):
            root = tmp_path / f"tear-{seed}"
            shutil.copytree(pristine, root)
            tear_file(root / "oplog.jsonl", seed=seed)
            # Reading heals the torn tail; what survived is the truth
            # every tenant's recovered state must reproduce.
            surviving = self._logged_adds(root / "oplog.jsonl")
            expected_total = sum(len(ids) for ids in surviving.values())
            if expected_total < 2 * self.N_PER_TENANT:
                losses += 1

            with Service.open(
                engine_factory=TestRoutedAssignmentRecovery._factory,
                n_shards=2,
                batch_max_ops=8,
                train_rounds=1,
                root_dir=root,
            ) as svc:
                for tenant in ("alpha", "bravo"):
                    handle = svc.tenant(tenant)
                    handle.flush()
                    live = set().union(*handle.clusters().values(), set())
                    assert live == surviving.get(tenant, set()), (
                        f"seed {seed}: tenant {tenant} recovered {sorted(live)}, "
                        f"healed log says {sorted(surviving.get(tenant, set()))}"
                    )
                # The healed service is a working service.
                assert svc.tenant("alpha").ingest([add(900, "post tear")]) == 1
        assert losses > 0  # the sweep tore real data somewhere


class TestHarness:
    def test_sample_crash_points_is_seeded_and_bounded(self):
        first = sample_crash_points(50, 10, seed=3)
        assert first == sample_crash_points(50, 10, seed=3)
        assert first != sample_crash_points(50, 10, seed=4)
        assert len(first) == 10 and all(1 <= p <= 50 for p in first)
        assert sample_crash_points(3, 10, seed=0) == [1, 2, 3]
        assert sample_crash_points(0, 5, seed=0) == []


class TestRoutedAssignmentRecovery:
    """Sweep a crash through the least-loaded (routed-assignment) oplog
    path: whatever survives, recovery must place every live object on
    exactly the shard its logged stamp names — and do so reproducibly."""

    N_SHARDS = 2

    def _config(self, base):
        from repro.stream import StreamConfig

        return StreamConfig(
            n_shards=self.N_SHARDS,
            batch_max_ops=8,
            train_rounds=1,
            router="least-loaded",
            oplog_path=base / "oplog.jsonl",
            checkpoint_dir=base / "ckpt",
            fsync=True,
        )

    @staticmethod
    def _factory():
        from repro.clustering.objectives import CorrelationObjective
        from repro.core import DynamicC
        from repro.similarity import JaccardSimilarity, SimilarityGraph

        return DynamicC(
            SimilarityGraph(JaccardSimilarity(), store_threshold=0.05),
            CorrelationObjective(),
            seed=0,
        )

    def _scenario(self, base):
        from repro.stream import ClusteringService, remove, update

        with ClusteringService(self._factory, self._config(base)) as service:
            for i in range(24):
                service.ingest([add(i, f"tok{i % 5} shared{i % 3}")])
            service.checkpoint()
            for i in range(8):
                service.ingest([update(i, f"tok{i % 4} changed")])
            for i in range(4):
                service.ingest([remove(i)])
            service.flush()
            service.checkpoint()

    @staticmethod
    def _stamped_placements(config):
        """Last logged shard stamp per id, net of removes (the truth the
        recovered membership must reproduce for every live id)."""
        from repro.stream import open_log
        from repro.stream.events import FLUSH, REMOVE

        log = open_log(config.oplog_path)
        try:
            stamped: dict[int, int] = {}
            for op in log.iter_from(0):
                if op.kind == FLUSH:
                    continue
                if op.kind == REMOVE:
                    stamped.pop(op.obj_id, None)
                elif op.shard is not None:
                    stamped[op.obj_id] = op.shard
            return stamped
        finally:
            log.close()

    def test_crash_sweep_preserves_routed_placement(self, tmp_path):
        from repro.stream import ClusteringService

        total = 0
        with FaultInjector() as injector:
            self._scenario(tmp_path / "dry")
        total = len(injector)
        assert total >= 10  # appends fsync + two checkpoint saves

        for crash_at in sample_crash_points(total, k=10, seed=29):
            base = tmp_path / f"crash-{crash_at}"
            with pytest.raises(InjectedCrash):
                with FaultInjector(crash_at=crash_at):
                    self._scenario(base)

            config = self._config(base)
            stamped = self._stamped_placements(config)
            recoveries = []
            for _ in range(2):
                with ClusteringService.recover(self._factory, config) as rec:
                    rec.flush()
                    live = rec.membership.live_ids()
                    # Every live object whose stamp survived compaction
                    # sits exactly where the stamp says (ids whose adds
                    # were compacted away are covered by the checkpoint
                    # and the reproducibility check below).
                    for obj_id in live & set(stamped):
                        assert rec.membership.shard_of(obj_id) == stamped[obj_id], (
                            f"crash@{crash_at}: object {obj_id} recovered onto "
                            f"shard {rec.membership.shard_of(obj_id)}, stamp says "
                            f"{stamped[obj_id]}"
                        )
                    recoveries.append((sorted(live), rec.partition()))
            assert recoveries[0] == recoveries[1]  # recovery is reproducible
