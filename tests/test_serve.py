"""Tests for `repro.serve`: the multi-tenant service front door.

The acceptance invariants of the serve redesign:

* **isolation** — interleaving many tenants through one shared
  tenant-stamped log leaves each tenant's partition identical to a run
  of that tenant alone, including across crash/recovery, compaction
  and replica catch-up;
* **quotas** — admission control rejects whole batches with typed
  :class:`~repro.errors.QuotaExceeded` before any state is touched,
  and every rejection is counted per tenant and reason;
* **LRU activation** — the resident-pool cap is respected, evicted
  tenants reload lazily with no data loss, and the resident gauge
  tracks the pool.
"""

from __future__ import annotations

import warnings

import pytest

from repro.clustering.objectives import DBIndexObjective
from repro.core import DynamicC
from repro.data import OperationMix, tenant_stream, zipf_weights
from repro.data.generators import generate_access
from repro.errors import ConfigError, QuotaExceeded, ServeError, UnknownTenantError
from repro.serve import ServeConfig, Service, TokenBucket
from repro.stream import ClusteringService, StreamConfig, add


@pytest.fixture(scope="module")
def dataset():
    return generate_access(n_profiles=6, n_records=240, seed=3)


@pytest.fixture(scope="module")
def stream(dataset):
    """A deterministic interleaved 4-tenant stream (zipfian skew)."""
    return tenant_stream(
        dataset,
        n_tenants=4,
        n_ops=400,
        tenant_skew=1.0,
        key_skew=1.0,
        mix=OperationMix(add=0.70, remove=0.10, update=0.20),
        seed=11,
    )


def make_factory(dataset):
    def factory():
        return DynamicC(dataset.graph(), DBIndexObjective(), seed=0)

    return factory


#: Round-cut knobs shared by every service in this module — the serve
#: and solo runs must agree on them for the isolation property to hold.
CUT = dict(n_shards=2, batch_max_ops=16, train_rounds=2)


def open_service(dataset, **kwargs):
    return Service.open(engine_factory=make_factory(dataset), **CUT, **kwargs)


def solo_partition(dataset, operations, flush=True):
    """The partition of one tenant's operations run through a solo
    (pre-serve) service with the same round-cut parameters."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        service = ClusteringService(make_factory(dataset), StreamConfig(**CUT))
    service.ingest(operations)
    if flush:
        service.flush()
    partition = service.partition()
    service.close()
    return partition


def pv(dataset, i):
    """A real (numeric) payload — rounds actually apply in these tests."""
    return dataset.records[i % len(dataset.records)].payload


def by_tenant(stream):
    out: dict[str, list] = {}
    for tenant, op in stream:
        out.setdefault(tenant, []).append(op)
    return out


def drive(service, stream):
    for tenant, op in stream:
        service.tenant(tenant).ingest([op])


class TestTokenBucket:
    def test_grant_and_refill(self):
        now = [0.0]
        bucket = TokenBucket(rate=10.0, burst=5.0, clock=lambda: now[0])
        assert bucket.try_acquire(5) is None  # burst drained
        retry = bucket.try_acquire(2)
        assert retry == pytest.approx(0.2)
        now[0] += 0.2  # 2 tokens refilled
        assert bucket.try_acquire(2) is None
        now[0] += 100.0
        assert bucket.tokens == pytest.approx(5.0)  # capped at burst

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)


class TestTenantWorkload:
    def test_deterministic_and_consistent(self, dataset, stream):
        again = tenant_stream(
            dataset,
            n_tenants=4,
            n_ops=400,
            tenant_skew=1.0,
            key_skew=1.0,
            mix=OperationMix(add=0.70, remove=0.10, update=0.20),
            seed=11,
        )
        assert [(t, op.kind, op.obj_id) for t, op in stream] == [
            (t, op.kind, op.obj_id) for t, op in again
        ]
        # Per-tenant streams are self-consistent: removes and updates
        # only ever touch that tenant's live ids, adds never repeat one.
        live: dict[str, set[int]] = {}
        for tenant, op in stream:
            alive = live.setdefault(tenant, set())
            if op.kind == "add":
                assert op.obj_id not in alive
                alive.add(op.obj_id)
            elif op.kind == "remove":
                assert op.obj_id in alive
                alive.discard(op.obj_id)
            else:
                assert op.obj_id in alive

    def test_tenant_skew_orders_traffic(self, stream):
        counts = {}
        for tenant, _ in stream:
            counts[tenant] = counts.get(tenant, 0) + 1
        ordered = [counts.get(f"tenant-{i:03d}", 0) for i in range(4)]
        # Zipf rank order: tenant-000 is the hot tenant.
        assert ordered[0] == max(ordered)
        assert ordered[0] > ordered[-1]

    def test_zipf_weights(self):
        import numpy as np

        uniform = zipf_weights(5, 0.0)
        assert np.allclose(uniform, 0.2)
        skewed = zipf_weights(5, 1.2)
        assert skewed[0] > skewed[1] > skewed[4]
        assert skewed.sum() == pytest.approx(1.0)
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(5, -0.1)

    def test_input_validation(self, dataset):
        with pytest.raises(ValueError):
            tenant_stream(dataset, 0, 10)
        with pytest.raises(ValueError):
            tenant_stream(dataset, 2, -1)
        with pytest.raises(ValueError):
            tenant_stream(dataset, 2, 10, mix=OperationMix(add=0, remove=0, update=0))


class TestTenantIsolation:
    def test_interleaved_equals_alone_ephemeral(self, dataset, stream):
        """The core property: multi-tenant interleaving is invisible."""
        svc = open_service(dataset)
        drive(svc, stream)
        svc.flush()
        per_tenant = by_tenant(stream)
        for tenant, ops in per_tenant.items():
            assert svc.tenant(tenant).partition() == solo_partition(
                dataset, ops
            ), f"{tenant} diverged from its run-alone partition"
        stats = svc.stats()
        assert stats["ops_total"] == len(stream)
        assert stats["backlog"] == 0
        svc.close()

    def test_crash_recover_preserves_isolation(self, dataset, stream, tmp_path):
        """Kill the service mid-flight; the reopened one matches solo
        runs — per-tenant checkpoints + the shared-log suffix replay."""
        svc = open_service(dataset, root_dir=tmp_path / "state")
        drive(svc, stream[:300])
        # Stagger durability so recovery exercises both paths: one
        # tenant restarts from a checkpoint + suffix, the rest from
        # a pure log replay.
        svc.tenant("tenant-000").checkpoint()
        drive(svc, stream[300:])
        live = {t: svc.tenant(t).partition() for t in by_tenant(stream)}
        # Crash: abandon without close() (no final checkpoints).
        svc.manager.oplog.close()

        svc2 = open_service(dataset, root_dir=tmp_path / "state")
        for tenant, ops in by_tenant(stream).items():
            handle = svc2.tenant(tenant)
            assert handle.partition() == live[tenant]
            handle.flush()
            assert handle.partition() == solo_partition(dataset, ops)
        svc2.close()

    def test_replica_catches_up_per_tenant(self, dataset, stream, tmp_path):
        """Tenant-filtered replicas fed full shared-log segments
        converge on exactly their tenant's primary partition."""
        svc = open_service(dataset, root_dir=tmp_path / "state")
        drive(svc, stream[:200])
        replicas = {
            tenant: svc.tenant(tenant).add_replica()
            for tenant in sorted(by_tenant(stream))
        }
        svc.sync()
        drive(svc, stream[200:])
        svc.flush()
        result = svc.sync()
        assert result["published"] > 0
        for tenant, replica in replicas.items():
            assert replica.partition() == svc.tenant(tenant).partition()
            assert replica.lag()["seq_delta"] == 0
        stats = svc.stats()
        assert set(stats["replicas"]) == {
            replica.name for replica in replicas.values()
        }
        svc.close()

    def test_compaction_respects_every_tenant(self, dataset, stream, tmp_path):
        svc = open_service(dataset, root_dir=tmp_path / "state")
        drive(svc, stream)
        # Any tenant without a checkpoint pins the log at zero.
        svc.tenant("tenant-000").checkpoint()
        assert svc.compact()["truncated_through"] == 0
        svc.flush()
        svc.checkpoint()  # all resident tenants
        report = svc.compact()
        assert report["truncated_through"] > 0
        # The truncated log still reloads every tenant exactly.
        live = {t: svc.tenant(t).partition() for t in by_tenant(stream)}
        svc.close()
        svc2 = open_service(dataset, root_dir=tmp_path / "state")
        for tenant, partition in live.items():
            assert svc2.tenant(tenant).partition() == partition
        svc2.close()

    def test_tenants_listing(self, dataset):
        svc = open_service(dataset)
        svc.tenant("a").ingest([("add", 1, pv(dataset, 1))])
        svc.tenant("b").ingest([("add", 1, pv(dataset, 1))])
        assert svc.tenants() == [
            {"tenant": "a", "resident": True},
            {"tenant": "b", "resident": True},
        ]
        # Same object id in two tenants: fully namespaced.
        assert svc.tenant("a").num_objects() == svc.tenant("b").num_objects()
        with pytest.raises(UnknownTenantError):
            svc.manager.tenant_stats("never-seen")
        svc.close()


class TestQuotas:
    def test_rate_quota_rejects_with_retry_after(self, dataset):
        svc = open_service(dataset, quota_ops_per_s=5.0, quota_burst=8)
        handle = svc.tenant("q")
        handle.ingest([("add", i, pv(dataset, i)) for i in range(8)])
        with pytest.raises(QuotaExceeded) as excinfo:
            handle.ingest([("add", 100, pv(dataset, 100))])
        err = excinfo.value
        assert err.tenant == "q" and err.reason == "ops_rate"
        assert err.retry_after_s is not None and err.retry_after_s > 0
        assert isinstance(err, ServeError) and isinstance(err, RuntimeError)
        assert svc.stats()["quota_rejections"] == {"q": {"ops_rate": 1}}
        svc.close()

    def test_object_quota_counts_pending(self, dataset):
        """The live-object cap projects over applied *and* buffered
        adds, so a burst inside one micro-batch cannot slip past."""
        svc = open_service(dataset, quota_max_objects=20)
        handle = svc.tenant("q")
        handle.ingest([("add", i, pv(dataset, i)) for i in range(12)])  # < batch, pending
        with pytest.raises(QuotaExceeded) as excinfo:
            handle.ingest([("add", 100 + i, pv(dataset, 100 + i)) for i in range(9)])
        err = excinfo.value
        assert err.reason == "max_objects"
        assert err.limit == 20 and err.current == 12
        # Updates of existing ids are not new objects: still admitted.
        assert handle.ingest([("update", 3, pv(dataset, 53))]) == 1
        # Removing frees quota (flush applies the removes).
        handle.ingest([("remove", i) for i in range(8)])
        handle.flush()
        assert handle.ingest([("add", 200 + i, pv(dataset, 200 + i)) for i in range(9)]) == 9
        svc.close()

    def test_backlog_quota(self, dataset):
        svc = open_service(dataset, quota_max_pending=10)
        handle = svc.tenant("q")
        handle.ingest([("add", i, pv(dataset, i)) for i in range(10)])
        with pytest.raises(QuotaExceeded) as excinfo:
            handle.ingest([("add", 50, pv(dataset, 50))])
        assert excinfo.value.reason == "backlog"
        handle.flush()  # drains the batcher
        assert handle.ingest([("add", 50, pv(dataset, 50))]) == 1
        svc.close()

    def test_rejection_is_atomic_and_counted(self, dataset):
        """A bounced batch mutates nothing — not even the rate tokens —
        and lands in the labeled rejection counter."""
        svc = open_service(
            dataset,
            telemetry="on",
            quota_ops_per_s=5.0,
            quota_burst=4,
            quota_max_objects=50,
        )
        handle = svc.tenant("q")
        handle.ingest([("add", 1, pv(dataset, 1))])
        before = svc.tenant("q").stats()["ops_total"]
        bucket = svc.manager.activate("q").bucket
        tokens_before = bucket.tokens
        # Bounced on max_objects (60 new > 50) before the bucket runs.
        with pytest.raises(QuotaExceeded):
            handle.ingest([("add", 100 + i, pv(dataset, i)) for i in range(60)])
        assert bucket.tokens == pytest.approx(tokens_before, abs=0.1)
        assert svc.tenant("q").stats()["ops_total"] == before
        assert svc.stats()["quota_rejections_total"] == 1
        labeled = svc.stats()["telemetry"]["metrics"]["quota_rejections_total"]
        assert labeled == {"tenant=q,reason=max_objects": 1}
        svc.close()

    def test_quotas_are_per_tenant(self, dataset):
        svc = open_service(dataset, quota_ops_per_s=5.0, quota_burst=4)
        svc.tenant("a").ingest([("add", i, pv(dataset, i)) for i in range(4)])
        with pytest.raises(QuotaExceeded):
            svc.tenant("a").ingest([("add", 9, pv(dataset, 9))])
        # Tenant b has its own bucket, untouched by a's burst.
        assert svc.tenant("b").ingest([("add", i, pv(dataset, i)) for i in range(4)]) == 4
        svc.close()


class TestLRUActivation:
    def test_cap_respected_and_no_data_loss(self, dataset, stream, tmp_path):
        svc = open_service(
            dataset, root_dir=tmp_path / "state", max_resident_tenants=2
        )
        drive(svc, stream)  # 4 tenants through a 2-pool cap
        stats = svc.stats()
        assert stats["resident_tenants"] <= 2
        assert stats["known_tenants"] == 4
        assert stats["evictions_total"] >= 2
        assert stats["activations_total"] > 4  # reloads happened
        # Evicted tenants report residency without being activated.
        evicted = [
            name
            for name, snap in stats["tenants"].items()
            if not snap["resident"]
        ]
        assert len(evicted) == 4 - stats["resident_tenants"]
        # Every tenant still matches its run-alone partition (pending
        # ops survived eviction via the shared log)...
        for tenant, ops in by_tenant(stream).items():
            handle = svc.tenant(tenant)
            handle.flush()
            assert handle.partition() == solo_partition(dataset, ops)
        # ...and reading them back kept the cap.
        assert svc.stats()["resident_tenants"] <= 2
        svc.close()

    def test_gauge_and_lru_order(self, dataset, tmp_path):
        svc = open_service(
            dataset,
            root_dir=tmp_path / "state",
            max_resident_tenants=2,
            telemetry="on",
        )
        for name in ("a", "b", "c"):
            svc.tenant(name).ingest([("add", 1, pv(dataset, 1))])
        # "a" was least recently used: evicted when "c" activated.
        assert svc.manager.resident() == ["b", "c"]
        assert not svc.tenant("a").resident
        assert svc.stats()["telemetry"]["metrics"]["resident_tenants"] == 2
        # Touching "a" reloads it (pending op included) and evicts "b".
        svc.tenant("a").flush()
        assert svc.tenant("a").num_objects() == 1
        assert svc.manager.resident() == ["c", "a"]
        svc.close()

    def test_explicit_evict_errors(self, dataset, tmp_path):
        ephemeral = open_service(dataset)
        ephemeral.tenant("a").ingest([("add", 1, pv(dataset, 1))])
        with pytest.raises(RuntimeError, match="no root_dir"):
            ephemeral.manager.evict("a")
        assert ephemeral.tenant("a").resident  # put back, still usable
        ephemeral.close()

        durable = open_service(dataset, root_dir=tmp_path / "state")
        with pytest.raises(UnknownTenantError):
            durable.manager.evict("never-activated")
        durable.close()


class TestServeConfig:
    def factory(self):
        return lambda: None

    def test_unknown_kwarg_did_you_mean(self):
        with pytest.raises(ConfigError, match="did you mean 'n_shards'"):
            ServeConfig.from_kwargs(self.factory(), n_shard=4)

    def test_retired_kwargs_explain_replacement(self):
        with pytest.raises(ConfigError, match="root_dir"):
            ServeConfig.from_kwargs(self.factory(), oplog_path="x.jsonl")
        with pytest.raises(ConfigError, match="tenants/<name>/checkpoints"):
            ServeConfig.from_kwargs(self.factory(), checkpoint_dir="ckpt/")
        with pytest.raises(ConfigError, match="add_replica"):
            ServeConfig.from_kwargs(self.factory(), replicas=2)

    def test_serve_level_constraints(self, tmp_path):
        with pytest.raises(ConfigError, match="engine_factory"):
            ServeConfig(engine_factory="not-callable")
        with pytest.raises(ConfigError, match="root_dir"):
            ServeConfig(self.factory(), fsync=True)
        with pytest.raises(ConfigError, match="root_dir"):
            ServeConfig(self.factory(), max_resident_tenants=2)
        with pytest.raises(ConfigError, match="quota_ops_per_s"):
            ServeConfig(self.factory(), quota_burst=10)
        with pytest.raises(ConfigError):
            ServeConfig(self.factory(), quota_ops_per_s=-1.0)
        with pytest.raises(ConfigError):
            ServeConfig(self.factory(), root_dir=tmp_path, max_resident_tenants=0)
        # Shared streaming knobs fail through the same funnel.
        with pytest.raises(ValueError):
            ServeConfig(self.factory(), router="nonsense")
        with pytest.raises(ConfigError, match="ServeConfig|listen"):
            ServeConfig(self.factory(), obs_server="not a listen spec")

    def test_config_error_is_value_error(self):
        assert issubclass(ConfigError, ValueError)
        assert issubclass(ConfigError, ServeError)

    def test_open_rejects_ambiguous_calls(self, dataset):
        config = ServeConfig(make_factory(dataset))
        with pytest.raises(ConfigError, match="not both"):
            Service.open(config, n_shards=4)
        with pytest.raises(ConfigError, match="engine_factory is required"):
            Service.open(n_shards=4)

    def test_tenant_name_validation(self, dataset):
        svc = open_service(dataset)
        for bad in ("", "-leading-dash", "a/b", "x" * 65, 7):
            with pytest.raises(ConfigError, match="tenant name"):
                svc.tenant(bad)
        svc.tenant("Ok-name.v2_1")  # fine
        svc.close()


class TestDeprecatedFacades:
    def test_old_entry_points_warn(self, dataset):
        with pytest.warns(DeprecationWarning, match="repro.serve.Service"):
            service = ClusteringService(make_factory(dataset), StreamConfig(**CUT))
        service.ingest([add(1, pv(dataset, 1))])  # still fully functional
        service.flush()
        assert service.num_objects() == 1
        service.close()

    def test_replicated_facade_warns(self, dataset, tmp_path):
        from repro.replica import ReplicatedClusteringService

        config = StreamConfig(
            **CUT,
            oplog_path=tmp_path / "oplog",
            checkpoint_dir=tmp_path / "ckpt",
        )
        with pytest.warns(DeprecationWarning, match="repro.serve.Service"):
            service = ReplicatedClusteringService(make_factory(dataset), config)
        service.close()

    def test_serve_path_is_warning_free(self, dataset, tmp_path):
        """The new front door builds the same internals silently."""
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            svc = open_service(dataset, root_dir=tmp_path / "state")
            svc.tenant("a").ingest([("add", 1, pv(dataset, 1))])
            svc.tenant("a").add_replica()
            svc.sync()
            svc.checkpoint()
            svc.close()
            # Reopen exercises the recover() path, also internal.
            svc2 = open_service(dataset, root_dir=tmp_path / "state")
            assert svc2.tenant("a").num_objects() >= 0
            svc2.close()
