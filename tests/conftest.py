"""Shared fixtures built on the paper's running example."""

from __future__ import annotations

import pytest

from paper_example import (
    PAPER_EDGES,
    PAPER_FINAL_CLUSTERING,
    PAPER_IDS,
    PAPER_OBJECTS,
    build_paper_graph,
)
from repro.clustering.state import Clustering
from repro.similarity.graph import SimilarityGraph

@pytest.fixture
def paper_graph() -> SimilarityGraph:
    return build_paper_graph()


@pytest.fixture
def paper_singletons(paper_graph) -> Clustering:
    return Clustering.singletons(paper_graph)


@pytest.fixture
def paper_old_clustering(paper_graph) -> Clustering:
    """The "Old Clustering" of Figure 1: C1 = {r1,r2,r3}, C2 = {r4,r5}
    (over the first five objects only, r6/r7 not yet in any cluster)."""
    clustering = Clustering(paper_graph)
    c1 = clustering.add_singleton(PAPER_IDS["r1"])
    c1 = clustering.merge(c1, clustering.add_singleton(PAPER_IDS["r2"]))
    c1 = clustering.merge(c1, clustering.add_singleton(PAPER_IDS["r3"]))
    c2 = clustering.add_singleton(PAPER_IDS["r4"])
    c2 = clustering.merge(c2, clustering.add_singleton(PAPER_IDS["r5"]))
    return clustering


@pytest.fixture
def tiny_cora():
    from repro.data.generators import generate_cora

    return generate_cora(n_entities=20, n_duplicates=60, seed=11)
