"""Unit tests for the dynamic similarity graph."""

import pytest

from repro.similarity import JaccardSimilarity, SimilarityGraph
from repro.similarity.table import TableSimilarity

from paper_example import PAPER_EDGES, PAPER_IDS, build_paper_graph


class TestConstruction:
    def test_paper_total_weight(self, paper_graph):
        # Example 4.1: F(L1) = total weight = 5.2 over singletons.
        assert paper_graph.total_weight == pytest.approx(5.2)

    def test_edge_count(self, paper_graph):
        assert paper_graph.edge_count() == len(PAPER_EDGES)

    def test_similarity_lookup(self, paper_graph):
        assert paper_graph.similarity(
            PAPER_IDS["r1"], PAPER_IDS["r7"]
        ) == pytest.approx(1.0)
        assert paper_graph.similarity(PAPER_IDS["r1"], PAPER_IDS["r4"]) == 0.0

    def test_self_similarity_zero(self, paper_graph):
        assert paper_graph.similarity(PAPER_IDS["r1"], PAPER_IDS["r1"]) == 0.0

    def test_store_threshold_validation(self):
        with pytest.raises(ValueError):
            SimilarityGraph(JaccardSimilarity(), store_threshold=1.5)

    def test_duplicate_add_rejected(self, paper_graph):
        with pytest.raises(KeyError):
            paper_graph.add_object(PAPER_IDS["r1"], "r1")

    def test_missing_remove_rejected(self, paper_graph):
        with pytest.raises(KeyError):
            paper_graph.remove_object(999)

    def test_threshold_filters_edges(self):
        table = TableSimilarity({("a", "b"): 0.04, ("a", "c"): 0.5})
        graph = SimilarityGraph(table, store_threshold=0.1)
        for obj_id, payload in enumerate(["a", "b", "c"], start=1):
            graph.add_object(obj_id, payload)
        assert graph.similarity(1, 2) == 0.0  # below threshold: not stored
        assert graph.similarity(1, 3) == 0.5


class TestDynamicOperations:
    def test_remove_updates_weight(self):
        graph = build_paper_graph()
        graph.remove_object(PAPER_IDS["r7"])  # drops the 1.0 edge
        assert graph.total_weight == pytest.approx(4.2)
        assert PAPER_IDS["r7"] not in graph

    def test_update_rescores(self):
        table = TableSimilarity({("a", "b"): 0.9, ("a2", "b"): 0.2})
        graph = SimilarityGraph(table, store_threshold=0.1)
        graph.add_object(1, "a")
        graph.add_object(2, "b")
        assert graph.similarity(1, 2) == pytest.approx(0.9)
        graph.update_object(1, "a2")
        assert graph.similarity(1, 2) == pytest.approx(0.2)
        assert graph.payload(1) == "a2"

    def test_version_bumps(self):
        graph = build_paper_graph()
        v0 = graph.version
        graph.remove_object(PAPER_IDS["r6"])
        assert graph.version > v0

    def test_add_after_remove(self):
        graph = build_paper_graph()
        graph.remove_object(PAPER_IDS["r6"])
        graph.add_object(PAPER_IDS["r6"], "r6")
        assert graph.similarity(PAPER_IDS["r6"], PAPER_IDS["r4"]) == pytest.approx(0.8)


class TestAggregates:
    def test_intra_weight(self, paper_graph):
        members = {PAPER_IDS["r4"], PAPER_IDS["r5"], PAPER_IDS["r6"]}
        assert paper_graph.intra_weight(members) == pytest.approx(0.9 + 0.8 + 0.7)

    def test_cross_weight(self, paper_graph):
        left = {PAPER_IDS["r1"], PAPER_IDS["r2"]}
        right = {PAPER_IDS["r3"], PAPER_IDS["r7"]}
        assert paper_graph.cross_weight(left, right) == pytest.approx(0.9 + 1.0)

    def test_cross_weight_requires_disjoint(self, paper_graph):
        with pytest.raises(ValueError):
            paper_graph.cross_weight({1, 2}, {2, 3})

    def test_component_of(self, paper_graph):
        component = paper_graph.component_of([PAPER_IDS["r4"]])
        assert component == {PAPER_IDS["r4"], PAPER_IDS["r5"], PAPER_IDS["r6"]}

    def test_components_partition_objects(self, paper_graph):
        components = paper_graph.components()
        all_ids = set()
        for component in components:
            assert not (component & all_ids)
            all_ids |= component
        assert all_ids == set(PAPER_IDS.values())
        assert len(components) == 2  # {r1,r2,r3,r7} and {r4,r5,r6}

    def test_edges_iterated_once(self, paper_graph):
        edges = list(paper_graph.edges())
        assert len(edges) == paper_graph.edge_count()
        assert all(a < b for a, b, _ in edges)


class TestBatchedMaintenance:
    def test_noop_update_returns_early(self):
        """Satellite: a payload-identical update must not rescore edges
        (and must not bump the version, so derived caches stay valid)."""
        table = TableSimilarity({("a", "b"): 0.9})
        graph = SimilarityGraph(table, store_threshold=0.1)
        graph.add_object(1, "a")
        graph.add_object(2, "b")
        version = graph.version
        calls = 0
        original = table.similarity

        def counting(x, y):
            nonlocal calls
            calls += 1
            return original(x, y)

        table.similarity = counting
        graph.update_object(1, "a")
        assert calls == 0
        assert graph.version == version
        assert graph.similarity(1, 2) == pytest.approx(0.9)

    def test_noop_update_with_numpy_payload(self):
        import numpy as np

        from repro.similarity import EuclideanSimilarity

        graph = SimilarityGraph(EuclideanSimilarity(scale=1.0))
        graph.add_object(1, np.array([1.0, 2.0]))
        graph.add_object(2, np.array([1.1, 2.1]))
        version = graph.version
        graph.update_object(1, np.array([1.0, 2.0]))  # equal array, new object
        assert graph.version == version
        graph.update_object(1, np.array([9.0, 9.0]))  # a real change rescores
        assert graph.version > version

    def test_update_of_missing_object_rejected(self):
        graph = build_paper_graph()
        with pytest.raises(KeyError):
            graph.update_object(999, "zzz")

    def test_add_objects_matches_serial_adds(self):
        """The batched round-level insert must build the exact graph the
        serial path builds (same edges, same total weight)."""
        payloads = {
            1: "alpha beta",
            2: "beta gamma",
            3: "gamma delta",
            4: "alpha delta",
        }
        serial = SimilarityGraph(JaccardSimilarity(), store_threshold=0.05)
        for obj_id, payload in payloads.items():
            serial.add_object(obj_id, payload)
        batched = SimilarityGraph(JaccardSimilarity(), store_threshold=0.05)
        batched.add_objects(payloads)
        assert dict(batched.neighbors(1)) == dict(serial.neighbors(1))
        assert batched.total_weight == pytest.approx(serial.total_weight)
        assert batched.edge_count() == serial.edge_count()
        # One structural change for the whole round.
        assert batched.version == 1

    def test_add_objects_scores_each_pair_once(self):
        fn = JaccardSimilarity()
        calls = 0
        original = fn.similarity

        def counting(a, b):
            nonlocal calls
            calls += 1
            return original(a, b)

        fn.similarity = counting
        graph = SimilarityGraph(fn, store_threshold=0.0)
        graph.add_objects({i: f"tok{i} shared" for i in range(5)})
        assert calls == 5 * 4 // 2  # each unordered pair exactly once

    def test_prepare_runs_once_per_object(self):
        fn = JaccardSimilarity()
        prepares = 0
        original = fn.prepare

        def counting(payload):
            nonlocal prepares
            prepares += 1
            return original(payload)

        fn.prepare = counting
        graph = SimilarityGraph(fn, store_threshold=0.0)
        graph.add_objects({i: f"tok{i} shared" for i in range(6)})
        assert prepares == 6
