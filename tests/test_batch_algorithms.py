"""Tests for the batch algorithms: Hill-climbing, DBSCAN, Lloyd, KMeansBatch."""

import numpy as np
import pytest

from repro.clustering.batch import (
    DBSCAN,
    HillClimbing,
    KMeansBatch,
    LloydKMeans,
    eps_neighborhood,
    is_core,
    sse_of,
)
from repro.clustering.objectives import (
    CorrelationObjective,
    DBIndexObjective,
    KMeansObjective,
)
from repro.clustering.state import Clustering
from repro.evolution import EvolutionLog, MergeOp
from repro.similarity import EuclideanSimilarity, SimilarityGraph

from paper_example import PAPER_FINAL_CLUSTERING, PAPER_IDS


class TestHillClimbingCorrelation:
    def test_finds_paper_clustering(self, paper_graph):
        clustering = HillClimbing(CorrelationObjective()).cluster(paper_graph)
        assert clustering.as_partition() == PAPER_FINAL_CLUSTERING

    def test_steepest_finds_paper_clustering(self, paper_graph):
        clustering = HillClimbing(
            CorrelationObjective(), strategy="steepest"
        ).cluster(paper_graph)
        assert clustering.as_partition() == PAPER_FINAL_CLUSTERING

    def test_monotone_objective(self, paper_graph):
        obj = CorrelationObjective()
        singles = Clustering.singletons(paper_graph)
        start = obj.score(singles)
        result = HillClimbing(obj).cluster(paper_graph, initial=singles)
        assert obj.score(result) <= start

    def test_evolution_log_records_steps(self, paper_graph):
        log = EvolutionLog()
        HillClimbing(CorrelationObjective()).cluster(paper_graph, log=log)
        assert len(log) > 0
        assert any(isinstance(op, MergeOp) for op in log)

    def test_restrict_to_scope(self, paper_graph):
        # Restricting to {r4, r5, r6} must leave the r1/r2/r3/r7 side alone.
        clustering = HillClimbing(CorrelationObjective()).cluster(
            paper_graph,
            restrict_to={PAPER_IDS["r4"], PAPER_IDS["r5"], PAPER_IDS["r6"]},
        )
        for name in ("r1", "r2", "r3", "r7"):
            assert clustering.size(clustering.cluster_of(PAPER_IDS[name])) == 1

    def test_invalid_strategy(self):
        with pytest.raises(ValueError):
            HillClimbing(CorrelationObjective(), strategy="quantum")

    def test_dbindex_reaches_good_local_optimum(self, paper_graph):
        # DB-index hill climbing may stop at {r1,r2,r3,r7} instead of the
        # paper's {r2,r3}/{r1,r7} (escaping requires a 2-object split the
        # single-object split operator cannot express); the found optimum
        # must still be close in score and much better than singletons.
        obj = DBIndexObjective()
        clustering = HillClimbing(obj).cluster(paper_graph)
        from repro.clustering.state import Clustering
        paper = Clustering.from_groups(paper_graph, PAPER_FINAL_CLUSTERING)
        assert obj.score(clustering) <= DBIndexObjective().score(paper) * 1.2
        singles = DBIndexObjective().score(Clustering.singletons(paper_graph))
        assert obj.score(clustering) < 0.5 * singles

    def test_invariants_preserved(self, tiny_cora):
        graph = tiny_cora.graph()
        for record in tiny_cora.records:
            graph.add_object(record.id, record.payload)
        clustering = HillClimbing(DBIndexObjective()).cluster(graph)
        clustering.check_invariants()


class TestDBSCAN:
    @pytest.fixture
    def dense_graph(self):
        """Two dense strands plus an isolated noise point."""
        rng = np.random.default_rng(0)
        graph = SimilarityGraph(EuclideanSimilarity(scale=1.0), store_threshold=0.1)
        obj_id = 0
        for base in ([0.0, 0.0], [10.0, 10.0]):
            for i in range(8):
                point = np.array(base) + np.array([i * 0.4, 0.0]) + rng.normal(0, 0.02, 2)
                graph.add_object(obj_id, point)
                obj_id += 1
        graph.add_object(obj_id, np.array([50.0, 50.0]))  # noise
        return graph, obj_id

    def test_two_clusters_and_noise(self, dense_graph):
        graph, noise_id = dense_graph
        result = DBSCAN(sim_eps=0.5, min_pts=3).run(graph)
        assert noise_id in result.noise
        sizes = sorted(
            result.clustering.size(cid) for cid in result.clustering.cluster_ids()
        )
        assert sizes == [1, 8, 8]

    def test_core_points_detected(self, dense_graph):
        graph, noise_id = dense_graph
        result = DBSCAN(sim_eps=0.5, min_pts=3).run(graph)
        assert not is_core(graph, noise_id, 0.5, 3)
        assert len(result.core_points) > 0
        assert noise_id not in result.core_points

    def test_eps_neighborhood_excludes_self(self, dense_graph):
        graph, _ = dense_graph
        assert 0 not in eps_neighborhood(graph, 0, 0.5)

    def test_result_is_partition(self, dense_graph):
        graph, _ = dense_graph
        result = DBSCAN(sim_eps=0.5, min_pts=3).run(graph)
        result.clustering.check_invariants()
        assert result.clustering.num_objects() == len(graph)

    def test_min_pts_one_makes_everything_core(self, dense_graph):
        graph, _ = dense_graph
        result = DBSCAN(sim_eps=0.5, min_pts=1).run(graph)
        assert len(result.core_points) == len(graph)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DBSCAN(sim_eps=0.0, min_pts=3)
        with pytest.raises(ValueError):
            DBSCAN(sim_eps=0.5, min_pts=0)


class TestLloydKMeans:
    @pytest.fixture
    def blobs(self):
        rng = np.random.default_rng(1)
        vectors = {}
        obj_id = 0
        for center in ([0, 0], [10, 0], [0, 10]):
            for _ in range(15):
                vectors[obj_id] = np.array(center, dtype=float) + rng.normal(0, 0.5, 2)
                obj_id += 1
        return vectors

    def test_recovers_blobs(self, blobs):
        labels = LloydKMeans(k=3, seed=0).fit(blobs)
        groups = {}
        for obj_id, label in labels.items():
            groups.setdefault(label, set()).add(obj_id)
        sizes = sorted(len(g) for g in groups.values())
        assert sizes == [15, 15, 15]

    def test_sse_reasonable(self, blobs):
        labels = LloydKMeans(k=3, seed=0).fit(blobs)
        assert sse_of(blobs, labels) < 50.0

    def test_k_larger_than_n_rejected(self):
        with pytest.raises(ValueError):
            LloydKMeans(k=10).fit({0: np.zeros(2)})

    def test_deterministic_given_seed(self, blobs):
        a = LloydKMeans(k=3, seed=7).fit(blobs)
        b = LloydKMeans(k=3, seed=7).fit(blobs)
        assert a == b


class TestKMeansBatch:
    def test_reaches_target_k(self):
        rng = np.random.default_rng(2)
        graph = SimilarityGraph(EuclideanSimilarity(scale=1.0), store_threshold=0.1)
        obj_id = 0
        for center in ([0, 0], [8, 0], [0, 8]):
            for _ in range(10):
                graph.add_object(obj_id, np.array(center, float) + rng.normal(0, 0.4, 2))
                obj_id += 1
        objective = KMeansObjective(k=3, penalty=1e4)
        clustering = KMeansBatch(objective).cluster(graph)
        assert clustering.num_clusters() == 3
        clustering.check_invariants()

    def test_refines_supplied_initial(self):
        rng = np.random.default_rng(3)
        graph = SimilarityGraph(EuclideanSimilarity(scale=1.0), store_threshold=0.1)
        for obj_id in range(10):
            graph.add_object(
                obj_id, np.array([0.0, 0.0]) + rng.normal(0, 0.3, 2)
            )
        objective = KMeansObjective(k=1, penalty=1e4)
        initial = Clustering.singletons(graph)
        clustering = KMeansBatch(objective).cluster(graph, initial=initial)
        assert clustering.num_clusters() == 1
