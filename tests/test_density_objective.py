"""Tests for the density pseudo-objective (DynamicC-for-DBSCAN, §7.2.1)."""

import numpy as np
import pytest

from repro.clustering.batch import DBSCAN
from repro.clustering.state import Clustering
from repro.core.density import DBSCANBatchAdapter, DensityObjective
from repro.similarity import EuclideanSimilarity, SimilarityGraph


@pytest.fixture
def strand_graph():
    """Two dense strands of 6 points each, 0.4 apart, strands far apart."""
    rng = np.random.default_rng(5)
    graph = SimilarityGraph(EuclideanSimilarity(scale=1.0), store_threshold=0.1)
    obj_id = 0
    strands = []
    for base in ([0.0, 0.0], [30.0, 30.0]):
        members = []
        for i in range(6):
            point = np.array(base) + np.array([i * 0.4, 0.0]) + rng.normal(0, 0.01, 2)
            graph.add_object(obj_id, point)
            members.append(obj_id)
            obj_id += 1
        strands.append(members)
    return graph, strands


SIM_EPS, MIN_PTS = 0.5, 3


class TestDensityObjective:
    def test_exact_dbscan_scores_zero(self, strand_graph):
        graph, _ = strand_graph
        result = DBSCAN(SIM_EPS, MIN_PTS).run(graph)
        assert DensityObjective(SIM_EPS, MIN_PTS).score(result.clustering) == 0.0

    def test_fragmented_clustering_has_violations(self, strand_graph):
        graph, strands = strand_graph
        # Split each strand in half: core-core ε edges now cross clusters.
        groups = []
        for members in strands:
            groups.append(members[:3])
            groups.append(members[3:])
        clustering = Clustering.from_groups(graph, groups)
        assert DensityObjective(SIM_EPS, MIN_PTS).score(clustering) > 0.0

    def test_merge_justified_for_density_connected(self, strand_graph):
        graph, strands = strand_graph
        clustering = Clustering.from_groups(
            graph, [strands[0][:3], strands[0][3:], strands[1]]
        )
        objective = DensityObjective(SIM_EPS, MIN_PTS)
        a = clustering.cluster_of(strands[0][0])
        b = clustering.cluster_of(strands[0][3])
        assert objective.delta_merge(clustering, a, b) < 0

    def test_merge_rejected_for_distant_clusters(self, strand_graph):
        graph, strands = strand_graph
        clustering = Clustering.from_groups(graph, [strands[0], strands[1]])
        objective = DensityObjective(SIM_EPS, MIN_PTS)
        a = clustering.cluster_of(strands[0][0])
        b = clustering.cluster_of(strands[1][0])
        assert objective.delta_merge(clustering, a, b) > 0

    def test_split_justified_for_detached_member(self, strand_graph):
        graph, strands = strand_graph
        # An isolated far-away point forced into the strand's cluster is
        # not ε-reachable from any core member: the split is justified.
        graph.add_object(99, np.array([100.0, 100.0]))
        clustering = Clustering.from_groups(graph, [strands[0] + [99], strands[1]])
        objective = DensityObjective(SIM_EPS, MIN_PTS)
        cid = clustering.cluster_of(strands[0][0])
        assert objective.delta_split(clustering, cid, {99}) < 0

    def test_split_rejected_for_attached_member(self, strand_graph):
        graph, strands = strand_graph
        clustering = Clustering.from_groups(graph, [strands[0], strands[1]])
        objective = DensityObjective(SIM_EPS, MIN_PTS)
        cid = clustering.cluster_of(strands[0][0])
        assert objective.delta_split(clustering, cid, {strands[0][2]}) > 0

    def test_singleton_border_merge(self, strand_graph):
        graph, strands = strand_graph
        # A border point adjacent to a core is merged even if not core itself.
        graph.add_object(99, np.array([-0.45, 0.0]))
        clustering = Clustering.from_groups(graph, [strands[0], strands[1], [99]])
        objective = DensityObjective(SIM_EPS, MIN_PTS)
        a = clustering.cluster_of(99)
        b = clustering.cluster_of(strands[0][0])
        assert objective.delta_merge(clustering, a, b) < 0

    def test_group_merge_always_rejected(self, strand_graph):
        graph, strands = strand_graph
        clustering = Clustering.from_groups(
            graph, [strands[0][:3], strands[0][3:], strands[1]]
        )
        objective = DensityObjective(SIM_EPS, MIN_PTS)
        assert objective.delta_merge_group(clustering, list(clustering.cluster_ids())) > 0

    def test_core_cache_invalidated_on_graph_change(self, strand_graph):
        graph, strands = strand_graph
        objective = DensityObjective(SIM_EPS, MIN_PTS)
        assert objective._is_core(graph, strands[0][1])
        # Removing the neighbours demotes the point from core status.
        graph.remove_object(strands[0][0])
        graph.remove_object(strands[0][2])
        graph.remove_object(strands[0][3])
        assert not objective._is_core(graph, strands[0][1])


class TestDBSCANBatchAdapter:
    def test_matches_dbscan(self, strand_graph):
        graph, _ = strand_graph
        direct = DBSCAN(SIM_EPS, MIN_PTS).run(graph).clustering
        adapted = DBSCANBatchAdapter(SIM_EPS, MIN_PTS).cluster(graph)
        assert adapted.as_partition() == direct.as_partition()
