"""Tests for the dataset generators (Table 1 substitutes) and workloads."""

import numpy as np
import pytest

from repro.data.generators import (
    generate_access,
    generate_cora,
    generate_febrl,
    generate_musicbrainz,
    generate_road,
)
from repro.data.generators.base import duplicate_counts, typo
from repro.data.workload import DynamicWorkload, OperationMix, Snapshot, build_workload


ALL_GENERATORS = [
    lambda: generate_cora(n_entities=15, n_duplicates=45, seed=0),
    lambda: generate_musicbrainz(n_entities=15, n_duplicates=45, seed=0),
    lambda: generate_febrl(n_originals=15, n_duplicates=45, seed=0),
    lambda: generate_access(n_profiles=5, n_records=60, seed=0),
    lambda: generate_road(n_roads=4, points_per_road=15, seed=0),
]


@pytest.mark.parametrize("make", ALL_GENERATORS)
class TestGeneratorContracts:
    def test_unique_ids(self, make):
        dataset = make()
        ids = [record.id for record in dataset.records]
        assert len(ids) == len(set(ids))

    def test_truth_labels_cover_records(self, make):
        dataset = make()
        truth = dataset.truth_labels()
        assert set(truth) == {record.id for record in dataset.records}

    def test_graph_builds(self, make):
        dataset = make()
        graph = dataset.graph()
        for record in dataset.records[:30]:
            graph.add_object(record.id, record.payload)
        assert len(graph) == 30

    def test_corrupt_returns_same_type(self, make):
        dataset = make()
        rng = np.random.default_rng(0)
        payload = dataset.records[0].payload
        corrupted = dataset.corrupt(payload, rng)
        assert type(corrupted) is type(payload)

    def test_deterministic(self, make):
        a, b = make(), make()
        assert [r.id for r in a.records] == [r.id for r in b.records]
        assert a.records[0].truth == b.records[0].truth


class TestDuplicateStructure:
    def test_duplicates_similar_to_original(self):
        dataset = generate_cora(n_entities=20, n_duplicates=60, seed=1)
        graph = dataset.graph()
        for record in dataset.records:
            graph.add_object(record.id, record.payload)
        from collections import defaultdict

        groups = defaultdict(list)
        for record in dataset.records:
            groups[record.truth].append(record.id)
        sims = []
        for members in groups.values():
            for i in range(len(members)):
                for j in range(i + 1, len(members)):
                    sims.append(graph.similarity(members[i], members[j]))
        assert np.mean(sims) > 0.6

    def test_duplicate_counts_sum(self):
        rng = np.random.default_rng(0)
        for distribution in ("uniform", "poisson", "zipf"):
            counts = duplicate_counts(50, 200, distribution, rng)
            assert counts.sum() == 200
            assert (counts >= 0).all()

    def test_zipf_more_skewed_than_uniform(self):
        rng = np.random.default_rng(1)
        uniform = duplicate_counts(100, 400, "uniform", rng)
        zipf = duplicate_counts(100, 400, "zipf", rng)
        assert zipf.max() > uniform.max()

    def test_unknown_distribution(self):
        with pytest.raises(ValueError):
            duplicate_counts(10, 10, "cauchy", np.random.default_rng(0))

    def test_typo_changes_or_preserves_length_by_one(self):
        rng = np.random.default_rng(2)
        for _ in range(50):
            word = "clustering"
            mutated = typo(word, rng)
            assert abs(len(mutated) - len(word)) <= 1


class TestWorkload:
    @pytest.fixture
    def workload(self):
        dataset = generate_cora(n_entities=20, n_duplicates=80, seed=3)
        return build_workload(
            dataset,
            initial_count=30,
            n_snapshots=4,
            mixes=OperationMix(add=0.2, remove=0.05, update=0.05),
            seed=1,
        )

    def test_initial_count(self, workload):
        assert len(workload.initial) == 30

    def test_ops_reference_live_objects(self, workload):
        live = set(workload.initial)
        for snapshot in workload.snapshots:
            assert set(snapshot.removed) <= live
            live -= set(snapshot.removed)
            assert set(snapshot.updated) <= live
            assert not (set(snapshot.added) & live)
            live |= set(snapshot.added)

    def test_final_object_count_consistent(self, workload):
        live = set(workload.initial)
        for snapshot in workload.snapshots:
            live -= set(snapshot.removed)
            live |= set(snapshot.added)
        assert len(live) == workload.final_object_count()

    def test_live_ids_after(self, workload):
        assert workload.live_ids_after(0) == set(workload.initial)
        final = workload.live_ids_after(len(workload.snapshots))
        assert len(final) == workload.final_object_count()

    def test_operation_table_shape(self, workload):
        table = workload.operation_table()
        assert len(table) == 4
        for index, add, remove, update in table:
            assert 0 <= add <= 100
            assert 0 <= remove <= 100

    def test_per_snapshot_mixes(self):
        dataset = generate_cora(n_entities=20, n_duplicates=80, seed=3)
        mixes = [
            OperationMix(add=0.3, remove=0.0, update=0.0),
            OperationMix(add=0.0, remove=0.1, update=0.0),
        ]
        workload = build_workload(dataset, 30, 2, mixes=mixes, seed=0)
        assert len(workload.snapshots[0].added) == 9
        assert not workload.snapshots[0].removed
        assert len(workload.snapshots[1].removed) > 0

    def test_updates_corrupt_from_original(self):
        dataset = generate_cora(n_entities=10, n_duplicates=30, seed=5)
        workload = build_workload(
            dataset,
            initial_count=20,
            n_snapshots=3,
            mixes=OperationMix(add=0.0, remove=0.0, update=0.5),
            seed=2,
        )
        originals = {r.id: r.payload for r in dataset.records}
        from repro.similarity.jaccard import jaccard

        for snapshot in workload.snapshots:
            for obj_id, payload in snapshot.updated.items():
                # Updated payloads stay similar to the original record
                # (no compounding drift).
                assert jaccard(payload, originals[obj_id]) > 0.4

    def test_validation(self):
        dataset = generate_cora(n_entities=10, n_duplicates=10, seed=0)
        with pytest.raises(ValueError):
            build_workload(dataset, initial_count=0, n_snapshots=1)
        with pytest.raises(ValueError):
            build_workload(dataset, initial_count=10_000, n_snapshots=1)
        with pytest.raises(ValueError):
            build_workload(dataset, 5, 2, mixes=[OperationMix()])

    def test_snapshot_changed_ids(self):
        snapshot = Snapshot(added={1: "a"}, removed=[2], updated={3: "c"})
        assert snapshot.changed_ids() == {1, 2, 3}
        assert snapshot.counts() == (1, 1, 1)


class TestWorkloadEdgeCases:
    def test_live_ids_after_add_and_remove_in_one_snapshot(self):
        """An id added and removed in the same snapshot is dead after it:
        live_ids_after applies additions before removals, matching the
        workload-driver semantics where a snapshot's removals act on the
        post-add live set."""
        from repro.data.records import Dataset
        from repro.similarity.table import TableSimilarity

        dataset = Dataset(name="manual", similarity=TableSimilarity({}), records=[])
        workload = DynamicWorkload(
            dataset=dataset,
            initial={1: "a"},
            snapshots=[
                Snapshot(added={2: "b", 3: "c"}, removed=[2]),
                Snapshot(added={4: "d"}, removed=[1]),
            ],
        )
        assert workload.live_ids_after(0) == {1}
        assert workload.live_ids_after(1) == {1, 3}
        assert workload.live_ids_after(2) == {3, 4}
        # Removal wins even against the snapshot's own addition, so the
        # final count stays consistent with per-snapshot net deltas.
        assert len(workload.live_ids_after(2)) == workload.final_object_count()

    def test_operation_table_on_empty_initial_set(self):
        """A workload that starts from nothing must not divide by zero;
        the first row's percentages are taken against a base of 1."""
        from repro.data.records import Dataset
        from repro.similarity.table import TableSimilarity

        dataset = Dataset(name="manual", similarity=TableSimilarity({}), records=[])
        workload = DynamicWorkload(
            dataset=dataset,
            initial={},
            snapshots=[Snapshot(added={1: "a", 2: "b"}), Snapshot(removed=[1])],
        )
        table = workload.operation_table()
        assert table[0] == (1, 200.0, 0.0, 0.0)
        assert table[1] == (2, 0.0, 50.0, 0.0)

    def test_event_stream_adapter(self):
        """Snapshots flatten to stream operations in §6.1 order and the
        stream covers initial records plus every snapshot op."""
        dataset = generate_cora(n_entities=10, n_duplicates=30, seed=5)
        workload = build_workload(
            dataset,
            initial_count=20,
            n_snapshots=3,
            mixes=OperationMix(add=0.2, remove=0.05, update=0.05),
            seed=2,
        )
        snapshot = workload.snapshots[0]
        ops = snapshot.as_operations()
        kinds = [op.kind for op in ops]
        # removals, then updates, then additions
        assert kinds == sorted(kinds, key=("remove", "update", "add").index)
        assert [op.obj_id for op in ops if op.kind == "remove"] == snapshot.removed
        assert {op.obj_id: op.payload for op in ops if op.kind == "add"} == snapshot.added

        stream = workload.event_stream()
        n_snapshot_ops = sum(sum(s.counts()) for s in workload.snapshots)
        assert len(stream) == len(workload.initial) + n_snapshot_ops
        assert all(op.kind == "add" for op in stream[: len(workload.initial)])
        assert len(workload.event_stream(include_initial=False)) == n_snapshot_ops
