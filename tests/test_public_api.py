"""The public-API snapshot: exported names and callable signatures.

The serve redesign promises a stable public surface: ``repro.serve``
is the front door, the pre-serve façades keep their exact shape for
the deprecation window, and nothing leaks or disappears silently. This
test pins that contract against a checked-in golden file — any change
to ``__all__`` or a public signature fails here first and must be a
deliberate commit:

    REPRO_UPDATE_GOLDEN=1 python -m pytest tests/test_public_api.py

rewrites ``tests/golden/public_api.json`` after an intentional change.
"""

from __future__ import annotations

import importlib
import inspect
import json
import os
import pathlib
import re

GOLDEN = pathlib.Path(__file__).parent / "golden" / "public_api.json"

#: The modules whose exported surface is a compatibility promise.
PUBLIC_MODULES = (
    "repro",
    "repro.data",
    "repro.errors",
    "repro.faults",
    "repro.replica",
    "repro.serve",
    "repro.stream",
)


def _signature(obj) -> str | None:
    try:
        text = str(inspect.signature(obj))
    except (TypeError, ValueError):
        return None
    # Default values may repr with process-specific addresses
    # (lambdas, bound functions); those are not part of the contract.
    return re.sub(r" at 0x[0-9a-fA-F]+", "", text)


def _describe(obj) -> dict:
    if inspect.isclass(obj):
        methods = {}
        for name, member in sorted(vars(obj).items()):
            if name.startswith("_"):
                continue
            if callable(member) or isinstance(
                member, (classmethod, staticmethod, property)
            ):
                target = (
                    member.fget
                    if isinstance(member, property)
                    else getattr(member, "__func__", member)
                )
                methods[name] = (
                    "property" if isinstance(member, property) else _signature(target)
                )
        return {
            "kind": "exception" if issubclass(obj, BaseException) else "class",
            "init": _signature(obj),
            "members": methods,
        }
    if callable(obj):
        return {"kind": "function", "signature": _signature(obj)}
    return {"kind": type(obj).__name__}


def build_snapshot() -> dict:
    snapshot = {}
    for module_name in PUBLIC_MODULES:
        module = importlib.import_module(module_name)
        exports = sorted(module.__all__)
        snapshot[module_name] = {
            "all": exports,
            "api": {name: _describe(getattr(module, name)) for name in exports},
        }
    return snapshot


def test_public_api_matches_golden():
    current = build_snapshot()
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        GOLDEN.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN.write_text(json.dumps(current, indent=2, sort_keys=True) + "\n")
    assert GOLDEN.exists(), (
        "golden snapshot missing — generate it with "
        "REPRO_UPDATE_GOLDEN=1 python -m pytest tests/test_public_api.py"
    )
    golden = json.loads(GOLDEN.read_text())
    for module_name in PUBLIC_MODULES:
        assert module_name in golden, f"{module_name} missing from golden"
        want, got = golden[module_name], current[module_name]
        assert got["all"] == want["all"], (
            f"{module_name}.__all__ changed — if intentional, regenerate "
            "the golden (REPRO_UPDATE_GOLDEN=1) and document the change"
        )
        for name in want["api"]:
            assert got["api"].get(name) == want["api"][name], (
                f"{module_name}.{name} changed shape — if intentional, "
                "regenerate the golden (REPRO_UPDATE_GOLDEN=1)"
            )


def test_serve_is_the_front_door():
    """The redesign's headline exports exist with the promised shapes."""
    serve = importlib.import_module("repro.serve")
    for name in (
        "Service",
        "TenantHandle",
        "ServeConfig",
        "TenantManager",
        "TokenBucket",
        "ConfigError",
        "QuotaExceeded",
        "ServeError",
        "UnknownTenantError",
    ):
        assert name in serve.__all__, f"repro.serve must export {name}"
    open_params = inspect.signature(serve.Service.open).parameters
    assert "config" in open_params and "kwargs" in open_params
    # Errors are importable from the package root too.
    root = importlib.import_module("repro")
    assert {"Service", "ServeConfig", "QuotaExceeded", "ConfigError"} <= set(
        root.__all__
    )


def test_deprecated_facades_still_exported():
    """The old entry points remain public for the migration window."""
    stream = importlib.import_module("repro.stream")
    replica = importlib.import_module("repro.replica")
    assert "ClusteringService" in stream.__all__
    assert "ReplicatedClusteringService" in replica.__all__
