"""Unit tests for :mod:`repro.faults`: injection, retry, breakers.

The fault machinery itself must be deterministic and honest — a flaky
injector or a retry loop that quietly heals simulated process deaths
would make every chaos drill in ``test_chaos.py`` meaningless. These
tests pin the contracts: seeded schedules reproduce exactly, error
classification matches the documented table (ENOSPC is fatal, EIO is
transient), exhaustion is typed, and breakers walk
closed → open → half-open → closed with backoff doubling.
"""

from __future__ import annotations

import errno
import threading

import pytest

from repro.errors import DegradedError, DurabilityError
from repro.faults import (
    BOUNDARIES,
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    ErrorInjector,
    FaultSpec,
    InjectedCrash,
    NO_RETRY,
    RetryPolicy,
    default_classifier,
    enospc,
    eio,
    fire,
    flaky,
    slow,
)
from repro.obs import Telemetry
from repro.replica import LogSegment, MailboxTransport
from repro.replica.transport import InProcessTransport
from repro.stream import add


def segment(first=1, n=3):
    ops = tuple(add(100 + i, f"p{i}").with_seq(first + i) for i in range(n))
    return LogSegment(
        first, first + n - 1, ops, primary_seq=first + n - 1, shipped_at=1.0
    )


# ---------------------------------------------------------------------------
# ErrorInjector / FaultSpec
# ---------------------------------------------------------------------------
class TestErrorInjector:
    def test_fire_is_inert_without_an_active_injector(self):
        fire("oplog.append", "/nowhere")  # must not raise

    def test_unknown_boundary_fails_fast(self):
        with pytest.raises(ValueError, match="unknown fault boundary"):
            FaultSpec("oplog.frobnicate", error=errno.EIO)

    def test_empty_spec_fails_fast(self):
        with pytest.raises(ValueError, match="injects nothing"):
            FaultSpec("oplog.append")

    def test_persistent_error_until_lifted(self):
        with ErrorInjector(enospc("oplog.append")) as inj:
            for _ in range(3):
                with pytest.raises(OSError) as caught:
                    fire("oplog.append", "/log")
                assert caught.value.errno == errno.ENOSPC
            inj.lift("oplog.append")  # "the operator freed disk space"
            fire("oplog.append", "/log")
        assert inj.injected_total() == 3
        assert inj.hits["oplog.append"] == 4

    def test_lift_without_boundary_disarms_everything(self):
        with ErrorInjector(enospc("oplog.append"), eio("ship.publish")) as inj:
            inj.lift()
            fire("oplog.append")
            fire("ship.publish")
        assert inj.injected_total() == 0

    def test_fail_times_makes_the_fault_transient(self):
        with ErrorInjector(eio("ship.publish", fail_times=2)):
            for _ in range(2):
                with pytest.raises(OSError):
                    fire("ship.publish")
            fire("ship.publish")  # healed
            fire("ship.publish")

    def test_after_skips_the_first_hits(self):
        with ErrorInjector(FaultSpec("oplog.fsync", error=errno.EIO, after=2)):
            fire("oplog.fsync")
            fire("oplog.fsync")
            with pytest.raises(OSError):
                fire("oplog.fsync")

    def test_path_substring_confines_the_blast_radius(self):
        spec = enospc("checkpoint.save", path_substring="tenants/b/")
        with ErrorInjector(spec) as inj:
            fire("checkpoint.save", "/root/tenants/a/checkpoints/ckpt-1")
            with pytest.raises(OSError):
                fire("checkpoint.save", "/root/tenants/b/checkpoints/ckpt-1")
        assert [action for _, _, action in inj.trace] == ["ok", "error"]

    def test_flaky_schedule_is_seeded_and_deterministic(self):
        def run(seed):
            actions = []
            with ErrorInjector(flaky("ship.poll", 0.5), seed=seed):
                for _ in range(20):
                    try:
                        fire("ship.poll")
                        actions.append("ok")
                    except OSError:
                        actions.append("error")
            return actions

        assert run(3) == run(3)
        assert run(3) != run(4)
        assert "ok" in run(3) and "error" in run(3)

    def test_latency_uses_the_injected_sleep(self):
        slept = []
        with ErrorInjector(slow("ship.publish", 0.25), sleep=slept.append):
            fire("ship.publish")
            fire("ship.publish")
        assert slept == [0.25, 0.25]

    def test_crash_at_raises_injected_crash_on_the_nth_hit(self):
        with ErrorInjector(FaultSpec("oplog.fsync", crash_at=3)) as inj:
            fire("oplog.fsync")
            fire("oplog.fsync")
            with pytest.raises(InjectedCrash):
                fire("oplog.fsync")
        assert inj.trace[-1][2] == "crash"
        # InjectedCrash must never be catchable as an Exception.
        assert not isinstance(InjectedCrash("x"), Exception)

    def test_injections_land_on_the_obs_counter(self):
        telemetry = Telemetry()
        with ErrorInjector(eio("oplog.append"), obs=telemetry):
            with pytest.raises(OSError):
                fire("oplog.append")
        snap = telemetry.snapshot()["metrics"]["faultinject_errors_total"]
        assert snap == {"boundary=oplog.append": 1}

    def test_injectors_nest_innermost_wins(self):
        with ErrorInjector(enospc("oplog.append")):
            with ErrorInjector(eio("ship.publish")) as inner:
                fire("oplog.append")  # outer injector is shadowed
                with pytest.raises(OSError):
                    fire("ship.publish")
            assert inner.hits == {"oplog.append": 1, "ship.publish": 1}
            with pytest.raises(OSError):
                fire("oplog.append")

    def test_boundary_registry_names_every_seam(self):
        assert {
            "oplog.append",
            "oplog.fsync",
            "oplog.compact",
            "checkpoint.save",
            "checkpoint.load",
            "ship.publish",
            "ship.poll",
            "replica.bootstrap",
        } == set(BOUNDARIES)


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------
def make_policy(**kwargs):
    kwargs.setdefault("seed", 0)
    kwargs.setdefault("sleep", lambda s: None)
    return RetryPolicy(**kwargs)


class TestRetryPolicy:
    def test_classifier_table(self):
        assert default_classifier(OSError(errno.EIO, "io"))
        assert default_classifier(OSError(errno.EAGAIN, "again"))
        assert default_classifier(ConnectionError("reset"))
        assert default_classifier(TimeoutError("slow"))
        assert not default_classifier(OSError(errno.ENOSPC, "full"))
        assert not default_classifier(ValueError("bug"))

    def test_transient_then_ok_heals_in_place(self):
        calls = []

        def flaky_fn():
            calls.append(1)
            if len(calls) < 3:
                raise OSError(errno.EIO, "injected")
            return "done"

        assert make_policy(max_attempts=3).run(flaky_fn, boundary="ship.publish") == "done"
        assert len(calls) == 3

    def test_exhaustion_is_typed_and_chained(self):
        def always_fails():
            raise OSError(errno.EIO, "injected")

        with pytest.raises(DurabilityError) as caught:
            make_policy(max_attempts=3).run(always_fails, boundary="oplog.append")
        err = caught.value
        assert err.boundary == "oplog.append"
        assert err.attempts == 3
        assert isinstance(err.__cause__, OSError)
        assert err.__cause__.errno == errno.EIO

    def test_non_retryable_reraises_unchanged(self):
        calls = []

        def full_disk():
            calls.append(1)
            raise OSError(errno.ENOSPC, "full")

        with pytest.raises(OSError) as caught:
            make_policy().run(full_disk, boundary="oplog.append")
        assert caught.value.errno == errno.ENOSPC
        assert len(calls) == 1  # no pointless retries against a full disk

    def test_injected_crash_sails_through(self):
        def dies():
            raise InjectedCrash("simulated death")

        with pytest.raises(InjectedCrash):
            make_policy().run(dies, boundary="oplog.fsync")

    def test_backoff_is_seeded_jitter_within_the_envelope(self):
        import random

        policy = RetryPolicy(base_delay_s=0.01, max_delay_s=0.25)
        draws = [policy.backoff_s(n, random.Random(7)) for n in range(1, 8)]
        again = [policy.backoff_s(n, random.Random(7)) for n in range(1, 8)]
        assert draws == again
        for attempt, delay in enumerate(draws, start=1):
            assert 0.0 <= delay <= min(0.25, 0.01 * 2 ** (attempt - 1))

    def test_deadline_stops_before_the_sleep_that_would_cross_it(self):
        now = [0.0]

        def clock():
            return now[0]

        def sleep(s):
            now[0] += s

        def always_fails():
            raise OSError(errno.EIO, "injected")

        policy = RetryPolicy(
            max_attempts=100,
            base_delay_s=1.0,
            max_delay_s=1.0,
            deadline_s=2.5,
            seed=1,
            sleep=sleep,
            clock=clock,
        )
        with pytest.raises(DurabilityError):
            policy.run(always_fails, boundary="ship.poll")
        assert now[0] <= 2.5

    def test_outcome_counters_on_the_obs_substrate(self):
        telemetry = Telemetry()
        calls = []

        def flaky_fn():
            calls.append(1)
            if len(calls) < 2:
                raise OSError(errno.EIO, "injected")

        make_policy().run(flaky_fn, boundary="ship.publish", obs=telemetry)
        snap = telemetry.snapshot()["metrics"]["retry_attempts_total"]
        assert snap["boundary=ship.publish,outcome=retried"] == 1
        assert snap["boundary=ship.publish,outcome=ok"] == 1

    def test_no_retry_still_types_exhaustion(self):
        def always_fails():
            raise OSError(errno.EIO, "injected")

        with pytest.raises(DurabilityError) as caught:
            NO_RETRY.run(always_fails, boundary="checkpoint.save")
        assert caught.value.attempts == 1

    def test_invalid_policies_fail_fast(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1)


# ---------------------------------------------------------------------------
# CircuitBreaker
# ---------------------------------------------------------------------------
class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def test_walks_closed_open_half_open_closed(self):
        clock = FakeClock()
        breaker = CircuitBreaker("t", base_backoff_s=1.0, clock=clock)
        assert breaker.state == CLOSED and breaker.allow()

        breaker.record_failure(OSError(errno.ENOSPC, "full"))
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.retry_after_s() == pytest.approx(1.0)

        clock.now = 1.0  # backoff elapsed: one trial write is admitted
        assert breaker.allow()
        assert breaker.state == HALF_OPEN
        breaker.record_success()
        assert breaker.state == CLOSED and breaker.retry_after_s() is None

    def test_backoff_doubles_per_consecutive_failure_capped(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            "t", base_backoff_s=1.0, max_backoff_s=4.0, clock=clock
        )
        for expected in (1.0, 2.0, 4.0, 4.0):
            breaker.record_failure("still down")
            assert breaker.retry_after_s() == pytest.approx(expected)

    def test_maybe_probe_runs_at_most_once_per_window(self):
        clock = FakeClock()
        probes = []

        def probe():
            probes.append(clock.now)
            raise OSError(errno.ENOSPC, "still full")

        breaker = CircuitBreaker("t", probe=probe, base_backoff_s=1.0, clock=clock)
        breaker.record_failure("full")
        for _ in range(5):
            breaker.maybe_probe()  # backoff not elapsed: no probe runs
        assert probes == []
        clock.now = 1.0
        for _ in range(5):
            breaker.maybe_probe()
        assert probes == [1.0]  # one probe; its failure re-armed the backoff

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker("t", probe=lambda: None, base_backoff_s=1.0, clock=clock)
        breaker.record_failure("blip")
        clock.now = 1.0
        assert breaker.maybe_probe()
        assert breaker.state == CLOSED

    def test_health_check_severity_and_recovery(self):
        clock = FakeClock()
        healthy = []
        breaker = CircuitBreaker(
            "t", probe=lambda: healthy.append(1), base_backoff_s=1.0, clock=clock
        )
        check = breaker.health_check("degraded")
        assert check().status == "ok"

        breaker.record_failure(OSError(errno.ENOSPC, "full"))
        result = check()
        assert result.status == "degraded"
        assert "full" in result.detail
        assert result.data["retry_after_s"] == pytest.approx(1.0)

        clock.now = 1.0  # the next scrape doubles as the recovery probe
        assert check().status == "ok"
        assert healthy == [1]

        failing_check = CircuitBreaker("s", clock=clock).health_check("failing")
        assert failing_check().status == "ok"

    def test_transitions_are_counted(self):
        telemetry = Telemetry()
        clock = FakeClock()
        breaker = CircuitBreaker("oplog", clock=clock, obs=telemetry)
        breaker.record_failure("x")
        breaker.record_success()
        snap = telemetry.snapshot()["metrics"]["breaker_transitions_total"]
        assert snap == {"name=oplog,state=closed": 1, "name=oplog,state=open": 1}


# ---------------------------------------------------------------------------
# Typed errors
# ---------------------------------------------------------------------------
class TestTypedErrors:
    def test_degraded_error_carries_the_quota_shape(self):
        err = DegradedError("acme", "checkpoint.save", "disk full", retry_after_s=2.0)
        assert (err.tenant, err.reason, err.retry_after_s) == (
            "acme",
            "checkpoint.save",
            2.0,
        )
        shared = DegradedError(None, "oplog.append", "shared log down")
        assert shared.tenant is None and shared.retry_after_s is None

    def test_durability_error_names_the_boundary(self):
        err = DurabilityError("ship.publish", 3, "gave up")
        assert (err.boundary, err.attempts) == ("ship.publish", 3)


# ---------------------------------------------------------------------------
# Transport hardening (satellites)
# ---------------------------------------------------------------------------
class TestInProcessTransportRace:
    def test_poll_drains_by_popping_not_snapshot_then_clear(self):
        """Artifacts published while a poll drains must survive into the
        next poll — the old ``list(queue); queue.clear()`` dropped them."""
        transport = InProcessTransport()
        stop = threading.Event()
        published = []

        def publisher():
            i = 0
            while not stop.is_set():
                transport.publish(i)
                published.append(i)
                i += 1

        thread = threading.Thread(target=publisher)
        thread.start()
        drained = []
        try:
            while len(published) < 2000:
                drained.extend(transport.poll())
        finally:
            stop.set()
            thread.join()
        drained.extend(transport.poll())
        assert drained == published  # nothing dropped, order preserved

    def test_poll_empty_is_empty(self):
        assert InProcessTransport().poll() == []


class TestQuarantineCounter:
    def test_quarantine_lands_on_the_obs_counter(self, tmp_path):
        telemetry = Telemetry()
        spool = tmp_path / "mail"
        transport = MailboxTransport(spool)
        transport.obs = telemetry
        transport.publish(segment())
        (path,) = transport.pending()
        path.write_text("{not json", encoding="utf-8")
        assert transport.poll() == []
        assert transport.quarantined == 1
        snap = telemetry.snapshot()["metrics"]
        assert snap["transport_quarantined_total"] == 1
