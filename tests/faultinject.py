"""Deterministic fault injection for the durability paths.

The crash-consistency claims in :mod:`repro.stream` / :mod:`repro.replica`
(torn-tail healing, temp+rename-atomic publication, directory fsync)
all reduce to "a process may die between any two filesystem operations
and nothing partially-written may ever become visible". This module
makes that sweepable instead of anecdotal:

* :class:`FaultInjector` intercepts the *durability boundaries* —
  ``os.replace`` / ``os.rename`` (publication) and ``os.fsync``
  (persistence) — counts them, and raises :class:`InjectedCrash`
  *before* the N-th one executes. A dry run (``crash_at=None``)
  enumerates a scenario's crash points; a sweep then re-runs it
  crashing at every point in turn. The op trace is a pure function of
  the code under test, so sweeps are deterministic by construction —
  no timing, no real signals.
* :func:`tear_file` deterministically truncates a file (seeded),
  simulating the torn in-progress *write* half: a ``write(2)`` that
  died mid-buffer, media damage, or a non-atomic copy.
* :func:`sample_crash_points` draws a seeded subset when a sweep is
  too large to run exhaustively.

:class:`InjectedCrash` derives from ``BaseException`` on purpose: the
code under test must behave as if the process died, so no
``except Exception`` / ``except OSError`` recovery path may swallow
the crash and keep going.
"""

from __future__ import annotations

import os
import random


class InjectedCrash(BaseException):
    """The simulated process death raised at a crash point."""


class FaultInjector:
    """Context manager that crashes at the N-th intercepted fs op.

    Parameters
    ----------
    crash_at:
        1-based index of the intercepted operation that does NOT
        execute (the "process died just before it" semantics; crashing
        before op N equals crashing after op N-1, so sweeping
        ``1..total`` plus the no-crash run covers every boundary).
        ``None`` intercepts and records without crashing — the dry run
        that enumerates a scenario's crash points.

    obs:
        Optional :class:`repro.obs.Telemetry` recorder. When given,
        every intercepted op increments a
        ``faultinject_ops_total{kind=...}`` counter and an injected
        crash increments ``faultinject_crashes_total{kind=...}`` — so a
        fault-harness run's telemetry snapshot shows which durability
        boundaries the sweep actually exercised.

    Attributes
    ----------
    trace:
        ``(kind, path)`` of every intercepted op, in order — including,
        last, the op a crash suppressed.
    """

    _TARGETS = ("replace", "rename", "fsync")

    def __init__(self, crash_at: int | None = None, obs=None) -> None:
        self.crash_at = crash_at
        self.obs = obs
        self.trace: list[tuple[str, str]] = []
        self._originals: dict = {}

    def __enter__(self) -> "FaultInjector":
        for kind in self._TARGETS:
            self._originals[kind] = getattr(os, kind)
            setattr(os, kind, self._wrap(kind, self._originals[kind]))
        return self

    def __exit__(self, *exc) -> None:
        for kind, original in self._originals.items():
            setattr(os, kind, original)
        self._originals.clear()

    def _wrap(self, kind: str, original):
        def intercepted(*args, **kwargs):
            self.trace.append((kind, str(args[0]) if args else ""))
            if self.obs is not None and self.obs.enabled:
                self.obs.counter("faultinject_ops_total", labels=("kind",)).labels(
                    kind=kind
                ).inc()
            if self.crash_at is not None and len(self.trace) == self.crash_at:
                if self.obs is not None and self.obs.enabled:
                    self.obs.counter(
                        "faultinject_crashes_total", labels=("kind",)
                    ).labels(kind=kind).inc()
                raise InjectedCrash(
                    f"injected crash before {kind} #{len(self.trace)} "
                    f"({self.trace[-1][1]})"
                )
            return original(*args, **kwargs)

        return intercepted

    def __len__(self) -> int:
        return len(self.trace)


def tear_file(path, seed: int, min_keep: int = 1) -> int:
    """Truncate ``path`` to a seeded, deterministic prefix; returns kept bytes.

    Simulates the write-side fault :class:`FaultInjector` cannot reach
    (buffered writes never cross an interceptable os boundary): the
    file exists but only a prefix of its bytes made it to the medium.
    """
    data = path.read_bytes()
    if len(data) <= min_keep:
        raise ValueError(f"{path} too small to tear ({len(data)} bytes)")
    keep = random.Random(seed).randrange(min_keep, len(data))
    path.write_bytes(data[:keep])
    return keep


def sample_crash_points(total: int, k: int, seed: int) -> list[int]:
    """A seeded, sorted subset of ``1..total`` for non-exhaustive sweeps."""
    if total < 1:
        return []
    k = min(k, total)
    return sorted(random.Random(seed).sample(range(1, total + 1), k))
