"""Deprecated shim — the fault-injection harness moved into the package.

The deterministic crash-sweep tooling that used to live here is now
first-class product surface at :mod:`repro.faults.inject` (alongside
the error injector, retry policies and circuit breakers it grew into).
This module remains only so older test imports keep working; new code
should import from ``repro.faults`` directly.
"""

from __future__ import annotations

from repro.faults.inject import (  # noqa: F401
    FaultInjector,
    InjectedCrash,
    sample_crash_points,
    tear_file,
)

__all__ = ["FaultInjector", "InjectedCrash", "sample_crash_points", "tear_file"]
