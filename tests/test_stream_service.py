"""End-to-end tests for `repro.stream.ClusteringService`, including the
crash-recovery invariant: checkpoint + oplog replay must reproduce
exactly the memberships of an uninterrupted run."""

from __future__ import annotations

import pytest

from repro.clustering.objectives import DBIndexObjective
from repro.core import DynamicC
from repro.data.generators import generate_access
from repro.data.workload import OperationMix, build_workload
from repro.stream import ClusteringService, StreamConfig, add, remove, update


@pytest.fixture(scope="module")
def access_dataset():
    return generate_access(n_profiles=8, n_records=400, seed=3)


@pytest.fixture(scope="module")
def access_events(access_dataset):
    workload = build_workload(
        access_dataset,
        initial_count=120,
        n_snapshots=8,
        mixes=OperationMix(add=0.15, remove=0.04, update=0.04),
        seed=2,
    )
    return workload.event_stream()


def make_factory(dataset):
    def factory():
        return DynamicC(dataset.graph(), DBIndexObjective(), seed=0)

    return factory


def durable_config(tmp_path, **overrides) -> StreamConfig:
    settings = dict(
        n_shards=2,
        batch_max_ops=40,
        train_rounds=2,
        oplog_path=tmp_path / "oplog.jsonl",
        checkpoint_dir=tmp_path / "checkpoints",
    )
    settings.update(overrides)
    return StreamConfig(**settings)


class TestServiceBasics:
    def test_ingest_and_query(self, access_dataset, access_events, tmp_path):
        with ClusteringService(
            make_factory(access_dataset), durable_config(tmp_path)
        ) as service:
            service.ingest(access_events)
            service.flush()

            stats = service.stats()
            # ≥ 5 ingest rounds ran on both shards.
            assert stats["batches_applied"] >= 5
            assert stats["applied_seq"] == len(access_events)
            assert stats["pending_ops"] == 0
            for shard_stats in stats["shards"]:
                assert shard_stats["trained"]
                assert shard_stats["rounds_predicted"] >= 1

            # Every live object is queryable, routed to the right shard,
            # and its cluster's member list contains it.
            clusters = service.clusters()
            covered = set()
            for obj_id in service.membership.live_ids():
                gcid = service.cluster_of(obj_id)
                assert gcid is not None
                assert obj_id in service.members(gcid)
                covered.add(gcid)
            assert covered == set(clusters)
            # The global partition covers exactly the live ids.
            assert set().union(*clusters.values()) == service.membership.live_ids()

    def test_tuple_ingest_and_ephemeral_mode(self):
        # No oplog/checkpoints: the service runs fully in memory.
        dataset = generate_access(n_profiles=4, n_records=80, seed=5)
        service = ClusteringService(
            make_factory(dataset),
            StreamConfig(n_shards=2, batch_max_ops=10, train_rounds=1),
        )
        service.ingest(
            ("add", record.id, record.payload) for record in dataset.records[:40]
        )
        service.flush()
        assert service.num_objects() == 40
        assert service.cluster_of(dataset.records[0].id) is not None
        assert service.oplog is None

    def test_reads_lag_until_flush(self, access_dataset):
        service = ClusteringService(
            make_factory(access_dataset),
            StreamConfig(n_shards=2, batch_max_ops=1000, train_rounds=1),
        )
        service.ingest([add(1, access_dataset.records[0].payload)])
        assert service.cluster_of(1) is None  # still pending
        service.flush()
        assert service.cluster_of(1) is not None

    def test_conflicting_client_stream_is_reconciled(self, access_dataset):
        records = access_dataset.records
        service = ClusteringService(
            make_factory(access_dataset),
            StreamConfig(n_shards=2, batch_max_ops=4, train_rounds=1),
        )
        service.ingest([add(record.id, record.payload) for record in records[:8]])
        # Duplicate add → update; update of unknown id → add; remove of
        # unknown id → ignored. One per batch so folding can't mask it.
        service.ingest([add(records[0].id, records[1].payload)])
        service.ingest([update(999, records[2].payload)])
        service.ingest([remove(998)])
        service.flush()
        assert service.num_objects() == 9  # 8 adds + degraded-update add
        assert service.cluster_of(999) is not None
        stats = service.stats()
        assert sum(s["ops_ignored"] for s in stats["shards"]) == 1

    def test_remove_everything(self, access_dataset):
        records = access_dataset.records[:12]
        service = ClusteringService(
            make_factory(access_dataset),
            StreamConfig(n_shards=2, batch_max_ops=6, train_rounds=1),
        )
        service.ingest([add(record.id, record.payload) for record in records])
        service.ingest([remove(record.id) for record in records])
        service.flush()
        assert service.num_objects() == 0
        assert service.clusters() == {}
        assert service.cluster_of(records[0].id) is None

    def test_single_shard_config(self, access_dataset):
        service = ClusteringService(
            make_factory(access_dataset),
            StreamConfig(n_shards=1, batch_max_ops=20, train_rounds=1),
        )
        service.ingest(
            [add(record.id, record.payload) for record in access_dataset.records[:60]]
        )
        service.flush()
        assert service.num_objects() == 60
        assert all(gcid.startswith("s0:") for gcid in service.clusters())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            StreamConfig(n_shards=0)
        with pytest.raises(ValueError):
            StreamConfig(train_rounds=0)

    def test_stats_report_oplog_size_and_per_shard_seq(
        self, access_dataset, access_events, tmp_path
    ):
        """The replication-facing gauges: oplog bytes on disk and the
        last applied seq per shard (what a replica's lag() reads)."""
        factory = make_factory(access_dataset)
        config = durable_config(tmp_path)
        service = ClusteringService(factory, config)
        service.ingest(access_events[:100])
        service.flush()
        stats = service.stats()
        assert stats["oplog_bytes"] > 0
        assert stats["oplog_bytes"] == service.oplog.size_bytes()
        per_shard = [s["last_applied_seq"] for s in stats["shards"]]
        assert all(seq > 0 for seq in per_shard)
        # The last-filled shard saw the batch's final op; nobody saw more.
        assert max(per_shard) == stats["applied_seq"]
        service.close()

        # The gauges survive checkpoint + recovery.
        service = ClusteringService(factory, durable_config(tmp_path / "b"))
        service.ingest(access_events[:100])
        service.flush()
        service.checkpoint()
        service.close()
        recovered = ClusteringService.recover(factory, durable_config(tmp_path / "b"))
        assert [
            s["last_applied_seq"] for s in recovered.stats()["shards"]
        ] == per_shard
        recovered.close()

        # Ephemeral services report zero bytes rather than failing.
        ephemeral = ClusteringService(
            factory, StreamConfig(n_shards=2, batch_max_ops=40, train_rounds=2)
        )
        ephemeral.ingest(access_events[:50])
        assert ephemeral.stats()["oplog_bytes"] == 0


class TestCrashRecovery:
    def test_checkpoint_plus_replay_equals_uninterrupted(
        self, access_dataset, access_events, tmp_path
    ):
        """The acceptance-criteria invariant, over ≥5 rounds and 2 shards.

        Run A ingests the whole stream uninterrupted. Run B ingests a
        prefix, checkpoints mid-stream (which also compacts the oplog),
        ingests further, then "crashes" (the process state is dropped;
        only oplog + checkpoint survive). Recovery must land B on
        exactly A's memberships after the remaining events.
        """
        factory = make_factory(access_dataset)
        events = access_events
        assert len(events) > 400

        config_a = durable_config(tmp_path / "a")
        uninterrupted = ClusteringService(factory, config_a)
        uninterrupted.ingest(events)
        uninterrupted.flush()
        assert uninterrupted.stats()["batches_applied"] >= 5

        config_b = durable_config(tmp_path / "b")
        crashing = ClusteringService(factory, config_b)
        crashing.ingest(events[:150])
        crashing.checkpoint()
        # 215 is not a batch boundary: the tail of these events is
        # logged but unapplied at crash time and must survive via replay.
        crashing.ingest(events[150:215])
        crashing.close()
        del crashing

        recovered = ClusteringService.recover(factory, config_b)
        assert recovered.metrics.recoveries == 1
        recovered.ingest(events[215:])
        recovered.flush()

        assert recovered.partition() == uninterrupted.partition()
        assert (
            recovered.membership.live_ids() == uninterrupted.membership.live_ids()
        )
        assert recovered.applied_seq == uninterrupted.applied_seq
        # Per-object global ids agree too (same shard, same cluster sets).
        for obj_id in uninterrupted.membership.live_ids():
            assert recovered.members(
                recovered.cluster_of(obj_id)
            ) == uninterrupted.members(uninterrupted.cluster_of(obj_id))

    def test_recovery_from_log_only(self, access_dataset, access_events, tmp_path):
        """No checkpoint yet: recovery replays the whole log from scratch."""
        factory = make_factory(access_dataset)
        events = access_events[:250]

        config = durable_config(tmp_path)
        first = ClusteringService(factory, config)
        first.ingest(events)
        first.close()
        applied = first.applied_seq
        reference = first.partition()
        del first

        recovered = ClusteringService.recover(factory, config)
        assert recovered.applied_seq == applied
        assert recovered.partition() == reference

    def test_recovered_service_keeps_checkpointing(
        self, access_dataset, access_events, tmp_path
    ):
        """Recovery composes: checkpoint → crash → recover → checkpoint →
        crash → recover still matches the uninterrupted run."""
        factory = make_factory(access_dataset)
        events = access_events

        uninterrupted = ClusteringService(factory, durable_config(tmp_path / "a"))
        uninterrupted.ingest(events)
        uninterrupted.flush()

        config = durable_config(tmp_path / "b")
        service = ClusteringService(factory, config)
        service.ingest(events[:120])
        service.checkpoint()
        service.close()

        service = ClusteringService.recover(factory, config)
        service.ingest(events[120:260])
        service.checkpoint()
        service.close()

        service = ClusteringService.recover(factory, config)
        service.ingest(events[260:])
        service.flush()
        assert service.partition() == uninterrupted.partition()

    def test_mid_stream_flush_boundaries_survive_recovery(
        self, access_dataset, access_events, tmp_path
    ):
        """An explicit flush() cuts a round off the count grid; the WAL
        marker must make replay cut at the same place."""
        factory = make_factory(access_dataset)
        events = access_events[:300]

        def run(config, crash_after=None):
            service = ClusteringService(factory, config)
            service.ingest(events[:90])  # not a multiple of batch_max_ops
            service.flush()
            if crash_after == "flush":
                service.close()
                service = ClusteringService.recover(factory, config)
            service.ingest(events[90:])
            service.flush()
            return service

        reference = run(durable_config(tmp_path / "a"))
        recovered = run(durable_config(tmp_path / "b"), crash_after="flush")
        assert recovered.partition() == reference.partition()

    def test_flush_markers_cannot_be_ingested(self, access_dataset):
        from repro.stream.events import Operation

        service = ClusteringService(
            make_factory(access_dataset), StreamConfig(n_shards=1)
        )
        with pytest.raises(ValueError):
            service.ingest([Operation("flush", 0)])

    def test_older_checkpoint_stays_recoverable_after_compaction(
        self, access_dataset, access_events, tmp_path
    ):
        """Compaction must not strand retained checkpoints: corrupting
        the newest one falls back to the previous + a longer replay,
        even with compact_on_checkpoint enabled (the default)."""
        factory = make_factory(access_dataset)
        config = durable_config(tmp_path)
        service = ClusteringService(factory, config)
        service.ingest(access_events[:150])
        service.checkpoint()
        service.ingest(access_events[150:280])
        service.checkpoint()
        service.ingest(access_events[280:])
        service.flush()
        reference = service.partition()
        service.close()

        newest = max(
            (tmp_path / "checkpoints").glob("checkpoint-*.json"),
            key=lambda p: int(p.stem.split("-")[1]),
        )
        newest.write_text('{"corrupt')
        recovered = ClusteringService.recover(factory, config)
        recovered.flush()
        assert recovered.partition() == reference

    def test_recovery_refuses_log_gap(self, access_dataset, access_events, tmp_path):
        """A log compacted past the only usable checkpoint must fail
        loudly instead of silently dropping operations."""
        factory = make_factory(access_dataset)
        config = durable_config(tmp_path)
        service = ClusteringService(factory, config)
        service.ingest(access_events[:200])
        service.checkpoint()
        service.ingest(access_events[200:260])
        # Simulate an over-eager compaction losing ops the checkpoint
        # does not cover.
        for path in (tmp_path / "checkpoints").glob("checkpoint-*.json"):
            path.unlink()
        service.oplog.compact(upto_seq=120)
        service.close()
        with pytest.raises(RuntimeError, match="oplog gap"):
            ClusteringService.recover(factory, config)

    def test_checkpoint_only_recovery_keeps_sequence_monotonic(
        self, access_dataset, access_events, tmp_path
    ):
        """Recovering from a checkpoint whose oplog was lost must not
        re-issue sequence numbers: later checkpoints have to outrank the
        stale one or the *next* recovery silently rolls everything back."""
        factory = make_factory(access_dataset)
        config = durable_config(tmp_path)
        service = ClusteringService(factory, config)
        service.ingest(access_events[:200])
        service.checkpoint()
        old_applied = service.applied_seq
        service.close()
        (tmp_path / "oplog.jsonl").unlink()  # the log is gone

        recovered = ClusteringService.recover(factory, config)
        assert recovered.applied_seq == old_applied
        recovered.ingest(access_events[200:280])
        recovered.flush()
        assert recovered.applied_seq > old_applied  # no seq reuse
        recovered.checkpoint()
        assert max(recovered.checkpoints.list_seqs()) == recovered.applied_seq
        reference = recovered.partition()
        recovered.close()

        # The fresh checkpoint (not the stale one) drives the next boot.
        again = ClusteringService.recover(factory, config)
        assert again.applied_seq == recovered.applied_seq
        assert again.partition() == reference

    def test_age_cut_boundaries_survive_recovery(
        self, access_dataset, access_events, tmp_path
    ):
        """Age-triggered round cuts land off the count grid; the WAL
        marker they leave must make replay cut at the same places."""
        factory = make_factory(access_dataset)
        events = access_events[:250]

        config = durable_config(tmp_path / "a", batch_max_age=0.0)
        reference = ClusteringService(factory, config)
        # max_age=0: every ingest call age-cuts whatever is pending, so
        # round boundaries follow the (irregular) ingest call sizes.
        for start in range(0, len(events), 17):
            reference.ingest(events[start : start + 17])
        reference.flush()
        # The cuts really were age-driven, not count-driven.
        assert reference.stats()["batches_applied"] > len(events) // 40

        config_b = durable_config(tmp_path / "b", batch_max_age=0.0)
        crashing = ClusteringService(factory, config_b)
        for start in range(0, 170, 17):
            crashing.ingest(events[start : start + 17])
        crashing.close()
        recovered = ClusteringService.recover(factory, config_b)
        for start in range(170, len(events), 17):
            recovered.ingest(events[start : start + 17])
        recovered.flush()
        assert recovered.partition() == reference.partition()

    def test_recovery_rejects_changed_batching_config(
        self, access_dataset, access_events, tmp_path
    ):
        factory = make_factory(access_dataset)
        config = durable_config(tmp_path)
        service = ClusteringService(factory, config)
        service.ingest(access_events[:150])
        service.checkpoint()
        service.close()
        with pytest.raises(ValueError, match="batch_max_ops"):
            ClusteringService.recover(
                factory, durable_config(tmp_path, batch_max_ops=64)
            )
        with pytest.raises(ValueError, match="train_rounds"):
            ClusteringService.recover(
                factory, durable_config(tmp_path, train_rounds=5)
            )

    def test_replay_counts_events_ingested(
        self, access_dataset, access_events, tmp_path
    ):
        factory = make_factory(access_dataset)
        config = durable_config(tmp_path)
        service = ClusteringService(factory, config)
        service.ingest(access_events[:200])
        service.close()
        recovered = ClusteringService.recover(factory, config)
        assert recovered.stats()["events_ingested"] == 200

    def test_skipped_round_still_counts_ignored_ops(self, access_dataset):
        service = ClusteringService(
            make_factory(access_dataset),
            StreamConfig(n_shards=1, batch_max_ops=4, train_rounds=1),
        )
        # Removes of never-seen ids fold to an empty round: no engine
        # work, but the drops must still show up in telemetry.
        service.ingest([remove(i) for i in range(4)])
        stats = service.stats()
        assert stats["shards"][0]["ops_ignored"] == 4
        assert stats["shards"][0]["rounds_observed"] == 0

    def test_checkpoint_requires_directory(self, access_dataset):
        service = ClusteringService(
            make_factory(access_dataset), StreamConfig(n_shards=1)
        )
        with pytest.raises(RuntimeError):
            service.checkpoint()

    def test_shard_count_mismatch_rejected(
        self, access_dataset, access_events, tmp_path
    ):
        factory = make_factory(access_dataset)
        config = durable_config(tmp_path)
        service = ClusteringService(factory, config)
        service.ingest(access_events[:150])
        service.checkpoint()
        service.close()
        with pytest.raises(ValueError):
            ClusteringService.recover(
                factory, durable_config(tmp_path, n_shards=4)
            )
