"""Tests for evolution ops (§4.1) and cross-round derivation (§4.3),
anchored on the paper's own Example 4.2."""

import pytest

from repro.core.transformation import (
    derive_transformation,
    replay_transformation,
    two_phase_transformation,
)
from repro.evolution import EvolutionLog, MergeOp, SplitOp

from paper_example import PAPER_IDS

R = PAPER_IDS  # shorthand


class TestOps:
    def test_merge_result(self):
        op = MergeOp(frozenset({1, 2}), frozenset({3}))
        assert op.result == frozenset({1, 2, 3})
        assert op.touched_objects() == frozenset({1, 2, 3})

    def test_merge_requires_disjoint(self):
        with pytest.raises(ValueError):
            MergeOp(frozenset({1}), frozenset({1, 2}))

    def test_merge_requires_nonempty(self):
        with pytest.raises(ValueError):
            MergeOp(frozenset(), frozenset({1}))

    def test_split_remainder(self):
        op = SplitOp(frozenset({1, 2, 3}), frozenset({1}))
        assert op.remainder == frozenset({2, 3})

    def test_split_requires_proper_subset(self):
        with pytest.raises(ValueError):
            SplitOp(frozenset({1, 2}), frozenset({1, 2}))

    def test_involves(self):
        op = SplitOp(frozenset({1, 2, 3}), frozenset({1}))
        assert op.involves({3})
        assert not op.involves({9})


class TestEvolutionLog:
    def test_record_and_filter(self):
        log = EvolutionLog()
        log.record_merge({1}, {2})
        log.record_split({1, 2, 3}, {3})
        assert len(log) == 2
        assert len(list(log.merges())) == 1
        assert len(list(log.splits())) == 1
        assert len(log.touching({3})) == 1

    def test_bool(self):
        assert not EvolutionLog()
        log = EvolutionLog()
        log.record_merge({1}, {2})
        assert log


class TestDeriveTransformation:
    def test_identity_needs_no_steps(self):
        partition = [{1, 2}, {3}]
        assert len(derive_transformation(partition, partition)) == 0

    def test_single_merge(self):
        log = derive_transformation([{1}, {2}], [{1, 2}])
        assert len(log) == 1
        assert isinstance(log.steps[0], MergeOp)

    def test_single_split(self):
        log = derive_transformation([{1, 2}], [{1}, {2}])
        assert len(log) == 1
        assert isinstance(log.steps[0], SplitOp)

    def test_replay_reaches_target(self):
        old = [{1, 2, 3}, {4, 5}, {6}, {7}]
        new = [{2, 3}, {1, 7}, {4, 5, 6}]
        log = derive_transformation(old, new)
        result = replay_transformation(old, log)
        assert result == frozenset(frozenset(g) for g in new)

    def test_mismatched_objects_rejected(self):
        with pytest.raises(ValueError):
            derive_transformation([{1}], [{1}, {2}])

    def test_example_4_2_shape(self, paper_old_clustering):
        """Example 4.2: old {C1={r1,r2,r3}, C2={r4,r5}} + singletons r6, r7
        evolve to {C'1={r2,r3}, C'2={r4,r5,r6}, C'3={r1,r7}} via one split
        of C1 and two merges."""
        old = [
            {R["r1"], R["r2"], R["r3"]},
            {R["r4"], R["r5"]},
            {R["r6"]},
            {R["r7"]},
        ]
        new = [
            {R["r2"], R["r3"]},
            {R["r4"], R["r5"], R["r6"]},
            {R["r1"], R["r7"]},
        ]
        log = derive_transformation(old, new)
        splits = list(log.splits())
        merges = list(log.merges())
        assert len(splits) == 1
        assert splits[0].cluster == frozenset({R["r1"], R["r2"], R["r3"]})
        assert splits[0].part in (
            frozenset({R["r1"]}),
            frozenset({R["r2"], R["r3"]}),
        )
        assert len(merges) == 2
        assert replay_transformation(old, log) == frozenset(
            frozenset(g) for g in new
        )

    def test_deterministic(self):
        old = [{1, 2, 3}, {4, 5}, {6}, {7}]
        new = [{2, 3}, {1, 7}, {4, 5, 6}]
        a = derive_transformation(old, new).steps
        b = derive_transformation(old, new).steps
        assert a == b


class TestTwoPhaseTransformation:
    def test_example_4_2(self):
        """The literal Phase 1 / Phase 2 walkthrough of Example 4.2."""
        batch_log = EvolutionLog()
        # Steps 1–4 of Figure 2's from-scratch run.
        batch_log.record_merge({R["r2"]}, {R["r3"]})
        batch_log.record_merge({R["r4"]}, {R["r5"]})
        batch_log.record_merge({R["r1"]}, {R["r7"]})
        batch_log.record_merge({R["r4"], R["r5"]}, {R["r6"]})
        old = [
            {R["r1"], R["r2"], R["r3"]},
            {R["r4"], R["r5"]},
            {R["r6"]},
            {R["r7"]},
        ]
        new = [
            {R["r2"], R["r3"]},
            {R["r4"], R["r5"], R["r6"]},
            {R["r1"], R["r7"]},
        ]
        changed = {R["r6"], R["r7"]}
        log = two_phase_transformation(batch_log, old, new, changed)
        # Phase 1 keeps steps 3 and 4 (the ones touching r6/r7); Phase 2
        # adds the split of C1 into {r1} and {r2, r3} — "Change 3".
        kept_merges = list(log.merges())
        assert MergeOp(frozenset({R["r1"]}), frozenset({R["r7"]})) in kept_merges
        assert (
            MergeOp(frozenset({R["r4"], R["r5"]}), frozenset({R["r6"]}))
            in kept_merges
        )
        splits = list(log.splits())
        assert len(splits) == 1
        assert splits[0].cluster == frozenset({R["r1"], R["r2"], R["r3"]})

    def test_keeps_only_latest_change_per_object(self):
        batch_log = EvolutionLog()
        batch_log.record_merge({1}, {2})
        batch_log.record_split({1, 2}, {2})
        old = [{1}, {2}]
        new = [{1}, {2}]
        log = two_phase_transformation(batch_log, old, new, changed={2})
        # Only the split (the later step touching 2) is kept.
        assert len(list(log.splits())) == 1
        assert len(list(log.merges())) == 0
