"""End-to-end chaos drills: seeded fault schedules against whole topologies.

Where ``test_faultinject.py`` sweeps single durability seams, these
drills run *scenarios* — a primary shipping to a durable follower, a
multi-tenant service with per-tenant checkpoint paths — under injected
crashes and I/O errors, and pin the operational story:

* **failover** — kill the primary at a swept crash point mid-burst,
  promote the surviving follower: no acknowledged operation is lost,
  and nothing unlogged at the promoted node is visible;
* **spool faults** — transient poll errors heal under the follower's
  retry policy; exhaustion degrades health without killing the daemon;
  a real replication gap flips ``/readyz`` until a resync heals it;
* **degraded serving** — one tenant's full disk (persistent ENOSPC on
  its checkpoint path) sheds that tenant's writes with a typed,
  retryable rejection while neighbours ingest on; a shared-oplog
  failure 503s ingest for everyone but reads keep serving — and both
  recover through probes once the fault lifts.

Every schedule is seeded; there is no timing dependence beyond the
(tiny, configurable) degraded-mode probe windows.
"""

from __future__ import annotations

import time

import pytest

from repro.clustering.objectives import CorrelationObjective
from repro.core import DynamicC
from repro.errors import DegradedError
from repro.faults import (
    ErrorInjector,
    FaultInjector,
    InjectedCrash,
    RetryPolicy,
    eio,
    enospc,
    sample_crash_points,
)
from repro.replica import LogShipper, MailboxTransport, ReadReplica
from repro.replica.follower import FollowerDaemon
from repro.serve import Service
from repro.similarity import JaccardSimilarity, SimilarityGraph
from repro.stream import ClusteringService, StreamConfig, add
from repro.stream.events import ADD


def factory():
    return DynamicC(
        SimilarityGraph(JaccardSimilarity(), store_threshold=0.05),
        CorrelationObjective(),
        seed=0,
    )


CUT = dict(n_shards=2, batch_max_ops=8, train_rounds=1)


def op(i):
    return add(i, f"tok{i % 5} shared{i % 3}")


#: A quick retry policy for drills: real backoff structure, no real sleeps.
FAST_RETRY = RetryPolicy(
    max_attempts=3, base_delay_s=0.0, max_delay_s=0.0, seed=0, sleep=lambda s: None
)


# ---------------------------------------------------------------------------
# Drill 1: kill the primary mid-burst, promote the follower
# ---------------------------------------------------------------------------
class TestFailoverDrill:
    """Acknowledged-durability failover, as a deterministic crash sweep.

    The ack protocol under test: a batch is *acknowledged* only after
    the primary has appended it (fsync) and shipped it to the durable
    spool the follower tails. The primary process is then killed at
    every sampled filesystem-op crash point; the follower drains the
    spool and ``promote()``s. No acked op may be lost, and nothing may
    be visible at the promoted primary that is not in its durable log.
    """

    N_BATCHES = 6
    BATCH = 5

    def _primary_config(self, base) -> StreamConfig:
        return StreamConfig(
            **CUT,
            oplog_path=base / "primary" / "oplog.jsonl",
            checkpoint_dir=base / "primary" / "ckpt",
            fsync=True,
        )

    def _follower_config(self, base) -> StreamConfig:
        return StreamConfig(
            **CUT,
            oplog_path=base / "follower" / "oplog.jsonl",
            checkpoint_dir=base / "follower" / "ckpt",
        )

    def _burst(self, base, acked) -> None:
        """The primary process: ingest → ship → ack, batch by batch."""
        service = ClusteringService(factory, self._primary_config(base))
        try:
            shipper = LogShipper(service.oplog, snapshots=None, max_segment_ops=8)
            shipper.attach(MailboxTransport(base / "spool"), from_seq=0)
            for batch in range(self.N_BATCHES):
                service.ingest(
                    [op(batch * self.BATCH + i) for i in range(self.BATCH)]
                )
                shipper.ship(heartbeat=False)
                acked[0] = service.oplog.last_seq
            service.flush()
            shipper.ship(heartbeat=False)
            acked[0] = service.oplog.last_seq
        finally:
            service.close()

    def _promote_survivor(self, base):
        follower = ReadReplica.bootstrap(
            factory,
            self._follower_config(base),
            MailboxTransport(base / "spool"),
            name="heir",
        )
        follower.poll()
        # Read the durable log *before* promote(): promotion checkpoints,
        # and checkpointing compacts the replayed prefix away.
        logged = list(follower.service.oplog.iter_from(0))
        return follower.promote(), logged

    def test_no_acked_op_lost_no_unacked_op_visible(self, tmp_path):
        acked = [0]
        with FaultInjector() as injector:
            self._burst(tmp_path / "dry", acked)
        total = len(injector)
        full_ack = acked[0]
        assert total >= 20  # per-batch fsyncs plus 7 three-op publishes
        assert full_ack == self.N_BATCHES * self.BATCH + 1  # ops + flush marker

        for crash_at in sample_crash_points(total, k=8, seed=17):
            base = tmp_path / f"crash-{crash_at}"
            acked = [0]
            with pytest.raises(InjectedCrash):
                with FaultInjector(crash_at=crash_at):
                    self._burst(base, acked)

            promoted, logged = self._promote_survivor(base)
            try:
                seqs = [o.seq for o in logged]
                # The promoted log is a contiguous acked-covering prefix:
                # nothing acknowledged is missing, and nothing beyond the
                # shipped watermark leaked in.
                assert seqs == list(range(1, len(seqs) + 1))
                assert promoted.oplog.last_seq >= acked[0], (
                    f"crash@{crash_at}: acked through {acked[0]} but the "
                    f"promoted log ends at {promoted.oplog.last_seq}"
                )
                assert promoted.applied_seq <= promoted.oplog.last_seq
                # Visible state is exactly the durable log — an op the
                # dead primary logged but never shipped (unacked) cannot
                # appear, and every logged add is served.
                logged_adds = {o.obj_id for o in logged if o.kind == ADD}
                promoted.flush()
                assert promoted.membership.live_ids() == logged_adds
                # The promoted primary is a working primary.
                promoted.ingest([op(900 + crash_at)])
                promoted.flush()
                assert 900 + crash_at in promoted.membership.live_ids()
            finally:
                promoted.close()


# ---------------------------------------------------------------------------
# Drill 2: follower under spool faults — retry, degrade, gap + resync
# ---------------------------------------------------------------------------
class TestFollowerSpoolFaults:
    def _topology(self, tmp_path, daemon_kwargs=None):
        config = StreamConfig(
            **CUT,
            oplog_path=tmp_path / "primary" / "oplog.jsonl",
            checkpoint_dir=tmp_path / "primary" / "ckpt",
        )
        primary = ClusteringService(factory, config)
        shipper = LogShipper(
            primary.oplog,
            snapshots=primary.checkpoints.load_latest,
            max_segment_ops=8,
        )
        spool = tmp_path / "spool"
        uplink = MailboxTransport(spool)
        shipper.attach(uplink, from_seq=0)
        shipper.uplink = uplink  # the attached handle, for resync()
        daemon = FollowerDaemon(
            factory,
            StreamConfig(**CUT),
            spool,
            retry=FAST_RETRY,
            **(daemon_kwargs or {}),
        )
        return primary, shipper, daemon

    def test_transient_poll_errors_heal_inside_one_drain(self, tmp_path):
        primary, shipper, daemon = self._topology(tmp_path)
        try:
            primary.ingest([op(i) for i in range(8)])
            shipper.ship(heartbeat=False)
            with ErrorInjector(eio("ship.poll", fail_times=2)):
                applied = daemon.run_once()
            # Two injected failures fit inside the 3-attempt retry: the
            # drain succeeded, nothing was consumed by the failed tries.
            assert applied == 8
            assert daemon.poll_error is None and daemon.gap is None
            assert daemon.bootstrapped
            assert daemon.health.report()["ready"] is True
        finally:
            daemon.close()
            primary.close()

    def test_exhaustion_degrades_without_killing_the_daemon(self, tmp_path):
        primary, shipper, daemon = self._topology(tmp_path)
        try:
            primary.ingest([op(i) for i in range(8)])
            shipper.ship(heartbeat=False)
            daemon.run_once()  # bootstrap while healthy
            primary.ingest([op(100 + i) for i in range(8)])
            shipper.ship(heartbeat=False)

            with ErrorInjector(eio("ship.poll")) as injector:  # persistent
                assert daemon.run_once() == 0
                assert daemon.poll_error is not None
                report = daemon.health.report()
                # Stale but serving: degraded, not failing — a load
                # balancer keeps routing reads to consistent state.
                assert report["checks"]["spool"]["status"] == "degraded"
                assert report["ready"] is True
                assert daemon.replica.partition()  # reads still answer
                # Nothing was consumed while the spool was unreachable.
                assert len(daemon.transport.pending()) == 1

                injector.lift()
                assert daemon.run_once() == 8
            assert daemon.poll_error is None
            assert daemon.health.report()["checks"]["spool"]["status"] == "ok"
        finally:
            daemon.close()
            primary.close()

    def test_replication_gap_flips_readyz_until_resync(self, tmp_path):
        primary, shipper, daemon = self._topology(tmp_path)
        try:
            primary.ingest([op(i) for i in range(8)])
            shipper.ship(heartbeat=False)
            daemon.run_once()
            assert daemon.health.report()["ready"] is True

            # Lose a shipped segment from the spool (media damage, a
            # sync tool eating a file), then ship the next one.
            primary.ingest([op(100 + i) for i in range(8)])
            shipper.ship(heartbeat=False)
            (lost,) = daemon.transport.pending()
            lost.unlink()
            primary.ingest([op(200 + i) for i in range(8)])
            shipper.ship(heartbeat=False)

            assert daemon.run_once() == 0
            assert daemon.gap is not None
            report = daemon.health.report()
            assert report["checks"]["spool"]["status"] == "failing"
            assert report["ready"] is False  # stop routing reads here

            # Primary-side heal: snapshot, resync the transport, ship.
            primary.flush()
            primary.checkpoint()
            shipper.resync(shipper.uplink)
            shipper.ship(heartbeat=False)
            # A snapshot restore counts zero *ops*; success shows up as
            # the gap clearing and the cursor jumping to the snapshot.
            daemon.run_once()
            assert daemon.gap is None
            assert daemon.replica.received_seq >= 24
            assert daemon.health.report()["ready"] is True
            primary.flush()
            shipper.ship(heartbeat=False)
            daemon.run_once()
            assert daemon.replica.partition() == primary.partition()
        finally:
            daemon.close()
            primary.close()


# ---------------------------------------------------------------------------
# Drill 3: multi-tenant degraded serving under ENOSPC
# ---------------------------------------------------------------------------
def open_service(tmp_path, **kwargs):
    return Service.open(
        engine_factory=factory,
        **CUT,
        root_dir=tmp_path / "root",
        degraded_probe_s=0.05,
        degraded_probe_max_s=0.4,
        **kwargs,
    )


def await_recovery(check, deadline_s=5.0):
    """Poll until ``check()`` is true (probe windows are wall-clock)."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        if check():
            return True
        time.sleep(0.02)
    return False


class TestTenantIsolationUnderEnospc:
    def test_one_tenants_full_disk_does_not_take_down_neighbours(self, tmp_path):
        """Acceptance: persistent ENOSPC on one tenant's checkpoint path
        leaves other tenants ingesting; ``/readyz`` reports the affected
        check degraded and recovers once the fault is lifted."""
        with open_service(tmp_path) as svc:
            svc.tenant("alpha").ingest([op(i) for i in range(8)])
            svc.tenant("bravo").ingest([op(100 + i) for i in range(8)])

            sick_dir = "tenants/bravo/"
            with ErrorInjector(
                enospc("checkpoint.save", path_substring=sick_dir)
            ) as injector:
                with pytest.raises(DegradedError) as caught:
                    svc.tenant("bravo").checkpoint()
                assert caught.value.tenant == "bravo"
                assert caught.value.reason == "checkpoint.save"

                # Neighbours are untouched: ingest AND checkpoint flow.
                assert svc.tenant("alpha").ingest([op(20 + i) for i in range(4)]) == 4
                assert svc.tenant("alpha").checkpoint() is not None

                # The sick tenant's writes shed typed and retryable...
                with pytest.raises(DegradedError) as rejected:
                    svc.tenant("bravo").ingest([op(300)])
                assert rejected.value.tenant == "bravo"
                assert rejected.value.retry_after_s is not None
                # ...while its reads keep serving.
                assert svc.tenant("bravo").num_objects() == 8

                report = svc.health.report()
                assert report["checks"]["tenant:bravo:durability"]["status"] == "degraded"
                assert report["checks"]["tenant:alpha:durability"]["status"] == "ok"
                assert report["checks"]["durability"]["status"] == "ok"
                assert report["ready"] is True  # degraded ≠ down

                stats = svc.stats()
                assert stats["degraded_rejections_total"] >= 1
                assert stats["durability"]["tenants"]["bravo"]["state"] != "closed"

                injector.lift()
                # Recovery is probe-driven: /readyz scrapes double as
                # the re-test, no operator intervention needed.
                assert await_recovery(
                    lambda: svc.health.report()["checks"][
                        "tenant:bravo:durability"
                    ]["status"]
                    == "ok"
                )

            assert svc.tenant("bravo").ingest([op(301)]) == 1
            assert svc.tenant("bravo").checkpoint() is not None
            assert svc.health.report()["status"] == "ok"

    def test_shared_oplog_failure_sheds_all_writes_but_serves_reads(self, tmp_path):
        with open_service(tmp_path) as svc:
            svc.tenant("alpha").ingest([op(i) for i in range(8)])
            svc.tenant("alpha").flush()

            with ErrorInjector(enospc("oplog.append")) as injector:
                with pytest.raises(DegradedError) as caught:
                    svc.tenant("alpha").ingest([op(50)])
                assert caught.value.tenant is None  # the shared path is down
                assert caught.value.reason == "oplog.append"

                # The open breaker fast-fails every tenant without even
                # touching the log again — including first-touch ones.
                with pytest.raises(DegradedError):
                    svc.tenant("charlie").ingest([op(60)])

                # Reads serve throughout.
                assert svc.tenant("alpha").num_objects() == 8
                assert svc.tenant("alpha").partition()

                report = svc.health.report()
                assert report["checks"]["durability"]["status"] == "failing"
                assert report["ready"] is False  # ingest is down node-wide

                injector.lift()

                def recovered():
                    try:
                        return svc.tenant("alpha").ingest([op(51)]) == 1
                    except DegradedError:
                        return False

                # The half-open trial is the next real append.
                assert await_recovery(recovered)

            report = svc.health.report()
            assert report["checks"]["durability"]["status"] == "ok"
            assert report["ready"] is True
            assert svc.stats()["durability"]["oplog"]["state"] == "closed"

    def test_degraded_eviction_skips_the_sick_tenant(self, tmp_path):
        """LRU eviction under a sick checkpoint path parks a healthy
        neighbour instead, and never wedges the activation loop."""
        with open_service(tmp_path, max_resident_tenants=2) as svc:
            svc.tenant("alpha").ingest([op(i) for i in range(4)])
            svc.tenant("bravo").ingest([op(100 + i) for i in range(4)])
            with ErrorInjector(
                enospc("checkpoint.save", path_substring="tenants/alpha/")
            ):
                # Touch order makes alpha the LRU candidate; its path is
                # sick, so bravo (next LRU) is parked instead.
                svc.tenant("charlie").ingest([op(200)])
                resident = svc.manager.resident()
                assert "charlie" in resident
                assert "alpha" in resident  # unevictable, still resident
                assert "bravo" not in resident
