"""Tests for the experiment harness (GreedySet/DynamicSet, timing, F1)."""

import pytest

from repro.clustering.baselines import GreedyIncremental, NaiveIncremental
from repro.clustering.batch import HillClimbing
from repro.clustering.objectives import DBIndexObjective
from repro.core import DynamicC
from repro.data.generators import generate_cora
from repro.data.workload import OperationMix, build_workload
from repro.eval.harness import (
    f1_against_reference,
    run_batch_per_round,
    run_incremental,
)


@pytest.fixture(scope="module")
def small_workload():
    dataset = generate_cora(n_entities=25, n_duplicates=75, seed=31)
    return build_workload(
        dataset,
        initial_count=40,
        n_snapshots=5,
        mixes=OperationMix(add=0.2, remove=0.02, update=0.03),
        seed=4,
    )


@pytest.fixture(scope="module")
def reference(small_workload):
    return run_batch_per_round(
        small_workload,
        lambda: HillClimbing(DBIndexObjective()),
        score_fn=lambda c: DBIndexObjective().score(c),
    )


class TestBatchRunner:
    def test_one_round_per_snapshot_plus_initial(self, small_workload, reference):
        assert len(reference.rounds) == len(small_workload.snapshots) + 1
        assert reference.rounds[0].index == 0

    def test_labels_cover_live_objects(self, small_workload, reference):
        for i, record in enumerate(reference.rounds):
            assert set(record.labels) == small_workload.live_ids_after(i)

    def test_scores_recorded(self, reference):
        assert all(r.score is not None for r in reference.rounds)

    def test_latencies_positive(self, reference):
        assert all(r.latency > 0 for r in reference.rounds)


class TestIncrementalRunner:
    def test_observe_rounds_tagged(self, small_workload):
        run = run_incremental(
            small_workload,
            lambda g: DynamicC(g, DBIndexObjective(), seed=0),
            bootstrap=lambda g: HillClimbing(DBIndexObjective()).cluster(g),
            train_rounds=2,
        )
        phases = [r.phase for r in run.rounds]
        assert phases == ["observe", "observe", "predict", "predict", "predict"]
        assert run.train_time > 0

    def test_consuming_all_snapshots_for_training_rejected(self, small_workload):
        with pytest.raises(ValueError):
            run_incremental(
                small_workload,
                lambda g: DynamicC(g, DBIndexObjective(), seed=0),
                bootstrap=lambda g: HillClimbing(DBIndexObjective()).cluster(g),
                train_rounds=99,
            )

    def test_default_bootstrap_is_singletons(self, small_workload):
        run = run_incremental(
            small_workload, lambda g: NaiveIncremental(g, threshold=0.4)
        )
        initial_ids = set(small_workload.initial)
        assert set(run.bootstrap_labels) == initial_ids
        assert len(set(run.bootstrap_labels.values())) == len(initial_ids)

    def test_greedyset_resets_each_round(self, small_workload, reference):
        greedy = run_incremental(
            small_workload,
            lambda g: GreedyIncremental(g, DBIndexObjective()),
            bootstrap=lambda g: HillClimbing(DBIndexObjective()).cluster(g),
        )
        greedyset = run_incremental(
            small_workload,
            lambda g: DynamicC(g, DBIndexObjective(), seed=0),
            bootstrap=lambda g: HillClimbing(DBIndexObjective()).cluster(g),
            train_rounds=2,
            reset_from=greedy,
            name="dynamicc-greedyset",
        )
        assert greedyset.name == "dynamicc-greedyset"
        assert len(greedyset.predict_rounds()) == 3

    def test_f1_alignment_by_snapshot_index(self, small_workload, reference):
        run = run_incremental(
            small_workload,
            lambda g: NaiveIncremental(g, threshold=0.4),
            bootstrap=lambda g: HillClimbing(DBIndexObjective()).cluster(g),
        )
        metrics = f1_against_reference(run, reference)
        assert len(metrics) == len(run.predict_rounds())
        assert all(0.0 <= m.f1 <= 1.0 for m in metrics)

    def test_method_runs_share_workload_state(self, small_workload, reference):
        # Two independent runs over the same workload see identical live sets.
        a = run_incremental(
            small_workload, lambda g: NaiveIncremental(g, threshold=0.4)
        )
        b = run_incremental(
            small_workload, lambda g: NaiveIncremental(g, threshold=0.4)
        )
        for ra, rb in zip(a.rounds, b.rounds):
            assert set(ra.labels) == set(rb.labels)
