"""Tests for pair metrics, purity, and the report renderer."""

import pytest

from repro.eval import (
    inverse_purity,
    pair_f1,
    pair_metrics,
    purity,
    render_table,
)


class TestPairMetrics:
    def test_identical_clusterings(self):
        groups = [{1, 2, 3}, {4, 5}]
        m = pair_metrics(groups, groups)
        assert m.precision == 1.0 and m.recall == 1.0 and m.f1 == 1.0

    def test_all_singletons_vs_one_cluster(self):
        singletons = [{1}, {2}, {3}]
        together = [{1, 2, 3}]
        m = pair_metrics(singletons, together)
        assert m.precision == 1.0  # no candidate pairs: vacuous precision
        assert m.recall == 0.0
        assert m.f1 == 0.0

    def test_counts(self):
        candidate = [{1, 2}, {3, 4}]
        reference = [{1, 2, 3}, {4}]
        m = pair_metrics(candidate, reference)
        assert m.candidate_pairs == 2
        assert m.reference_pairs == 3
        assert m.true_pairs == 1
        assert m.precision == pytest.approx(0.5)
        assert m.recall == pytest.approx(1 / 3)

    def test_restricts_to_common_objects(self):
        candidate = {1: 0, 2: 0}
        reference = {1: 0, 2: 0, 3: 0}
        m = pair_metrics(candidate, reference)
        assert m.reference_pairs == 1  # pair (1,2) only
        assert m.f1 == 1.0

    def test_accepts_label_mappings(self):
        a = {1: "x", 2: "x", 3: "y"}
        b = {1: 0, 2: 0, 3: 1}
        assert pair_f1(a, b) == 1.0

    def test_accepts_clustering_objects(self, paper_old_clustering):
        assert pair_f1(paper_old_clustering, paper_old_clustering) == 1.0

    def test_symmetric_f1(self):
        a = [{1, 2}, {3, 4, 5}]
        b = [{1, 2, 3}, {4, 5}]
        assert pair_f1(a, b) == pytest.approx(pair_f1(b, a))


class TestPurity:
    def test_perfect(self):
        groups = [{1, 2}, {3}]
        assert purity(groups, groups) == 1.0
        assert inverse_purity(groups, groups) == 1.0

    def test_over_merged_candidate(self):
        candidate = [{1, 2, 3, 4}]
        reference = [{1, 2}, {3, 4}]
        assert purity(candidate, reference) == pytest.approx(0.5)
        assert inverse_purity(candidate, reference) == 1.0

    def test_over_split_candidate(self):
        candidate = [{1}, {2}, {3}, {4}]
        reference = [{1, 2}, {3, 4}]
        assert purity(candidate, reference) == 1.0
        assert inverse_purity(candidate, reference) == pytest.approx(0.5)

    def test_empty_overlap(self):
        assert purity({1: 0}, {2: 0}) == 1.0


class TestRenderTable:
    def test_alignment(self):
        table = render_table(
            ["name", "value"], [["a", 1.23456], ["long-name", 2]], precision=2
        )
        lines = table.splitlines()
        assert "name" in lines[0]
        assert "1.23" in table
        assert len(set(len(line) for line in lines)) <= 2  # aligned widths

    def test_title(self):
        table = render_table(["x"], [[1]], title="Table 9")
        assert table.startswith("Table 9")

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])
