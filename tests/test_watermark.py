"""Tests for the end-to-end freshness watermark.

The watermark is one wall-clock stamp (``ingest_ts``, from the
primary's clock) applied once at service ingest, then carried
everywhere: the oplog's ``"ts"`` field, segment/snapshot/heartbeat
artifacts, replica apply, checkpoints, and finally the
``visibility_lag_s`` a replica reports. These tests pin the stamping
point, the round-trips, and the edge cases (empty logs, never-polled
replicas, skewed clocks, pre-watermark records).
"""

from __future__ import annotations

import json
import time

import pytest

from repro.clustering.objectives import DBIndexObjective
from repro.core import DynamicC
from repro.data.generators import generate_access
from repro.data.workload import OperationMix, build_workload
from repro.replica import (
    InProcessTransport,
    LogSegment,
    LogShipper,
    ReadReplica,
    SnapshotArtifact,
)
from repro.stream import ClusteringService, StreamConfig, add
from repro.stream.events import Operation
from repro.stream.oplog import open_log


@pytest.fixture(scope="module")
def dataset():
    return generate_access(n_profiles=6, n_records=240, seed=3)


@pytest.fixture(scope="module")
def events(dataset):
    workload = build_workload(
        dataset,
        initial_count=80,
        n_snapshots=5,
        mixes=OperationMix(add=0.12, remove=0.03, update=0.03),
        seed=2,
    )
    return workload.event_stream()


def make_factory(dataset):
    def factory():
        return DynamicC(dataset.graph(), DBIndexObjective(), seed=0)

    return factory


def config(tmp_path=None, **overrides) -> StreamConfig:
    settings = dict(n_shards=2, batch_max_ops=32, train_rounds=2)
    if tmp_path is not None:
        settings.update(
            oplog_path=tmp_path / "oplog", checkpoint_dir=tmp_path / "ckpt"
        )
    settings.update(overrides)
    return StreamConfig(**settings)


class TestOperationStamp:
    def test_with_ingest_ts_round_trips_through_dict(self):
        op = add(1, "p").with_seq(3).with_ingest_ts(1234.5)
        assert op.ingest_ts == 1234.5
        data = op.to_dict()
        assert data["ts"] == 1234.5
        assert Operation.from_dict(data).ingest_ts == 1234.5

    def test_unstamped_op_omits_ts_key_and_decodes(self):
        data = add(1, "p").with_seq(3).to_dict()
        assert "ts" not in data
        assert Operation.from_dict(data).ingest_ts is None

    def test_pre_watermark_records_decode(self):
        # Records written before this field existed have no "ts" key;
        # they must keep loading (rolling upgrade over an old log).
        data = add(1, "p").with_seq(3).to_dict()
        data.pop("ts", None)
        op = Operation.from_dict(data)
        assert op.seq == 3 and op.ingest_ts is None

    def test_with_seq_and_with_shard_preserve_stamp(self):
        op = add(1, "p").with_ingest_ts(7.0)
        assert op.with_seq(9).ingest_ts == 7.0
        assert op.with_seq(9).with_shard(1).ingest_ts == 7.0


class TestServiceStamping:
    @pytest.mark.parametrize("telemetry", (None, "on"))
    def test_ingest_stamps_every_operation(self, dataset, events, telemetry):
        # Both the hot path and the instrumented path must stamp.
        service = ClusteringService(
            make_factory(dataset), config(telemetry=telemetry)
        )
        before = time.time()
        service.ingest(events[:100])
        after = time.time()
        assert service.applied_watermark_ts is not None
        assert before <= service.applied_watermark_ts <= after
        stats = service.stats()
        assert stats["applied_watermark_ts"] == service.applied_watermark_ts
        service.close()

    def test_pre_stamped_operations_keep_their_stamp(self, dataset, events):
        # Replica apply re-ingests operations that already carry the
        # primary's stamp; re-stamping would fake zero visibility lag.
        service = ClusteringService(make_factory(dataset), config())
        ops = [op for op in events[:60] if op.kind == "add"][:40]
        stamped = [op.with_ingest_ts(1000.0 + i) for i, op in enumerate(ops)]
        service.ingest(stamped)
        service.flush()
        assert service.applied_watermark_ts == 1000.0 + len(ops) - 1
        service.close()

    def test_watermark_survives_checkpoint_recover(self, dataset, events, tmp_path):
        service = ClusteringService(make_factory(dataset), config(tmp_path))
        service.ingest(events[:100])
        service.flush()
        watermark = service.applied_watermark_ts
        assert watermark is not None
        service.checkpoint()
        service.close()

        recovered = ClusteringService.recover(
            make_factory(dataset), config(tmp_path)
        )
        assert recovered.applied_watermark_ts == watermark
        recovered.close()


class TestLogRoundTrip:
    @pytest.mark.parametrize("backend", ("jsonl", "sqlite"))
    def test_ts_persists_and_heal_tail_recovers_watermark(self, backend, tmp_path):
        path = tmp_path / f"log-{backend}"
        log = open_log(path, backend=backend)
        ops = [add(i, f"p{i}").with_ingest_ts(100.0 + i) for i in range(5)]
        log.append(ops)
        assert log.last_watermark_ts == 104.0
        log.close()

        reopened = open_log(path, backend=backend)
        assert reopened.last_watermark_ts == 104.0
        replayed = list(reopened.iter_from(0))
        assert [op.ingest_ts for op in replayed] == [100.0 + i for i in range(5)]
        reopened.close()

    @pytest.mark.parametrize("backend", ("jsonl", "sqlite"))
    def test_unstamped_ops_leave_watermark_alone(self, backend, tmp_path):
        log = open_log(tmp_path / f"log-{backend}", backend=backend)
        log.append([add(1, "a").with_ingest_ts(50.0)])
        log.append([add(2, "b")])  # control/legacy record: no stamp
        assert log.last_watermark_ts == 50.0
        log.close()

    def test_empty_log_has_no_watermark(self, tmp_path):
        log = open_log(tmp_path / "log", backend="jsonl")
        assert log.last_watermark_ts is None
        log.close()

    def test_jsonl_line_carries_ts_key(self, tmp_path):
        path = tmp_path / "log"
        log = open_log(path, backend="jsonl")
        log.append([add(1, "a").with_ingest_ts(42.0)])
        log.close()
        line = json.loads(path.read_text().splitlines()[0])
        assert line["ts"] == 42.0


class TestArtifactCarry:
    def ops(self, n):
        return tuple(
            add(i, f"p{i}").with_seq(i + 1).with_ingest_ts(10.0 + i)
            for i in range(n)
        )

    def test_segment_round_trip(self):
        segment = LogSegment(
            1,
            3,
            self.ops(3),
            primary_seq=3,
            shipped_at=1.0,
            primary_watermark_ts=12.0,
        )
        decoded = LogSegment.from_dict(segment.to_dict())
        assert decoded.primary_watermark_ts == 12.0
        assert [op.ingest_ts for op in decoded.operations] == [10.0, 11.0, 12.0]

    def test_segment_without_watermark_round_trips_none(self):
        segment = LogSegment(1, 3, self.ops(3), primary_seq=3, shipped_at=1.0)
        assert "primary_watermark_ts" not in segment.to_dict()
        assert LogSegment.from_dict(segment.to_dict()).primary_watermark_ts is None

    def test_heartbeat_carries_watermark(self):
        beat = LogSegment.heartbeat(5, 5, 2.0, primary_watermark_ts=99.0)
        assert beat.is_heartbeat
        assert LogSegment.from_dict(beat.to_dict()).primary_watermark_ts == 99.0

    def test_snapshot_round_trip(self):
        artifact = SnapshotArtifact.from_state(
            {"applied_seq": 7, "anything": 1},
            primary_seq=9,
            shipped_at=3.0,
            primary_watermark_ts=88.0,
        )
        assert (
            SnapshotArtifact.from_dict(artifact.to_dict()).primary_watermark_ts
            == 88.0
        )

    def test_shipper_stamps_all_artifact_kinds(self, dataset, events, tmp_path):
        primary = ClusteringService(make_factory(dataset), config(tmp_path))
        primary.ingest(events[:100])
        primary.flush()
        primary.checkpoint()
        watermark = primary.oplog.last_watermark_ts
        assert watermark is not None

        transport = InProcessTransport()
        shipper = LogShipper(
            primary.oplog, snapshots=primary.checkpoints.load_latest
        )
        shipper.attach(transport)
        shipper.ship()
        segments = transport.poll()
        assert segments
        assert all(s.primary_watermark_ts == watermark for s in segments)

        # Idle heartbeat still carries it.
        shipper.ship(heartbeat=True)
        (beat,) = transport.poll()
        assert beat.is_heartbeat and beat.primary_watermark_ts == watermark

        # Snapshot resync carries it too.
        shipper.resync(transport)
        (snapshot,) = transport.poll()
        assert isinstance(snapshot, SnapshotArtifact)
        assert snapshot.primary_watermark_ts == watermark
        primary.close()


class TestReplicaLagEdges:
    def make_pair(self, dataset, tmp_path, clock=None):
        primary = ClusteringService(make_factory(dataset), config(tmp_path))
        transport = InProcessTransport()
        shipper = LogShipper(
            primary.oplog, snapshots=primary.checkpoints.load_latest
        )
        shipper.attach(transport)
        kwargs = {"clock": clock} if clock is not None else {}
        replica = ReadReplica(
            make_factory(dataset), config(), transport, name="r0", **kwargs
        )
        return primary, shipper, transport, replica

    def test_never_polled_replica_reports_nones(self, dataset, tmp_path):
        primary, _, _, replica = self.make_pair(dataset, tmp_path)
        lag = replica.lag()
        assert lag["primary_watermark_ts"] is None
        assert lag["applied_watermark_ts"] is None
        assert lag["visibility_lag_s"] is None
        assert lag["staleness_s"] is None
        assert lag["applied_age_s"] is None
        assert lag["seq_delta"] == 0
        replica.close()
        primary.close()

    def test_visibility_lag_after_poll(self, dataset, events, tmp_path):
        primary, shipper, _, replica = self.make_pair(dataset, tmp_path)
        primary.ingest(events[:100])
        primary.flush()
        shipper.ship()
        replica.poll()
        lag = replica.lag()
        assert lag["primary_watermark_ts"] == primary.oplog.last_watermark_ts
        assert lag["applied_watermark_ts"] is not None
        assert lag["visibility_lag_s"] is not None
        assert lag["visibility_lag_s"] >= 0.0
        assert lag["applied_age_s"] >= 0.0
        replica.close()
        primary.close()

    def test_skewed_clock_clamps_staleness(self, dataset, events, tmp_path):
        # The replica's wall clock is an hour behind the primary's:
        # shipped_at stamps are "from the future". staleness_s must
        # clamp to zero, not report a negative age.
        behind = lambda: time.time() - 3600.0
        primary, shipper, _, replica = self.make_pair(
            dataset, tmp_path, clock=behind
        )
        primary.ingest(events[:100])
        primary.flush()
        shipper.ship()
        replica.poll()
        lag = replica.lag()
        assert lag["staleness_s"] == 0.0
        # The watermark subtraction never involves the replica's clock,
        # so it stays meaningful (and clamped) under the same skew.
        assert lag["visibility_lag_s"] is not None
        assert lag["visibility_lag_s"] >= 0.0
        # applied_age_s runs on the monotonic clock: immune, >= 0.
        assert lag["applied_age_s"] >= 0.0
        replica.close()
        primary.close()

    def test_artifact_race_clamps_visibility_lag(self, dataset, tmp_path):
        # A snapshot stamped before a concurrent ingest can order the
        # two watermarks oddly; the lag must clamp, not go negative.
        primary, _, _, replica = self.make_pair(dataset, tmp_path)
        replica.service.applied_watermark_ts = 200.0
        replica._advance_watermark(150.0)
        assert replica.lag()["visibility_lag_s"] == 0.0
        replica.close()
        primary.close()

    def test_watermark_only_advances(self, dataset, tmp_path):
        primary, _, _, replica = self.make_pair(dataset, tmp_path)
        replica._advance_watermark(100.0)
        replica._advance_watermark(90.0)  # stale artifact arrives late
        replica._advance_watermark(None)  # pre-watermark artifact
        assert replica.primary_watermark_ts == 100.0
        replica.close()
        primary.close()
