"""Tests for §5.1 feature extraction."""

import numpy as np
import pytest

from repro.clustering.state import Clustering
from repro.core.features import (
    cluster_features,
    features_of_members,
    merged_features,
)

from paper_example import PAPER_IDS

R = PAPER_IDS


class TestClusterFeatures:
    def test_singleton_features(self, paper_singletons):
        feats = cluster_features(
            paper_singletons, paper_singletons.cluster_of(R["r1"])
        )
        assert feats.intra == 1.0  # singleton cohesion convention
        assert feats.size == 1
        assert feats.max_inter == pytest.approx(1.0)  # r1–r7 edge
        assert feats.partner_size == 1

    def test_pair_features(self, paper_graph):
        c = Clustering.from_groups(
            paper_graph, [[R["r4"], R["r5"]], [R["r6"]], [R["r1"]]]
        )
        feats = cluster_features(c, c.cluster_of(R["r4"]))
        assert feats.intra == pytest.approx(0.9)
        assert feats.size == 2
        # Neighbour cluster {r6} at average (0.8 + 0.7) / 2.
        assert feats.max_inter == pytest.approx(0.75)
        assert feats.partner_cid == c.cluster_of(R["r6"])
        assert feats.partner_size == 1

    def test_isolated_cluster_has_zero_inter(self, paper_graph):
        c = Clustering.from_groups(
            paper_graph, [[R["r4"], R["r5"], R["r6"]]]
        )
        feats = cluster_features(c, c.cluster_of(R["r4"]))
        assert feats.max_inter == 0.0
        assert feats.partner_cid is None

    def test_vectors(self, paper_singletons):
        feats = cluster_features(
            paper_singletons, paper_singletons.cluster_of(R["r1"])
        )
        assert feats.merge_vector().shape == (4,)
        assert feats.split_vector().shape == (3,)
        np.testing.assert_allclose(
            feats.merge_vector()[:3], feats.split_vector()
        )


class TestMergedFeatures:
    def test_matches_actual_merge(self, paper_singletons):
        c = paper_singletons
        a = c.cluster_of(R["r4"])
        b = c.cluster_of(R["r5"])
        hypothetical = merged_features(c, a, b)
        merged_cid = c.merge(a, b)
        actual = cluster_features(c, merged_cid)
        assert hypothetical.intra == pytest.approx(actual.intra)
        assert hypothetical.max_inter == pytest.approx(actual.max_inter)
        assert hypothetical.size == actual.size
        assert hypothetical.partner_size == actual.partner_size


class TestFeaturesOfMembers:
    def test_matches_live_cluster(self, paper_graph):
        c = Clustering.from_groups(
            paper_graph,
            [[R["r4"], R["r5"]], [R["r6"]], [R["r1"], R["r2"], R["r3"]], [R["r7"]]],
        )
        cid = c.cluster_of(R["r4"])
        live = cluster_features(c, cid)
        by_members = features_of_members(c, frozenset({R["r4"], R["r5"]}))
        assert by_members.intra == pytest.approx(live.intra)
        assert by_members.max_inter == pytest.approx(live.max_inter)
        assert by_members.size == live.size
