"""Routing tests: least-loaded assignment, stamped-placement replay,
and the recovery/replica guarantee that stamped operations land on the
same shard everywhere."""

from __future__ import annotations

import pytest

from repro.clustering.objectives import DBIndexObjective
from repro.core import DynamicC
from repro.data.generators import generate_access
from repro.data.workload import OperationMix, build_workload
from repro.stream import (
    ClusteringService,
    LeastLoadedRouter,
    Operation,
    StreamConfig,
    add,
    make_router,
    remove,
    update,
)
from repro.stream.router import HashRouter, stable_hash


@pytest.fixture(scope="module")
def access_dataset():
    return generate_access(n_profiles=6, n_records=260, seed=7)


@pytest.fixture(scope="module")
def access_events(access_dataset):
    workload = build_workload(
        access_dataset,
        initial_count=90,
        n_snapshots=6,
        mixes=OperationMix(add=0.15, remove=0.05, update=0.04),
        seed=5,
    )
    return workload.event_stream()


def make_factory(dataset):
    def factory():
        return DynamicC(dataset.graph(), DBIndexObjective(), seed=0)

    return factory


def placements(service) -> dict[int, int]:
    return {
        obj_id: service.membership.shard_of(obj_id)
        for obj_id in service.membership.live_ids()
    }


class TestOperationShardStamp:
    def test_shard_survives_dict_roundtrip(self):
        op = add(7, "payload").with_shard(3).with_seq(12)
        assert op.shard == 3 and op.seq == 12
        again = Operation.from_dict(op.to_dict())
        assert again == op

    def test_unstamped_roundtrip_stays_unstamped(self):
        op = add(7, "payload").with_seq(1)
        data = op.to_dict()
        assert "shard" not in data
        assert Operation.from_dict(data).shard is None


class TestLeastLoadedRouter:
    def test_new_objects_go_to_lightest(self):
        router = LeastLoadedRouter(3)
        stamped = router.assign([add(i, "p") for i in range(6)])
        assert [op.shard for op in stamped] == [0, 1, 2, 0, 1, 2]
        assert router.loads() == [2, 2, 2]

    def test_chunked_placement_blocks(self):
        router = LeastLoadedRouter(2, chunk=3)
        stamped = router.assign([add(i, "p") for i in range(7)])
        assert [op.shard for op in stamped] == [0, 0, 0, 1, 1, 1, 0]

    def test_assignment_is_sticky_across_updates_and_readds(self):
        router = LeastLoadedRouter(2)
        (first,) = router.assign([add(1, "p")])
        router.assign([add(2, "p"), add(3, "p")])
        (upd,) = router.assign([update(1, "p2")])
        assert upd.shard == first.shard
        (rem,) = router.assign([remove(1)])
        assert rem.shard == first.shard
        # Load freed by the remove, but placement memory survives.
        (readd,) = router.assign([add(1, "p3")])
        assert readd.shard == first.shard

    def test_remove_frees_load(self):
        router = LeastLoadedRouter(2)
        router.assign([add(1, "p"), add(2, "p"), add(3, "p")])
        assert sorted(router.loads()) == [1, 2]
        router.assign([remove(1)])
        assert sorted(router.loads()) == [1, 1]

    def test_unknown_remove_is_hash_stamped(self):
        router = LeastLoadedRouter(4)
        (rem,) = router.assign([remove(99)])
        assert rem.shard == stable_hash(99) % 4
        assert router.loads() == [0, 0, 0, 0]

    def test_partition_honours_stamp_over_hash(self):
        router = LeastLoadedRouter(2)
        stamped = add(5, "p").with_shard(1)
        unstamped = add(6, "q")
        parts = router.partition([stamped, unstamped])
        assert stamped in parts[1]
        assert unstamped in parts[stable_hash(6) % 2]

    def test_observe_rebuilds_load_state(self):
        primary = LeastLoadedRouter(2)
        stamped = primary.assign([add(i, "p") for i in range(5)])
        follower = LeastLoadedRouter(2)
        for op in stamped:
            follower.observe(op)
        assert follower.loads() == primary.loads()
        assert all(
            follower.shard_of(op.obj_id) == primary.shard_of(op.obj_id)
            for op in stamped
        )

    def test_hash_router_stamps_nothing(self):
        router = HashRouter(2)
        ops = router.assign([add(1, "p")])
        assert ops[0].shard is None

    def test_make_router_validates(self):
        with pytest.raises(ValueError):
            make_router("round-robin", 2)
        with pytest.raises(ValueError):
            LeastLoadedRouter(2, chunk=0)


class TestServiceWithLeastLoaded:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            StreamConfig(router="weighted")

    def test_balanced_ingest_and_queries(self, access_dataset, access_events):
        service = ClusteringService(
            make_factory(access_dataset),
            StreamConfig(
                n_shards=2, batch_max_ops=32, train_rounds=2, router="least-loaded"
            ),
        )
        service.ingest(access_events)
        service.flush()
        stats = service.stats()
        assert stats["router"] == "least-loaded"
        per_shard = [shard["objects"] for shard in stats["shards"]]
        # Balanced to within one placement chunk.
        assert abs(per_shard[0] - per_shard[1]) <= 32
        for obj_id in service.membership.live_ids():
            gcid = service.cluster_of(obj_id)
            assert gcid is not None and obj_id in service.members(gcid)

    def test_recovery_replays_identical_placement(
        self, access_dataset, access_events, tmp_path
    ):
        config = StreamConfig(
            n_shards=2,
            batch_max_ops=32,
            train_rounds=2,
            router="least-loaded",
            oplog_path=tmp_path / "oplog.jsonl",
            checkpoint_dir=tmp_path / "ckpt",
        )
        factory = make_factory(access_dataset)
        with ClusteringService(factory, config) as service:
            half = len(access_events) // 2
            service.ingest(access_events[:half])
            service.checkpoint()
            service.ingest(access_events[half:])
            service.flush()
            reference = placements(service)
            reference_partition = service.partition()

        with ClusteringService.recover(factory, config) as recovered:
            recovered.flush()
            assert placements(recovered) == reference
            assert recovered.partition() == reference_partition

    def test_router_downgrade_refused_at_ingest(
        self, access_dataset, access_events, tmp_path
    ):
        """Recovering stamped state with a hash config is legal (that is
        what a read replica of a least-loaded primary does) — but the
        first *ingest* through the stateless router must refuse, or new
        operations for placed objects would drift to the wrong shard."""
        config = StreamConfig(
            n_shards=2,
            batch_max_ops=32,
            train_rounds=2,
            router="least-loaded",
            oplog_path=tmp_path / "oplog.jsonl",
            checkpoint_dir=tmp_path / "ckpt",
        )
        factory = make_factory(access_dataset)
        with ClusteringService(factory, config) as service:
            service.ingest(access_events[:64])
            service.checkpoint()
            reference = placements(service)
        hash_config = StreamConfig(
            n_shards=2,
            batch_max_ops=32,
            train_rounds=2,
            router="hash",
            oplog_path=tmp_path / "oplog.jsonl",
            checkpoint_dir=tmp_path / "ckpt",
        )
        with ClusteringService.recover(factory, hash_config) as recovered:
            recovered.flush()
            # Reads over stamped state are fine — placement follows stamps.
            assert placements(recovered) == reference
            # Writes through the stateless router are not.
            with pytest.raises(RuntimeError, match="stamped"):
                recovered.ingest([update(next(iter(reference)), [0.1, 0.2])])

    def test_stamped_flag_survives_checkpoint_of_hash_configured_follower(
        self, access_dataset, access_events, tmp_path
    ):
        """A hash-configured service that *applied* stamped operations
        (the follower-of-a-least-loaded-primary shape) must itself
        refuse later hash ingest — even after its own checkpoint, which
        records router='hash'."""
        ll_config = StreamConfig(
            n_shards=2,
            batch_max_ops=16,
            train_rounds=1,
            router="least-loaded",
            oplog_path=tmp_path / "primary.jsonl",
        )
        factory = make_factory(access_dataset)
        with ClusteringService(factory, ll_config) as primary:
            primary.ingest(access_events[:48])
            primary.flush()
            stamped_ops = list(primary.oplog.replay(after_seq=0))

        follower_config = StreamConfig(
            n_shards=2,
            batch_max_ops=16,
            train_rounds=1,
            router="hash",
            checkpoint_dir=tmp_path / "follower-ckpt",
        )
        follower = ClusteringService(factory, follower_config)
        follower.apply_logged(stamped_ops, expect_after=0)
        follower.flush()
        assert follower.placements_stamped
        follower.checkpoint()
        follower.close()

        with ClusteringService.recover(factory, follower_config) as promoted:
            assert promoted.placements_stamped
            with pytest.raises(RuntimeError, match="stamped"):
                promoted.ingest([add(999_001, [0.3, 0.4])])

    def test_post_recovery_ingest_respects_learned_placement(
        self, access_dataset, tmp_path
    ):
        """After recovery the router must know live placements — a new
        update for a checkpointed object may not drift to another shard."""
        config = StreamConfig(
            n_shards=2,
            batch_max_ops=8,
            train_rounds=1,
            router="least-loaded",
            oplog_path=tmp_path / "oplog.jsonl",
            checkpoint_dir=tmp_path / "ckpt",
        )
        factory = make_factory(access_dataset)
        payload = [0.5, 0.5]
        with ClusteringService(factory, config) as service:
            service.ingest([add(i, payload) for i in range(16)])
            service.flush()
            before = placements(service)
            service.checkpoint()

        with ClusteringService.recover(factory, config) as recovered:
            recovered.ingest([update(i, [0.6, 0.6]) for i in range(16)])
            recovered.flush()
            assert placements(recovered) == before
