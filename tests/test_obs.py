"""Tests for `repro.obs`: metric primitives, tracing, the telemetry
bundle, and the end-to-end acceptance invariant — one fault-harness run
of the replicated topology produces a single merged snapshot covering
every pipeline stage with p50/p95/p99 on every latency series, plus a
loadable Chrome trace."""

from __future__ import annotations

import json
import math
import random

import pytest

from repro.clustering.objectives import DBIndexObjective
from repro.core import DynamicC
from repro.data.generators import generate_access
from repro.data.workload import OperationMix, build_workload
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    Tracer,
    make_telemetry,
    snapshot_to_prometheus,
    write_metrics_json,
    write_metrics_prometheus,
)
from repro.obs.tracing import NULL_SPAN
from repro.replica import ReplicatedClusteringService
from repro.stream import ClusteringService, StreamConfig

from faultinject import FaultInjector


# ---------------------------------------------------------------------------
# Metric primitives
# ---------------------------------------------------------------------------
class TestCounterGauge:
    def test_counter_monotonic(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.snapshot() == 5
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(3.5)
        gauge.inc(1.5)
        gauge.dec(2.0)
        assert gauge.snapshot() == 3.0


class TestHistogram:
    @pytest.mark.parametrize("distribution", ("uniform", "lognormal", "bimodal"))
    def test_percentiles_track_sorted_sample_quantiles(self, distribution):
        """Streaming estimates stay within the log-bucket error bound.

        The documented contract: relative error ≤ ``growth - 1`` (5% at
        the default), except where the estimate is clamped to the exact
        observed min/max. Checked against nearest-rank quantiles of the
        fully sorted sample across distribution shapes latency series
        actually take.
        """
        rng = random.Random(hash(distribution) & 0xFFFF)
        if distribution == "uniform":
            samples = [rng.uniform(1e-4, 1e-1) for _ in range(3000)]
        elif distribution == "lognormal":
            samples = [rng.lognormvariate(-7, 1.5) for _ in range(3000)]
        else:  # fast mode + slow tail, the classic latency shape
            samples = [
                rng.uniform(1e-5, 3e-5) if rng.random() < 0.9
                else rng.uniform(1e-2, 5e-2)
                for _ in range(3000)
            ]
        histogram = Histogram()
        for value in samples:
            histogram.record(value)
        ordered = sorted(samples)
        for q in (0.5, 0.9, 0.95, 0.99):
            exact = ordered[max(0, math.ceil(q * len(ordered)) - 1)]
            estimate = histogram.percentile(q)
            # One-sided bucket rounding both ways plus nearest-rank
            # granularity: allow slightly over the nominal bound.
            assert estimate == pytest.approx(exact, rel=(histogram.growth - 1) * 1.5)

    def test_estimates_clamped_to_observed_range(self):
        histogram = Histogram()
        histogram.record(1.0)
        histogram.record(2.0)
        assert histogram.percentile(0.0) >= 1.0
        assert histogram.percentile(1.0) <= 2.0
        snap = histogram.snapshot()
        assert snap["min"] == 1.0 and snap["max"] == 2.0

    def test_aggregates_and_empty_behaviour(self):
        histogram = Histogram()
        assert histogram.percentile(0.5) == 0.0
        assert histogram.mean == 0.0
        assert histogram.snapshot()["min"] == 0.0
        for value in (0.1, 0.2, 0.3):
            histogram.record(value)
        snap = histogram.snapshot()
        assert snap["count"] == 3
        assert snap["total"] == pytest.approx(0.6)
        assert snap["mean"] == pytest.approx(0.2)
        assert snap["last"] == 0.3
        assert set(snap) >= {"p50", "p95", "p99"}

    def test_subfloor_values_share_the_underflow_bucket(self):
        histogram = Histogram(floor=1e-9)
        histogram.record(0.0)
        histogram.record(1e-12)
        assert histogram.percentile(0.5) <= 1e-9
        assert histogram.count == 2

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="growth"):
            Histogram(growth=1.0)
        with pytest.raises(ValueError, match="quantile"):
            Histogram().percentile(1.5)


class TestLabelsAndRegistry:
    def test_family_aggregates_by_label_values(self):
        family = MetricFamily("ops", "counter", ("kind", "shard"))
        family.labels(kind="add", shard=0).inc(3)
        family.labels(shard=0, kind="add").inc(2)  # kwarg order irrelevant
        family.labels(kind="add", shard=1).inc()
        snap = family.snapshot()
        assert snap == {"kind=add,shard=0": 5, "kind=add,shard=1": 1}

    def test_family_rejects_wrong_label_set(self):
        family = MetricFamily("ops", "counter", ("kind",))
        with pytest.raises(ValueError, match="takes labels"):
            family.labels(knid="typo")

    def test_registry_get_or_create_and_shape_check(self):
        registry = MetricsRegistry()
        assert registry.counter("events") is registry.counter("events")
        with pytest.raises(ValueError, match="different shape"):
            registry.gauge("events")
        with pytest.raises(ValueError, match="different shape"):
            registry.counter("events", labels=("kind",))

    def test_child_registries_nest_in_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("events").inc(7)
        registry.child("oplog").gauge("bytes").set(128)
        snap = registry.snapshot()
        assert snap["events"] == 7
        assert snap["oplog"]["bytes"] == 128
        assert registry.child("oplog") is registry.child("oplog")

    def test_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.counter("events").inc(2)
        family = registry.histogram("latency", labels=("op",))
        family.labels(op="apply").record(0.25)
        registry.child("shipper").counter("segments").inc()
        text = registry.to_prometheus(prefix="repro")
        assert "# TYPE repro_events counter" in text
        assert "repro_events 2" in text
        assert "# TYPE repro_latency summary" in text
        assert 'repro_latency{op="apply",quantile="0.5"}' in text
        assert 'repro_latency_count{op="apply"} 1' in text
        assert "repro_shipper_segments 1" in text

    def test_snapshot_flattener_handles_service_shapes(self):
        snapshot = {
            "applied_seq": 42,
            "fsync": True,
            "router": "least-loaded",  # strings are skipped
            "shards": [{"objects": 3}, {"objects": 5}],
            "oplog": {"bytes": None},  # None is skipped
        }
        text = snapshot_to_prometheus(snapshot, prefix="repro")
        assert "repro_applied_seq 42" in text
        assert "repro_fsync 1" in text
        assert 'repro_shards_objects{index="0"} 3' in text
        assert 'repro_shards_objects{index="1"} 5' in text
        assert "least-loaded" not in text and "None" not in text

    def test_artifact_writers(self, tmp_path):
        snapshot = {"events": 3, "latency": {"p50": 0.1}}
        write_metrics_json(tmp_path / "m.json", snapshot)
        write_metrics_prometheus(tmp_path / "m.prom", snapshot)
        assert json.loads((tmp_path / "m.json").read_text()) == snapshot
        assert "repro_latency_p50 0.1" in (tmp_path / "m.prom").read_text()


# ---------------------------------------------------------------------------
# Tracing
# ---------------------------------------------------------------------------
def make_tracer(**kwargs) -> Tracer:
    """A tracer on a deterministic fake clock (1ms per reading)."""
    ticks = iter(range(10_000))
    return Tracer(clock=lambda: next(ticks) * 1e-3, **kwargs)


class TestTracer:
    def test_span_nesting_depth_and_parent(self):
        tracer = make_tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                with tracer.span("leaf"):
                    pass
        by_name = {span.name: span for span in tracer.spans}
        assert by_name["outer"].depth == 0 and by_name["outer"].parent is None
        assert by_name["inner"].depth == 1 and by_name["inner"].parent == "outer"
        assert by_name["leaf"].depth == 2 and by_name["leaf"].parent == "inner"
        # Completion order is innermost-first; starts are outermost-first.
        assert [span.name for span in tracer.spans] == ["leaf", "inner", "outer"]
        assert tracer.snapshot()["open_spans"] == []

    def test_exception_still_records_and_unwinds(self):
        tracer = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        assert [span.name for span in tracer.spans] == ["inner", "outer"]
        assert tracer.snapshot()["open_spans"] == []

    def test_ring_buffer_bounds_memory_and_counts_drops(self):
        tracer = make_tracer(max_spans=4)
        for index in range(10):
            with tracer.span("op", index=index):
                pass
        assert len(tracer.spans) == 4
        assert tracer.spans_recorded == 10
        assert tracer.spans_dropped == 6
        recent = tracer.recent(2)
        assert [span["args"]["index"] for span in recent] == [8, 9]

    def test_chrome_trace_export(self, tmp_path):
        tracer = make_tracer()
        with tracer.span("stream.ingest", ops=5):
            with tracer.span("shard.apply", shard=0, component="replica-1"):
                pass
        with tracer.span("ship.publish", kind="segment"):
            pass
        tracer.write_chrome_trace(tmp_path / "trace.json")
        trace = json.loads((tmp_path / "trace.json").read_text())
        events = trace["traceEvents"]
        # Sorted by start time (not completion order), all complete events.
        assert [e["name"] for e in events] == [
            "stream.ingest", "shard.apply", "ship.publish",
        ]
        assert all(e["ph"] == "X" for e in events)
        starts = [e["ts"] for e in events]
        assert starts == sorted(starts)
        # cat = name prefix; component label routes to the tid row.
        assert [e["cat"] for e in events] == ["stream", "shard", "ship"]
        assert [e["tid"] for e in events] == ["service", "replica-1", "service"]
        assert "component" not in events[1]["args"]
        assert events[1]["args"]["shard"] == 0
        # µs since the tracer epoch; the fake clock ticks 1ms per reading.
        ingest = events[0]
        assert ingest["ts"] >= 0 and ingest["dur"] > 0
        assert ingest["dur"] == pytest.approx(
            ingest["dur"] // 1000 * 1000, abs=1
        )  # whole-ms fake clock → whole-µs multiple of 1000


# ---------------------------------------------------------------------------
# Telemetry bundle and the null recorder
# ---------------------------------------------------------------------------
class TestTelemetry:
    def test_span_feeds_the_latency_family(self):
        telemetry = Telemetry()
        with telemetry.span("stream.ingest"):
            pass
        with telemetry.span("stream.ingest"):
            pass
        with telemetry.span("shard.apply", shard=1):
            pass
        families = telemetry.snapshot()["metrics"]["span_seconds"]
        assert families["name=stream.ingest"]["count"] == 2
        assert families["name=shard.apply"]["count"] == 1
        assert set(families["name=shard.apply"]) >= {"p50", "p95", "p99"}

    def test_snapshot_shape_and_prometheus(self):
        telemetry = Telemetry()
        telemetry.counter("events").inc(3)
        with telemetry.span("checkpoint.save"):
            pass
        snap = telemetry.snapshot()
        assert snap["enabled"] is True
        assert snap["metrics"]["events"] == 3
        assert snap["trace"]["spans_recorded"] == 1
        json.dumps(snap)  # the whole bundle is JSON-compatible
        assert "repro_events 3" in telemetry.to_prometheus()

    def test_component_registries(self):
        telemetry = Telemetry()
        telemetry.component("oplog").counter("appends").inc()
        assert telemetry.snapshot()["metrics"]["oplog"]["appends"] == 1

    def test_make_telemetry_settings(self):
        assert make_telemetry(None) is NULL_TELEMETRY
        assert make_telemetry(False) is NULL_TELEMETRY
        assert make_telemetry("off") is NULL_TELEMETRY
        assert isinstance(make_telemetry(True), Telemetry)
        assert isinstance(make_telemetry("on"), Telemetry)
        shared = Telemetry()
        assert make_telemetry(shared) is shared
        assert make_telemetry(NULL_TELEMETRY) is NULL_TELEMETRY
        with pytest.raises(ValueError, match="telemetry"):
            make_telemetry("loud")

    def test_null_telemetry_is_inert(self, tmp_path):
        null = NULL_TELEMETRY
        assert isinstance(null, NullTelemetry) and not null.enabled
        assert null.span("anything", label=1) is NULL_SPAN
        with null.span("anything"):
            pass
        null.counter("c").inc()
        null.gauge("g", labels=("a",)).labels(a=1).set(2)
        null.histogram("h").record(0.5)
        null.component("oplog").counter("x").inc()
        assert null.snapshot() == {"enabled": False}
        assert null.to_prometheus() == ""
        null.write_chrome_trace(tmp_path / "trace.json")
        trace = json.loads((tmp_path / "trace.json").read_text())
        assert trace["traceEvents"] == []


# ---------------------------------------------------------------------------
# Service integration
# ---------------------------------------------------------------------------
def access_events(seed=3):
    dataset = generate_access(n_profiles=6, n_records=240, seed=seed)
    workload = build_workload(
        dataset,
        initial_count=80,
        n_snapshots=5,
        mixes=OperationMix(add=0.12, remove=0.03, update=0.03),
        seed=2,
    )

    def factory():
        return DynamicC(dataset.graph(), DBIndexObjective(), seed=0)

    return factory, workload.event_stream()


class TestServiceSnapshots:
    @pytest.mark.parametrize("telemetry", (None, "on"))
    def test_stats_snapshot_is_json_dumpable(self, telemetry):
        factory, events = access_events()
        service = ClusteringService(
            factory,
            StreamConfig(
                n_shards=2, batch_max_ops=32, train_rounds=2, telemetry=telemetry
            ),
        )
        service.ingest(events[:200])
        service.flush()
        stats = service.stats()
        json.dumps(stats)  # the acceptance smoke: no raw objects leak out
        assert stats["telemetry"]["enabled"] is (telemetry == "on")
        if telemetry == "on":
            families = stats["telemetry"]["metrics"]["span_seconds"]
            assert "name=stream.ingest" in families
        else:
            assert service.telemetry is NULL_TELEMETRY

    def test_shared_instance_survives_recovery(self, tmp_path):
        factory, events = access_events()
        telemetry = Telemetry()
        config = StreamConfig(
            n_shards=2,
            batch_max_ops=32,
            train_rounds=2,
            oplog_path=tmp_path / "oplog.jsonl",
            checkpoint_dir=tmp_path / "checkpoints",
            telemetry=telemetry,
        )
        service = ClusteringService(factory, config)
        service.ingest(events[:150])
        service.flush()
        service.checkpoint()
        service.close()
        recovered = ClusteringService.recover(factory, config)
        assert recovered.telemetry is telemetry
        families = telemetry.snapshot()["metrics"]["span_seconds"]
        assert "name=checkpoint.save" in families
        assert "name=checkpoint.load" in families
        recovered.close()


class TestEndToEndAcceptance:
    def test_fault_harness_run_yields_one_merged_snapshot(self, tmp_path):
        """The PR's acceptance invariant, verbatim.

        One replicated-topology run under the fault harness (dry run —
        intercepting every durability boundary without crashing) must
        produce a *single* merged ``stats()`` snapshot covering stream,
        engine round phases, oplog fsync, checkpoint, shipper and
        replica lag — with p50/p95/p99 on every latency series — plus a
        Chrome trace that loads as JSON.
        """
        factory, events = access_events()
        telemetry = Telemetry()
        config = StreamConfig(
            n_shards=2,
            batch_max_ops=32,
            train_rounds=2,
            oplog_path=tmp_path / "primary" / "oplog.jsonl",
            checkpoint_dir=tmp_path / "primary" / "checkpoints",
            fsync=True,
            telemetry=telemetry,
        )
        with FaultInjector(obs=telemetry) as injector:
            service = ReplicatedClusteringService(
                factory, config, max_segment_ops=64
            )
            service.add_replica(name="replica-0")
            half = len(events) // 2
            service.ingest(events[:half])
            service.sync()
            service.checkpoint()
            service.ingest(events[half:])
            service.flush()
            service.sync()
            lag = service.lag()
            merged = service.stats()
            service.close()
        assert len(injector) > 0  # the harness really intercepted ops

        # One snapshot, from the one shared recorder: primary, shipper
        # and replica all report the same telemetry object.
        assert merged["primary"]["telemetry"] is not None
        families = merged["primary"]["telemetry"]["metrics"]["span_seconds"]
        span_names = {key.split("=", 1)[1] for key in families}
        assert {
            "stream.ingest",          # ingest → route → batch → apply
            "stream.route",
            "stream.batch.apply",
            "shard.apply",
            "engine.train",           # round phases
            "engine.maintain",
            "oplog.append",           # durability
            "oplog.fsync",
            "checkpoint.save",
            "ship.publish",           # replication
            "replica.poll",
            "replica.segment.apply",
            "replica.bootstrap",
        } <= span_names
        # Every latency series carries streaming percentiles.
        for key, series in families.items():
            assert series["count"] >= 1, key
            assert {"p50", "p95", "p99"} <= set(series), key
            assert series["p50"] <= series["p95"] <= series["p99"], key

        # The fault harness's own counters landed in the same snapshot.
        ops = merged["primary"]["telemetry"]["metrics"]["faultinject_ops_total"]
        assert ops.get("kind=fsync", 0) > 0
        assert ops.get("kind=replace", 0) > 0

        # Replica lag includes the monotonic freshness gauge and the
        # clamped staleness, and the whole thing serialises.
        assert lag[0]["seq_delta"] == 0
        assert lag[0]["applied_age_s"] >= 0.0
        assert lag[0]["staleness_s"] >= 0.0
        json.dumps(merged)

        # And the trace is a loadable Chrome trace covering both rows.
        telemetry.write_chrome_trace(tmp_path / "trace.json")
        trace = json.loads((tmp_path / "trace.json").read_text())
        tids = {event["tid"] for event in trace["traceEvents"]}
        assert {"service", "replica-0"} <= tids
        names = {event["name"] for event in trace["traceEvents"]}
        assert "stream.ingest" in names and "replica.poll" in names


# ---------------------------------------------------------------------------
# Prometheus exposition correctness (escaping, HELP/TYPE pairing)
# ---------------------------------------------------------------------------
HOSTILE_LABELS = [
    'plain',
    'back\\slash',
    'quo"te',
    'new\nline',
    'all\\three" at\nonce',
]


def parse_prometheus(text: str) -> dict:
    """A deliberately strict parser for the exposition subset we emit.

    Returns {full_metric_name: {frozenset(label pairs): value}} and
    asserts the structural rules a real Prometheus scraper enforces:
    every sample belongs to a # TYPE'd (and # HELP'd) family, label
    values are correctly quoted/escaped, and HELP precedes TYPE.
    """
    samples: dict = {}
    helped: set[str] = set()
    typed: set[str] = set()
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            name = line.split(" ", 3)[2]
            assert name not in typed, f"HELP after TYPE for {name}"
            helped.add(name)
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert kind in ("counter", "gauge", "summary", "untyped"), line
            assert name in helped, f"TYPE without HELP for {name}"
            typed.add(name)
            continue
        assert not line.startswith("#"), f"unknown comment {line!r}"
        body, _, value = line.rpartition(" ")
        float(value)  # must parse
        if "{" in body:
            name, _, label_text = body.partition("{")
            assert label_text.endswith("}"), line
            labels = {}
            rest = label_text[:-1]
            while rest:
                key, _, rest = rest.partition('="')
                # Walk the quoted value, honouring backslash escapes.
                out, index = [], 0
                while index < len(rest):
                    char = rest[index]
                    if char == "\\":
                        escape = rest[index + 1]
                        assert escape in ('\\', '"', 'n'), f"bad escape in {line!r}"
                        out.append({"\\": "\\", '"': '"', "n": "\n"}[escape])
                        index += 2
                    elif char == '"':
                        break
                    else:
                        out.append(char)
                        index += 1
                else:
                    raise AssertionError(f"unterminated label value in {line!r}")
                labels[key] = "".join(out)
                rest = rest[index + 1 :].lstrip(",")
            key = frozenset(labels.items())
        else:
            name, key = body, frozenset()
        base = name
        for suffix in ("_count", "_sum"):
            if name.endswith(suffix):
                base = name[: -len(suffix)]
        assert base in typed, f"sample {name} outside any TYPE'd family"
        samples.setdefault(name, {})[key] = float(value)
    return samples


class TestExpositionCorrectness:
    def test_hostile_label_values_round_trip(self):
        registry = MetricsRegistry()
        family = registry.counter("ops_total", labels=("kind",), help="ops by kind")
        for index, hostile in enumerate(HOSTILE_LABELS):
            family.labels(kind=hostile).inc(index + 1)
        samples = parse_prometheus(registry.to_prometheus(prefix="repro"))
        decoded = {
            dict(key)["kind"]: value
            for key, value in samples["repro_ops_total"].items()
        }
        assert decoded == {
            hostile: float(index + 1)
            for index, hostile in enumerate(HOSTILE_LABELS)
        }

    def test_help_emitted_and_precedes_type_everywhere(self):
        registry = MetricsRegistry()
        registry.counter("events", help="ingested events").inc()
        registry.gauge("depth").set(3)  # no help given: default text
        registry.histogram("lat", labels=("op",), help="latency").labels(
            op="x"
        ).record(0.1)
        registry.child("oplog").counter("appends", help="appends").inc()
        text = registry.to_prometheus(prefix="repro")
        parse_prometheus(text)  # asserts HELP-before-TYPE and full pairing
        assert "# HELP repro_events ingested events" in text
        assert "# HELP repro_depth depth" in text
        assert "# HELP repro_oplog_appends appends" in text

    def test_help_text_newlines_escaped(self):
        registry = MetricsRegistry()
        registry.counter("odd", help="line one\nline two \\ slash").inc()
        text = registry.to_prometheus(prefix="repro")
        help_lines = [l for l in text.splitlines() if l.startswith("# HELP repro_odd")]
        assert help_lines == ["# HELP repro_odd line one\\nline two \\\\ slash"]

    def test_snapshot_flattener_emits_parseable_untyped(self):
        snapshot = {"applied_seq": 7, "shards": [{"objects": 2}, {"objects": 3}]}
        samples = parse_prometheus(snapshot_to_prometheus(snapshot, prefix="repro"))
        assert samples["repro_applied_seq"][frozenset()] == 7.0
        assert samples["repro_shards_objects"][frozenset({("index", "0")})] == 2.0

    def test_live_service_scrape_parses_strictly(self, tmp_path):
        factory, events = access_events()
        service = ClusteringService(
            factory,
            StreamConfig(
                n_shards=2,
                batch_max_ops=32,
                train_rounds=2,
                oplog_path=tmp_path / "oplog.jsonl",
                telemetry="on",
            ),
        )
        service.ingest(events[:120])
        service.flush()
        samples = parse_prometheus(service.telemetry.to_prometheus())
        assert samples["repro_span_seconds_count"], "span histograms missing"
        service.close()


# ---------------------------------------------------------------------------
# Bounded buffers account their drops (satellite: explicit drop counters)
# ---------------------------------------------------------------------------
class TestDropAccounting:
    def test_trace_ring_eviction_counts_into_obs_dropped_spans_total(self):
        telemetry = Telemetry(max_spans=4)
        for index in range(10):
            with telemetry.span(f"s{index}"):
                pass
        snap = telemetry.snapshot()
        assert snap["trace"]["spans_recorded"] == 10
        assert snap["trace"]["spans_dropped"] == 6
        assert snap["metrics"]["obs_dropped_spans_total"] == 6
        assert "repro_obs_dropped_spans_total 6" in telemetry.to_prometheus()

    def test_no_drops_below_capacity(self):
        telemetry = Telemetry(max_spans=16)
        for _ in range(16):
            with telemetry.span("s"):
                pass
        assert telemetry.snapshot()["metrics"]["obs_dropped_spans_total"] == 0

    def test_log_rate_limit_drops_counted_and_reported_in_band(self):
        import io

        from repro.obs import LogRateLimiter, StructuredLogger

        ticks = iter([i * 0.001 for i in range(1000)])  # effectively frozen clock
        telemetry = Telemetry()
        stream = io.StringIO()
        logger = StructuredLogger(
            "comp",
            stream,
            telemetry=telemetry,
            limiter=LogRateLimiter(rate=1.0, burst=3, clock=lambda: next(ticks)),
        )
        results = [logger.info("e", i=i) for i in range(10)]
        assert results.count(True) == 3 and results.count(False) == 7
        assert logger.lines_dropped == 7
        counters = telemetry.snapshot()["metrics"]["obs_dropped_logs_total"]
        assert counters == {"component=comp": 7}
        # The drop count surfaces in-band on the next emitted line.
        logger.error("after")  # error bypasses the limiter
        last = json.loads(stream.getvalue().splitlines()[-1])
        assert last["dropped_since_last"] == 7


# ---------------------------------------------------------------------------
# Structured logging
# ---------------------------------------------------------------------------
class TestStructuredLogging:
    def make_logger(self, **kwargs):
        import io

        from repro.obs import LogRateLimiter, StructuredLogger

        stream = io.StringIO()
        kwargs.setdefault("limiter", LogRateLimiter(rate=0))  # unlimited
        return StructuredLogger("stream.primary", stream, **kwargs), stream

    def test_one_json_object_per_line_with_schema(self):
        logger, stream = self.make_logger()
        logger.info("batch_applied", seq=42, shard=1)
        logger.warning("slow", elapsed=1.5)
        lines = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert len(lines) == 2
        assert lines[0]["event"] == "batch_applied"
        assert lines[0]["component"] == "stream.primary"
        assert lines[0]["level"] == "info"
        assert lines[0]["seq"] == 42 and lines[0]["shard"] == 1
        assert lines[0]["ts"] > 0 and lines[0]["elapsed_s"] >= 0
        assert lines[1]["level"] == "warning"

    def test_span_correlation_ids_attached_inside_spans_only(self):
        telemetry = Telemetry()
        logger, stream = self.make_logger(telemetry=telemetry)
        logger.info("outside")
        with telemetry.span("work"):
            logger.info("inside")
        outside, inside = [
            json.loads(line) for line in stream.getvalue().splitlines()
        ]
        assert "trace" not in outside and "span" not in outside
        assert inside["trace"] == telemetry.trace_id
        assert inside["span"] == "work"
        assert inside["span_id"] >= 1
        # The logged span_id matches the recorded span's id.
        assert inside["span_id"] in {s.span_id for s in telemetry.tracer.spans}

    def test_elapsed_uses_monotonic_domain(self):
        # A wall clock jumping backwards must not produce negative elapsed.
        wall = iter([1000.0, 900.0, 800.0])
        mono = iter([5.0, 6.0, 7.0])
        logger, stream = self.make_logger(
            clock=lambda: next(wall), mono=lambda: next(mono)
        )
        logger.info("a")
        logger.info("b")
        lines = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert [line["elapsed_s"] for line in lines] == [1.0, 2.0]

    def test_disabled_and_broken_streams_never_raise(self):
        from repro.obs import NULL_LOGGER, StructuredLogger

        assert NULL_LOGGER.info("anything", x=1) is False
        logger, stream = self.make_logger()
        stream.close()
        assert logger.info("onto closed stream") is False
        assert logger.lines_dropped == 1

    def test_non_json_fields_are_stringified(self):
        logger, stream = self.make_logger()
        logger.info("odd", path=__import__("pathlib").Path("/tmp/x"), ok=[1, 2])
        line = json.loads(stream.getvalue())
        assert line["path"] == "/tmp/x"
        assert line["ok"] == [1, 2]

    def test_child_shares_stream_and_limiter(self):
        from repro.obs import LogRateLimiter

        logger, stream = self.make_logger(limiter=LogRateLimiter(rate=1.0, burst=2, clock=lambda: 0.0))
        child = logger.child("stream.replica-0")
        assert logger.info("a") and child.info("b")
        assert child.info("c") is False  # shared bucket exhausted
        components = [
            json.loads(line)["component"] for line in stream.getvalue().splitlines()
        ]
        assert components == ["stream.primary", "stream.replica-0"]

    def test_service_emits_logs_when_configured(self, tmp_path):
        import io

        stream = io.StringIO()
        factory, events = access_events()
        service = ClusteringService(
            factory,
            StreamConfig(
                n_shards=2,
                batch_max_ops=32,
                train_rounds=2,
                oplog_path=tmp_path / "oplog.jsonl",
                checkpoint_dir=tmp_path / "ckpt",
                log_stream=stream,
            ),
        )
        service.ingest(events[:80])
        service.checkpoint()
        service.close()
        events = [json.loads(line)["event"] for line in stream.getvalue().splitlines()]
        assert events[0] == "service_started"
        assert "checkpoint_saved" in events
        assert events[-1] == "service_closing"
        components = {
            json.loads(line)["component"] for line in stream.getvalue().splitlines()
        }
        assert components == {"stream.primary"}
