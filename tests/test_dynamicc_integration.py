"""Integration tests: the full DynamicC life cycle on small workloads."""

import numpy as np
import pytest

from repro.clustering.baselines import GreedyIncremental, NaiveIncremental
from repro.clustering.batch import DBSCAN, HillClimbing
from repro.clustering.objectives import CorrelationObjective, DBIndexObjective
from repro.core import DynamicC, DynamicCConfig, make_dynamic_dbscan
from repro.data.generators import generate_access, generate_cora
from repro.data.workload import OperationMix, build_workload
from repro.eval import pair_metrics
from repro.eval.harness import (
    f1_against_reference,
    run_batch_per_round,
    run_incremental,
)


@pytest.fixture(scope="module")
def cora_workload():
    dataset = generate_cora(n_entities=40, n_duplicates=140, seed=21)
    workload = build_workload(
        dataset,
        initial_count=70,
        n_snapshots=6,
        mixes=OperationMix(add=0.2, remove=0.03, update=0.03),
        seed=5,
    )
    return dataset, workload


@pytest.fixture(scope="module")
def cora_reference(cora_workload):
    _, workload = cora_workload
    return run_batch_per_round(workload, lambda: HillClimbing(DBIndexObjective()))


class TestDynamicCLifecycle:
    def test_untrained_apply_round_raises(self, paper_graph):
        dyn = DynamicC(paper_graph, CorrelationObjective())
        with pytest.raises(RuntimeError):
            dyn.apply_round(added={100: "x"})

    def test_observe_then_train_then_predict(self, cora_workload):
        dataset, workload = cora_workload
        graph = dataset.graph()
        for obj_id, payload in workload.initial.items():
            graph.add_object(obj_id, payload)
        objective = DBIndexObjective()
        dyn = DynamicC(graph, objective, seed=1)
        dyn.bootstrap(HillClimbing(DBIndexObjective()).cluster(graph))

        for snapshot in workload.snapshots[:3]:
            _, stats = dyn.observe_round(
                added=snapshot.added,
                removed=snapshot.removed,
                updated=snapshot.updated,
            )
            assert stats.samples["merge_positive"] >= 0
        report = dyn.train()
        assert report.merge_samples > 0
        # The θ rule guarantees ~100% *nomination* recall regardless of the
        # 0.5-threshold recall reported here.
        assert 0.0 < report.merge_theta <= 1.0

        before = objective.score(dyn.clustering)
        snapshot = workload.snapshots[3]
        dyn.apply_round(
            added=snapshot.added, removed=snapshot.removed, updated=snapshot.updated
        )
        dyn.clustering.check_invariants()
        stats = dyn.last_round_stats
        assert stats.iterations >= 1

    def test_convergence_within_iteration_cap(self, cora_workload):
        dataset, workload = cora_workload
        run = run_incremental(
            workload,
            lambda g: DynamicC(g, DBIndexObjective(), config=DynamicCConfig(), seed=2),
            bootstrap=lambda g: HillClimbing(DBIndexObjective()).cluster(g),
            train_rounds=3,
        )
        for record in run.predict_rounds():
            assert record.extra["verifications"] >= 0

    def test_quality_close_to_batch(self, cora_workload, cora_reference):
        _, workload = cora_workload
        run = run_incremental(
            workload,
            lambda g: DynamicC(g, DBIndexObjective(), seed=3),
            bootstrap=lambda g: HillClimbing(DBIndexObjective()).cluster(g),
            train_rounds=3,
        )
        metrics = f1_against_reference(run, cora_reference)
        assert np.mean([m.f1 for m in metrics]) > 0.8

    def test_beats_naive_quality(self, cora_workload, cora_reference):
        _, workload = cora_workload
        dyn = run_incremental(
            workload,
            lambda g: DynamicC(g, DBIndexObjective(), seed=3),
            bootstrap=lambda g: HillClimbing(DBIndexObjective()).cluster(g),
            train_rounds=3,
        )
        naive = run_incremental(
            workload,
            lambda g: NaiveIncremental(g, threshold=0.4),
            bootstrap=lambda g: HillClimbing(DBIndexObjective()).cluster(g),
        )
        dyn_f1 = np.mean([m.f1 for m in f1_against_reference(dyn, cora_reference)])
        naive_f1 = np.mean(
            [m.f1 for m in f1_against_reference(naive, cora_reference)[3:]]
        )
        assert dyn_f1 > naive_f1

    def test_faster_than_batch(self, cora_workload, cora_reference):
        _, workload = cora_workload
        run = run_incremental(
            workload,
            lambda g: DynamicC(g, DBIndexObjective(), seed=3),
            bootstrap=lambda g: HillClimbing(DBIndexObjective()).cluster(g),
            train_rounds=3,
        )
        batch_latency = sum(r.latency for r in cora_reference.rounds[4:])
        assert run.total_latency() < batch_latency

    def test_retraining_hook(self, cora_workload):
        _, workload = cora_workload
        config = DynamicCConfig(retrain_every=1)
        run = run_incremental(
            workload,
            lambda g: DynamicC(g, DBIndexObjective(), config=config, seed=4),
            bootstrap=lambda g: HillClimbing(DBIndexObjective()).cluster(g),
            train_rounds=3,
        )
        assert len(run.predict_rounds()) == 3


class TestBaselines:
    def test_naive_merge_only(self, paper_graph):
        naive = NaiveIncremental(paper_graph, threshold=0.5)
        # Remove the extra objects so we start from the old clustering.
        naive.bootstrap(
            __import__("repro.clustering", fromlist=["Clustering"]).Clustering.singletons(
                paper_graph
            )
        )
        naive.apply_round(added={})
        assert naive.clustering.num_objects() == 7

    def test_naive_assigns_new_to_closest(self, tiny_cora):
        graph = tiny_cora.graph()
        records = tiny_cora.records
        for record in records[:40]:
            graph.add_object(record.id, record.payload)
        naive = NaiveIncremental(graph, threshold=0.3)
        from repro.clustering import Clustering

        naive.bootstrap(Clustering.singletons(graph))
        naive.apply_round()  # settle pending
        added = {r.id: r.payload for r in records[40:45]}
        naive.apply_round(added=added)
        naive.clustering.check_invariants()
        assert naive.clustering.num_objects() == 45

    def test_greedy_improves_objective(self, tiny_cora):
        graph = tiny_cora.graph()
        for record in tiny_cora.records[:50]:
            graph.add_object(record.id, record.payload)
        objective = DBIndexObjective()
        greedy = GreedyIncremental(graph, objective)
        from repro.clustering import Clustering

        greedy.bootstrap(Clustering.singletons(graph))
        added = {r.id: r.payload for r in tiny_cora.records[50:60]}
        greedy.apply_round(added=added)
        greedy.clustering.check_invariants()
        # Greedy restructures: the result should not be all singletons.
        assert greedy.clustering.num_clusters() < greedy.clustering.num_objects()


class TestDynamicDBSCAN:
    def test_tracks_batch_dbscan(self):
        dataset = generate_access(n_profiles=8, n_records=400, seed=13)
        workload = build_workload(
            dataset,
            initial_count=150,
            n_snapshots=5,
            mixes=OperationMix(add=0.15, remove=0.02, update=0.02),
            seed=3,
        )
        sim_eps, min_pts = 0.4, 4
        from repro.core import DBSCANBatchAdapter

        reference = run_batch_per_round(
            workload, lambda: DBSCANBatchAdapter(sim_eps, min_pts)
        )
        run = run_incremental(
            workload,
            lambda g: make_dynamic_dbscan(
                g, sim_eps, min_pts, config=DynamicCConfig(candidate_scope="local")
            ),
            bootstrap=lambda g: DBSCAN(sim_eps, min_pts).run(g).clustering,
            train_rounds=2,
        )
        metrics = f1_against_reference(run, reference)
        assert np.mean([m.f1 for m in metrics]) > 0.85
