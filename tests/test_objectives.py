"""Unit tests for the three objective functions, anchored on the paper's
own arithmetic (Example 4.1) and on brute-force delta checks."""

import numpy as np
import pytest

from repro.clustering.objectives import (
    CorrelationObjective,
    DBIndexObjective,
    KMeansObjective,
)
from repro.clustering.state import Clustering
from repro.similarity import EuclideanSimilarity, SimilarityGraph

from paper_example import PAPER_FINAL_CLUSTERING, PAPER_IDS


class TestCorrelationObjective:
    def test_example_4_1_singletons(self, paper_singletons):
        # F(L1) = 0.9·3 + 0.8 + 0.7 + 1 = 5.2
        assert CorrelationObjective().score(paper_singletons) == pytest.approx(5.2)

    def test_example_4_1_after_first_merge(self, paper_singletons):
        # Merging r1 and r7 yields F(L2) = 4.2 (Example 4.1).
        c = paper_singletons
        c.merge(c.cluster_of(PAPER_IDS["r1"]), c.cluster_of(PAPER_IDS["r7"]))
        assert CorrelationObjective().score(c) == pytest.approx(4.2)

    def test_delta_merge_matches_score_difference(self, paper_singletons):
        obj = CorrelationObjective()
        c = paper_singletons
        a = c.cluster_of(PAPER_IDS["r1"])
        b = c.cluster_of(PAPER_IDS["r7"])
        delta = obj.delta_merge(c, a, b)
        before = obj.score(c)
        c.merge(a, b)
        assert before + delta == pytest.approx(obj.score(c))

    def test_delta_split_inverse_of_merge(self, paper_graph):
        obj = CorrelationObjective()
        c = Clustering.from_groups(
            paper_graph, [[PAPER_IDS["r4"], PAPER_IDS["r5"], PAPER_IDS["r6"]]]
        )
        cid = next(iter(c.cluster_ids()))
        delta_split = obj.delta_split(c, cid, {PAPER_IDS["r6"]})
        rest, part = c.split(cid, {PAPER_IDS["r6"]})
        delta_merge = obj.delta_merge(c, rest, part)
        assert delta_split == pytest.approx(-delta_merge)

    def test_delta_move_matches_brute_force(self, paper_old_clustering):
        obj = CorrelationObjective()
        c = paper_old_clustering
        target = c.cluster_of(PAPER_IDS["r4"])
        fast = obj.delta_move(c, PAPER_IDS["r1"], target)
        trial = c.copy()
        before = obj.score(trial)
        trial.move(PAPER_IDS["r1"], target)
        assert fast == pytest.approx(obj.score(trial) - before)

    def test_group_delta_matches_sequential(self, paper_singletons):
        obj = CorrelationObjective()
        c = paper_singletons
        group = [
            c.cluster_of(PAPER_IDS["r4"]),
            c.cluster_of(PAPER_IDS["r5"]),
            c.cluster_of(PAPER_IDS["r6"]),
        ]
        fast = obj.delta_merge_group(c, group)
        trial = c.copy()
        before = obj.score(trial)
        current = group[0]
        for cid in group[1:]:
            current = trial.merge(current, cid)
        assert fast == pytest.approx(obj.score(trial) - before)

    def test_paper_final_clustering_beats_singletons(self, paper_graph):
        obj = CorrelationObjective()
        singletons = Clustering.singletons(paper_graph)
        final = Clustering.from_groups(paper_graph, PAPER_FINAL_CLUSTERING)
        assert obj.score(final) < obj.score(singletons)


class TestDBIndexObjective:
    def _graph_and_clustering(self, paper_graph):
        return paper_graph, Clustering.from_groups(
            paper_graph, PAPER_FINAL_CLUSTERING
        )

    def test_score_nonnegative(self, paper_graph):
        _, c = self._graph_and_clustering(paper_graph)
        assert DBIndexObjective().score(c) >= 0.0

    def test_db_mean_is_score_over_k(self, paper_graph):
        _, c = self._graph_and_clustering(paper_graph)
        obj = DBIndexObjective()
        assert obj.db_mean(c) == pytest.approx(obj.score(c) / c.num_clusters())

    def test_delta_merge_exact(self, paper_graph):
        obj = DBIndexObjective()
        c = Clustering.singletons(paper_graph)
        a = c.cluster_of(PAPER_IDS["r4"])
        b = c.cluster_of(PAPER_IDS["r5"])
        fast = obj.delta_merge(c, a, b)
        trial = c.copy()
        trial.merge(a, b)
        slow = DBIndexObjective().score(trial) - DBIndexObjective().score(c)
        assert fast == pytest.approx(slow)

    def test_delta_split_exact(self, paper_graph):
        obj = DBIndexObjective()
        c = Clustering.from_groups(paper_graph, PAPER_FINAL_CLUSTERING)
        cid = c.cluster_of(PAPER_IDS["r4"])
        fast = obj.delta_split(c, cid, {PAPER_IDS["r6"]})
        trial = c.copy()
        trial.split(cid, {PAPER_IDS["r6"]})
        slow = DBIndexObjective().score(trial) - DBIndexObjective().score(c)
        assert fast == pytest.approx(slow)

    def test_delta_move_exact(self, paper_old_clustering):
        obj = DBIndexObjective()
        c = paper_old_clustering
        target = c.cluster_of(PAPER_IDS["r4"])
        fast = obj.delta_move(c, PAPER_IDS["r3"], target)
        trial = c.copy()
        trial.move(PAPER_IDS["r3"], target)
        slow = DBIndexObjective().score(trial) - DBIndexObjective().score(c)
        assert fast == pytest.approx(slow)

    def test_group_delta_exact(self, paper_graph):
        obj = DBIndexObjective()
        c = Clustering.singletons(paper_graph)
        group = [
            c.cluster_of(PAPER_IDS["r4"]),
            c.cluster_of(PAPER_IDS["r5"]),
            c.cluster_of(PAPER_IDS["r6"]),
        ]
        fast = obj.delta_merge_group(c, group)
        trial = c.copy()
        current = group[0]
        for cid in group[1:]:
            current = trial.merge(current, cid)
        slow = DBIndexObjective().score(trial) - DBIndexObjective().score(c)
        assert fast == pytest.approx(slow)

    def test_cache_consistent_after_gateway_mutations(self, paper_graph):
        obj = DBIndexObjective()
        c = Clustering.singletons(paper_graph)
        obj.apply_merge(c, c.cluster_of(PAPER_IDS["r4"]), c.cluster_of(PAPER_IDS["r5"]))
        obj.apply_merge(c, c.cluster_of(PAPER_IDS["r4"]), c.cluster_of(PAPER_IDS["r6"]))
        obj.apply_split(c, c.cluster_of(PAPER_IDS["r4"]), {PAPER_IDS["r6"]})
        assert obj.score(c) == pytest.approx(DBIndexObjective().score(c))

    def test_base_scatter_must_be_positive(self):
        with pytest.raises(ValueError):
            DBIndexObjective(base_scatter=0.0)

    def test_good_clustering_beats_singletons(self, paper_graph):
        obj = DBIndexObjective()
        singles = Clustering.singletons(paper_graph)
        final = Clustering.from_groups(paper_graph, PAPER_FINAL_CLUSTERING)
        assert DBIndexObjective().score(final) < obj.score(singles)


def _vector_graph():
    """Six 2-D points in two tight groups."""
    points = {
        1: np.array([0.0, 0.0]),
        2: np.array([0.1, 0.0]),
        3: np.array([0.0, 0.1]),
        4: np.array([5.0, 5.0]),
        5: np.array([5.1, 5.0]),
        6: np.array([5.0, 5.1]),
    }
    graph = SimilarityGraph(EuclideanSimilarity(scale=1.0), store_threshold=0.01)
    for obj_id, point in points.items():
        graph.add_object(obj_id, point)
    return graph, points


class TestKMeansObjective:
    def test_perfect_partition_scores_low(self):
        graph, _ = _vector_graph()
        obj = KMeansObjective(k=2, penalty=100.0)
        good = Clustering.from_groups(graph, [[1, 2, 3], [4, 5, 6]])
        bad = Clustering.from_groups(graph, [[1, 2, 4], [3, 5, 6]])
        assert obj.score(good) < obj.score(bad)

    def test_penalty_applies_off_k(self):
        graph, _ = _vector_graph()
        obj = KMeansObjective(k=2, penalty=100.0)
        three = Clustering.from_groups(graph, [[1, 2, 3], [4, 5], [6]])
        two = Clustering.from_groups(graph, [[1, 2, 3], [4, 5, 6]])
        assert obj.score(three) > obj.score(two) + 99.0

    def test_delta_merge_matches_brute_force(self):
        graph, _ = _vector_graph()
        obj = KMeansObjective(k=2, penalty=100.0)
        c = Clustering.from_groups(graph, [[1, 2], [3], [4, 5, 6]])
        a = c.cluster_of(1)
        b = c.cluster_of(3)
        fast = obj.delta_merge(c, a, b)
        trial = c.copy()
        before = obj.score(trial)
        trial.merge(a, b)
        assert fast == pytest.approx(obj.score(trial) - before)

    def test_delta_split_matches_brute_force(self):
        graph, _ = _vector_graph()
        obj = KMeansObjective(k=3, penalty=100.0)
        c = Clustering.from_groups(graph, [[1, 2, 3], [4, 5, 6]])
        cid = c.cluster_of(1)
        fast = obj.delta_split(c, cid, {3})
        trial = c.copy()
        before = obj.score(trial)
        trial.split(cid, {3})
        assert fast == pytest.approx(obj.score(trial) - before)

    def test_delta_move_matches_brute_force(self):
        graph, _ = _vector_graph()
        obj = KMeansObjective(k=2, penalty=100.0)
        c = Clustering.from_groups(graph, [[1, 2, 4], [3, 5, 6]])
        fast = obj.delta_move(c, 4, c.cluster_of(5))
        trial = c.copy()
        before = obj.score(trial)
        trial.move(4, c.cluster_of(5))
        assert fast == pytest.approx(obj.score(trial) - before)

    def test_group_delta_matches_brute_force(self):
        graph, _ = _vector_graph()
        obj = KMeansObjective(k=1, penalty=10.0)
        c = Clustering.from_groups(graph, [[1, 2], [3], [4, 5, 6]])
        group = list(c.cluster_ids())
        fast = obj.delta_merge_group(c, group)
        trial = c.copy()
        before = obj.score(trial)
        current = group[0]
        for cid in group[1:]:
            current = trial.merge(current, cid)
        assert fast == pytest.approx(obj.score(trial) - before)

    def test_refinement_moves_propose_nearest_centroid(self):
        graph, _ = _vector_graph()
        obj = KMeansObjective(k=2, penalty=100.0)
        c = Clustering.from_groups(graph, [[1, 2, 4], [3, 5, 6]])
        proposals = obj.refinement_moves(c)
        # Point 4 sits with the origin group but belongs to the far group;
        # point 3 vice versa.
        moved = {obj_id for obj_id, _ in proposals}
        assert 4 in moved and 3 in moved

    def test_merge_candidates_above_k(self):
        graph, _ = _vector_graph()
        obj = KMeansObjective(k=1, penalty=100.0)
        c = Clustering.from_groups(graph, [[1, 2, 3], [4, 5, 6]])
        cid = c.cluster_of(1)
        candidates = obj.merge_candidates(c, cid)
        assert candidates == [c.cluster_of(4)]

    def test_merge_candidates_none_at_k(self):
        graph, _ = _vector_graph()
        obj = KMeansObjective(k=2, penalty=100.0)
        c = Clustering.from_groups(graph, [[1, 2, 3], [4, 5, 6]])
        assert obj.merge_candidates(c, c.cluster_of(1)) is None

    def test_sse_identity(self):
        graph, points = _vector_graph()
        obj = KMeansObjective(k=2)
        c = Clustering.from_groups(graph, [[1, 2, 3], [4, 5, 6]])
        stack = np.array([points[i] for i in (1, 2, 3)])
        expected = float(np.sum((stack - stack.mean(axis=0)) ** 2)) * 2
        assert obj.sse(c) == pytest.approx(expected)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KMeansObjective(k=0)
