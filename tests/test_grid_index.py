"""Unit tests for the uniform grid index."""

import numpy as np
import pytest

from repro.similarity.grid_index import GridIndex


class TestGridIndex:
    def test_nearby_points_are_candidates(self):
        grid = GridIndex(cell_size=1.0)
        grid.add(1, [0.5, 0.5])
        grid.add(2, [0.8, 0.6])
        grid.add(3, [5.0, 5.0])
        assert grid.candidates([0.6, 0.6]) == {1, 2}

    def test_adjacent_cell_candidates(self):
        grid = GridIndex(cell_size=1.0)
        grid.add(1, [0.95, 0.5])
        assert 1 in grid.candidates([1.05, 0.5])  # neighbouring cell

    def test_within_radius_exact(self):
        grid = GridIndex(cell_size=1.0)
        grid.add(1, [0.0, 0.0])
        grid.add(2, [0.9, 0.0])
        grid.add(3, [0.0, 0.95])
        assert sorted(grid.within_radius([0.0, 0.0], 0.92)) == [1, 2]

    def test_large_radius_query(self):
        grid = GridIndex(cell_size=1.0)
        for i in range(10):
            grid.add(i, [float(i), 0.0])
        hits = grid.within_radius([0.0, 0.0], 3.5)
        assert sorted(hits) == [0, 1, 2, 3]

    def test_remove(self):
        grid = GridIndex(cell_size=1.0)
        grid.add(1, [0.5, 0.5])
        grid.remove(1)
        assert grid.candidates([0.5, 0.5]) == set()
        assert len(grid) == 0

    def test_remove_missing_is_noop(self):
        grid = GridIndex(cell_size=1.0)
        grid.remove(42)  # should not raise

    def test_contains(self):
        grid = GridIndex(cell_size=1.0)
        grid.add(7, [1.0, 1.0])
        assert 7 in grid
        assert 8 not in grid

    def test_negative_coordinates(self):
        grid = GridIndex(cell_size=1.0)
        grid.add(1, [-0.5, -0.5])
        grid.add(2, [-0.6, -0.4])
        assert grid.candidates([-0.5, -0.5]) == {1, 2}

    def test_projected_dims(self):
        # Cells on the first 2 coordinates only; distance filter uses all 4.
        grid = GridIndex(cell_size=1.0, dims=2)
        grid.add(1, [0.5, 0.5, 100.0, 100.0])
        grid.add(2, [0.5, 0.5, 0.0, 0.0])
        assert grid.candidates([0.5, 0.5, 0.0, 0.0]) == {1, 2}
        assert grid.within_radius([0.5, 0.5, 0.0, 0.0], 1.0) == [2]

    def test_invalid_cell_size(self):
        with pytest.raises(ValueError):
            GridIndex(cell_size=0.0)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            GridIndex(cell_size=1.0, dims=0)
