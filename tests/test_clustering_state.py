"""Unit tests for the Clustering state structure and its invariants."""

import pytest

from repro.clustering.state import Clustering

from paper_example import PAPER_FINAL_CLUSTERING, PAPER_IDS


class TestConstruction:
    def test_singletons(self, paper_graph):
        clustering = Clustering.singletons(paper_graph)
        assert clustering.num_clusters() == 7
        assert clustering.num_objects() == 7
        clustering.check_invariants()

    def test_from_groups(self, paper_graph):
        clustering = Clustering.from_groups(
            paper_graph, [sorted(group) for group in PAPER_FINAL_CLUSTERING]
        )
        assert clustering.as_partition() == PAPER_FINAL_CLUSTERING
        clustering.check_invariants()

    def test_from_labels(self, paper_graph):
        labels = {PAPER_IDS["r1"]: 0, PAPER_IDS["r7"]: 0, PAPER_IDS["r2"]: 1}
        clustering = Clustering.from_labels(paper_graph, labels)
        assert clustering.num_clusters() == 2
        assert clustering.cluster_of(PAPER_IDS["r1"]) == clustering.cluster_of(
            PAPER_IDS["r7"]
        )

    def test_copy_is_independent(self, paper_singletons):
        dup = paper_singletons.copy()
        cid_a = dup.cluster_of(PAPER_IDS["r1"])
        cid_b = dup.cluster_of(PAPER_IDS["r2"])
        dup.merge(cid_a, cid_b)
        assert paper_singletons.num_clusters() == 7
        assert dup.num_clusters() == 6

    def test_double_add_rejected(self, paper_singletons):
        with pytest.raises(KeyError):
            paper_singletons.add_singleton(PAPER_IDS["r1"])


class TestMergeSplit:
    def test_merge_updates_intra(self, paper_singletons):
        c = paper_singletons
        cid = c.merge(c.cluster_of(PAPER_IDS["r1"]), c.cluster_of(PAPER_IDS["r7"]))
        assert c.intra_weight(cid) == pytest.approx(1.0)
        assert c.size(cid) == 2
        c.check_invariants()

    def test_merge_mints_fresh_id(self, paper_singletons):
        c = paper_singletons
        a = c.cluster_of(PAPER_IDS["r1"])
        b = c.cluster_of(PAPER_IDS["r2"])
        new = c.merge(a, b)
        assert new not in (a, b)
        assert not c.contains_cluster(a)
        assert not c.contains_cluster(b)

    def test_merge_self_rejected(self, paper_singletons):
        cid = paper_singletons.cluster_of(PAPER_IDS["r1"])
        with pytest.raises(ValueError):
            paper_singletons.merge(cid, cid)

    def test_split_reverses_merge(self, paper_singletons):
        c = paper_singletons
        cid = c.merge(c.cluster_of(PAPER_IDS["r4"]), c.cluster_of(PAPER_IDS["r5"]))
        cid = c.merge(cid, c.cluster_of(PAPER_IDS["r6"]))
        rest, part = c.split(cid, {PAPER_IDS["r6"]})
        assert c.members(part) == frozenset({PAPER_IDS["r6"]})
        assert c.members(rest) == frozenset({PAPER_IDS["r4"], PAPER_IDS["r5"]})
        assert c.intra_weight(rest) == pytest.approx(0.9)
        c.check_invariants()

    def test_split_requires_proper_subset(self, paper_singletons):
        c = paper_singletons
        cid = c.merge(c.cluster_of(PAPER_IDS["r4"]), c.cluster_of(PAPER_IDS["r5"]))
        with pytest.raises(ValueError):
            c.split(cid, {PAPER_IDS["r4"], PAPER_IDS["r5"]})
        with pytest.raises(ValueError):
            c.split(cid, set())

    def test_average_intra_similarity_singleton_is_one(self, paper_singletons):
        cid = paper_singletons.cluster_of(PAPER_IDS["r1"])
        assert paper_singletons.average_intra_similarity(cid) == 1.0

    def test_average_intra_similarity(self, paper_graph):
        c = Clustering.from_groups(
            paper_graph,
            [[PAPER_IDS["r4"], PAPER_IDS["r5"], PAPER_IDS["r6"]]],
        )
        cid = next(iter(c.cluster_ids()))
        assert c.average_intra_similarity(cid) == pytest.approx((0.9 + 0.8 + 0.7) / 3)


class TestMoveAndRemove:
    def test_move(self, paper_old_clustering):
        c = paper_old_clustering
        source = c.cluster_of(PAPER_IDS["r1"])
        target = c.cluster_of(PAPER_IDS["r4"])
        c.move(PAPER_IDS["r1"], target)
        assert c.cluster_of(PAPER_IDS["r1"]) == target
        assert c.size(source) == 2
        c.check_invariants()

    def test_move_last_member_dissolves_source(self, paper_singletons):
        c = paper_singletons
        source = c.cluster_of(PAPER_IDS["r1"])
        target = c.cluster_of(PAPER_IDS["r2"])
        c.move(PAPER_IDS["r1"], target)
        assert not c.contains_cluster(source)
        c.check_invariants()

    def test_move_to_same_cluster_is_noop(self, paper_singletons):
        c = paper_singletons
        cid = c.cluster_of(PAPER_IDS["r1"])
        assert c.move(PAPER_IDS["r1"], cid) == cid

    def test_remove_object(self, paper_old_clustering):
        c = paper_old_clustering
        cid = c.cluster_of(PAPER_IDS["r2"])
        before = c.intra_weight(cid)
        c.remove_object(PAPER_IDS["r2"])
        assert PAPER_IDS["r2"] not in c
        # r2 carried the r1-r2 (0.9) and r2-r3 (0.9) intra edges.
        assert c.intra_weight(c.cluster_of(PAPER_IDS["r1"])) == pytest.approx(
            before - 1.8
        )
        c.check_invariants()

    def test_remove_last_member_drops_cluster(self, paper_singletons):
        c = paper_singletons
        assert c.remove_object(PAPER_IDS["r1"]) is None
        assert c.num_clusters() == 6


class TestCrossClusterReads:
    def test_cross_weight(self, paper_old_clustering):
        c = paper_old_clustering
        c1 = c.cluster_of(PAPER_IDS["r1"])
        c2 = c.cluster_of(PAPER_IDS["r4"])
        assert c.cross_weight(c1, c2) == 0.0

    def test_neighbor_clusters(self, paper_graph):
        c = Clustering.from_groups(
            paper_graph,
            [
                [PAPER_IDS["r1"], PAPER_IDS["r2"]],
                [PAPER_IDS["r3"]],
                [PAPER_IDS["r7"]],
            ],
        )
        cid = c.cluster_of(PAPER_IDS["r1"])
        nbrs = c.neighbor_clusters(cid)
        assert nbrs == {
            c.cluster_of(PAPER_IDS["r3"]): pytest.approx(0.9),
            c.cluster_of(PAPER_IDS["r7"]): pytest.approx(1.0),
        }

    def test_average_cross_similarity(self, paper_graph):
        c = Clustering.from_groups(
            paper_graph,
            [[PAPER_IDS["r4"], PAPER_IDS["r5"]], [PAPER_IDS["r6"]]],
        )
        a = c.cluster_of(PAPER_IDS["r4"])
        b = c.cluster_of(PAPER_IDS["r6"])
        assert c.average_cross_similarity(a, b) == pytest.approx((0.8 + 0.7) / 2)

    def test_labels_roundtrip(self, paper_old_clustering):
        labels = paper_old_clustering.labels()
        rebuilt = Clustering.from_labels(paper_old_clustering.graph, labels)
        assert rebuilt.as_partition() == paper_old_clustering.as_partition()
