"""Tests for `repro.replica`: segments, transports, shipping, replicas,
and the primary/replica façade — including the acceptance invariants:
a replica fed only shipped segments + checkpoints reproduces the
primary's exact partition, and a promoted follower's subsequent ingest
matches an uninterrupted run."""

from __future__ import annotations

import pytest

from repro.clustering.objectives import DBIndexObjective
from repro.core import DynamicC
from repro.data.generators import generate_access
from repro.data.workload import OperationMix, build_workload
from repro.replica import (
    InProcessTransport,
    LogSegment,
    LogShipper,
    MailboxTransport,
    ReadReplica,
    ReplicatedClusteringService,
    ReplicationGap,
)
from repro.stream import ClusteringService, StreamConfig, add
from repro.stream.oplog import open_log


@pytest.fixture(scope="module")
def dataset():
    return generate_access(n_profiles=6, n_records=240, seed=3)


@pytest.fixture(scope="module")
def events(dataset):
    workload = build_workload(
        dataset,
        initial_count=80,
        n_snapshots=5,
        mixes=OperationMix(add=0.12, remove=0.03, update=0.03),
        seed=2,
    )
    return workload.event_stream()


def make_factory(dataset):
    def factory():
        return DynamicC(dataset.graph(), DBIndexObjective(), seed=0)

    return factory


def durable_config(root, **overrides) -> StreamConfig:
    settings = dict(
        n_shards=2,
        batch_max_ops=32,
        train_rounds=2,
        oplog_path=root / "oplog",
        checkpoint_dir=root / "checkpoints",
    )
    settings.update(overrides)
    return StreamConfig(**settings)


def stamped_ops(n, start_seq=1):
    return tuple(
        add(1000 + i, f"p{i}").with_seq(start_seq + i) for i in range(n)
    )


class TestSegments:
    def test_contiguity_enforced(self):
        ops = stamped_ops(4, start_seq=7)
        segment = LogSegment(7, 10, ops, primary_seq=10, shipped_at=1.0)
        assert len(segment) == 4 and not segment.is_heartbeat
        with pytest.raises(ValueError, match="contiguous"):
            LogSegment(7, 10, ops[:2] + ops[3:], primary_seq=10, shipped_at=1.0)
        with pytest.raises(ValueError, match="disagree"):
            LogSegment(7, 11, ops, primary_seq=11, shipped_at=1.0)
        with pytest.raises(ValueError, match="empty segment"):
            LogSegment(7, 9, (), primary_seq=9, shipped_at=1.0)

    def test_heartbeat_and_roundtrip(self):
        beat = LogSegment.heartbeat(after_seq=12, primary_seq=12, shipped_at=3.5)
        assert beat.is_heartbeat and len(beat) == 0
        segment = LogSegment(3, 6, stamped_ops(4, 3), primary_seq=9, shipped_at=2.25)
        assert LogSegment.from_dict(segment.to_dict()) == segment
        assert LogSegment.from_dict(beat.to_dict()) == beat


class TestShipperAndTransports:
    def test_ship_chunks_and_cursors(self, tmp_path):
        log = open_log(tmp_path / "oplog.jsonl")
        log.append([add(i, f"p{i}") for i in range(25)])
        transport = InProcessTransport()
        shipper = LogShipper(log, max_segment_ops=10)
        shipper.attach(transport, from_seq=0)
        assert shipper.ship() == 3  # 10 + 10 + 5
        segments = transport.poll()
        assert [(s.first_seq, s.last_seq) for s in segments] == [
            (1, 10),
            (11, 20),
            (21, 25),
        ]
        assert all(s.primary_seq == 25 for s in segments)
        # Nothing new: silent unless a heartbeat is requested.
        assert shipper.ship() == 0
        assert shipper.ship(heartbeat=True) == 1
        (beat,) = transport.poll()
        assert beat.is_heartbeat and beat.primary_seq == 25
        assert shipper.stats()[0]["ops_shipped"] == 25
        log.close()

    def test_shipper_refuses_compacted_gap(self, tmp_path):
        log = open_log(tmp_path / "oplog.jsonl")
        log.append([add(i, f"p{i}") for i in range(20)])
        log.compact(upto_seq=10)
        shipper = LogShipper(log)
        late = InProcessTransport()
        shipper.attach(late, from_seq=5)  # wants ops the log no longer has
        with pytest.raises(ReplicationGap, match="compacted past follower"):
            shipper.ship()
        log.close()

    def test_mailbox_roundtrip_and_ordering(self, tmp_path):
        mailbox = MailboxTransport(tmp_path / "mail")
        first = LogSegment(1, 3, stamped_ops(3, 1), primary_seq=6, shipped_at=1.0)
        second = LogSegment(4, 6, stamped_ops(3, 4), primary_seq=6, shipped_at=1.0)
        mailbox.publish(second)
        mailbox.publish(first)
        # A half-written publish (no rename yet) is invisible to poll.
        (tmp_path / "mail" / "segment-zzz.json.tmp").write_text('{"partial')
        received = MailboxTransport(tmp_path / "mail").poll()
        assert received == [first, second]  # sorted by seq range, consumed
        assert mailbox.poll() == []


class TestReplication:
    @pytest.mark.parametrize("backend", ("jsonl", "sqlite"))
    def test_replica_reproduces_exact_partition(
        self, dataset, events, tmp_path, backend
    ):
        """Acceptance: shipped segments + checkpoints → frozenset-equal
        partitions, for both storage backends."""
        factory = make_factory(dataset)
        checkpoint_backend = "json" if backend == "jsonl" else "sqlite"
        config = durable_config(
            tmp_path / "primary",
            log_backend=backend,
            checkpoint_backend=checkpoint_backend,
        )
        service = ReplicatedClusteringService(factory, config, max_segment_ops=50)
        replica = service.add_replica(
            durable_config(
                tmp_path / "replica",
                log_backend=backend,
                checkpoint_backend=checkpoint_backend,
            ),
            name="follower",
        )
        # Interleave ingest and catch-up, ending mid-batch.
        third = len(events) // 3
        service.ingest(events[:third])
        service.sync()
        service.ingest(events[third : 2 * third])
        service.checkpoint()  # ships first, then snapshots + compacts
        service.ingest(events[2 * third :])
        service.flush()
        applied = service.sync()
        assert applied > 0

        assert replica.partition() == service.primary.partition()
        assert (
            replica.service.membership.live_ids()
            == service.primary.membership.live_ids()
        )
        lag = replica.lag()
        assert lag["seq_delta"] == 0
        assert lag["received_seq"] == service.primary.oplog.last_seq
        service.close()

    def test_late_replica_bootstraps_from_checkpoint(
        self, dataset, events, tmp_path
    ):
        """A replica attached after compaction starts from the snapshot
        and is shipped only the suffix."""
        factory = make_factory(dataset)
        service = ReplicatedClusteringService(
            factory, durable_config(tmp_path / "primary")
        )
        half = len(events) // 2
        service.ingest(events[:half])
        service.checkpoint()  # compacts the log prefix
        checkpoint_seq = service.primary.applied_seq

        replica = service.add_replica(durable_config(tmp_path / "late"))
        assert replica.received_seq == checkpoint_seq
        assert replica.num_objects() == service.primary.num_objects()

        service.ingest(events[half:])
        service.flush()
        service.sync()
        assert replica.partition() == service.primary.partition()
        # Only the post-checkpoint suffix travelled over the wire.
        assert replica.segments_applied >= 1
        assert (
            replica.stats()["events_ingested"]
            < service.primary.stats()["events_ingested"]
        )
        service.close()

    def test_mailbox_replication_across_instances(self, dataset, events, tmp_path):
        """Primary and follower share nothing but a mailbox directory
        (the cross-process deployment, driven in one process here)."""
        factory = make_factory(dataset)
        primary = ClusteringService(factory, durable_config(tmp_path / "primary"))
        primary.ingest(events)
        primary.flush()
        shipper = LogShipper(primary.oplog, max_segment_ops=64)
        shipper.attach(MailboxTransport(tmp_path / "mail"), from_seq=0)
        shipper.ship()

        follower = ReadReplica(
            factory,
            durable_config(tmp_path / "follower"),
            MailboxTransport(tmp_path / "mail"),
            name="mailbox-follower",
        )
        follower.poll()
        assert follower.partition() == primary.partition()
        # The mailbox was consumed.
        assert MailboxTransport(tmp_path / "mail").poll() == []
        primary.close()
        follower.close()

    def test_replica_refuses_gap_and_drops_duplicates(
        self, dataset, events, tmp_path
    ):
        factory = make_factory(dataset)
        service = ReplicatedClusteringService(
            factory, durable_config(tmp_path / "primary")
        )
        replica = service.add_replica(name="r")
        service.ingest(events[:64])
        service.sync()
        seen = replica.received_seq
        assert seen == 64

        # Redelivery of an already-applied segment is dropped quietly…
        duplicate = LogSegment(
            seen - 1, seen, stamped_ops(2, seen - 1), primary_seq=seen, shipped_at=0.0
        )
        assert replica.apply_segment(duplicate) == 0
        assert replica.duplicates_dropped == 1
        # …but a segment from the future is refused loudly.
        future = LogSegment(
            seen + 5, seen + 6, stamped_ops(2, seen + 5), primary_seq=seen + 6,
            shipped_at=0.0,
        )
        with pytest.raises(ReplicationGap, match="refusing to apply past a gap"):
            replica.apply_segment(future)
        service.close()

    def test_divergent_round_cut_parameters_refused(self, dataset, tmp_path):
        factory = make_factory(dataset)
        service = ReplicatedClusteringService(
            factory, durable_config(tmp_path / "primary")
        )
        with pytest.raises(ValueError, match="round-cut"):
            service.add_replica(
                durable_config(tmp_path / "bad", batch_max_ops=64)
            )
        with pytest.raises(ValueError, match="round-cut"):
            service.add_replica(durable_config(tmp_path / "bad2", n_shards=4))
        service.close()

    def test_snapshot_seeded_replica_requires_local_checkpoints(
        self, dataset, events, tmp_path
    ):
        """A durable-log replica bootstrapped from a snapshot must also
        have a local checkpoint store — otherwise its log starts past
        seq 1 with the prefix stored nowhere, and restart/promote()
        would refuse the gap. Both seeding paths reject it up front."""
        factory = make_factory(dataset)
        service = ReplicatedClusteringService(
            factory, durable_config(tmp_path / "primary")
        )
        service.ingest(events[:64])
        service.checkpoint()
        log_only = durable_config(tmp_path / "logonly", checkpoint_dir=None)
        with pytest.raises(ValueError, match="checkpoint_dir"):
            service.add_replica(log_only, name="log-only")
        snapshot = service.primary.checkpoints.load_latest()
        with pytest.raises(ValueError, match="bootstrap"):
            ReadReplica(
                factory, log_only, InProcessTransport(), snapshot=snapshot
            )
        service.close()

    def test_ephemeral_primary_refused(self, dataset):
        with pytest.raises(ValueError, match="oplog_path"):
            ReplicatedClusteringService(
                make_factory(dataset), StreamConfig(n_shards=1)
            )

    def test_round_robin_reads_and_staleness(self, dataset, events, tmp_path):
        factory = make_factory(dataset)
        service = ReplicatedClusteringService(
            factory, durable_config(tmp_path / "primary")
        )
        service.add_replica(name="a")
        service.add_replica(name="b")
        service.ingest(events[:64])
        # Reads route to replicas, which haven't heard anything yet:
        # eventual consistency is visible (and queryable via lag()).
        live_id = next(iter(service.primary.membership.live_ids()))
        assert service.primary.cluster_of(live_id) is not None
        assert service.cluster_of(live_id) is None
        assert service.members_of(live_id) == frozenset()
        before = service._reader
        service.cluster_of(live_id)
        service.cluster_of(live_id)
        assert service._reader == before + 2  # round-robin advanced

        service.sync()
        assert service.cluster_of(live_id) is not None
        assert live_id in service.members_of(live_id)
        assert service.num_objects() == service.primary.num_objects()
        for lag in service.lag():
            assert lag["seq_delta"] == 0
        service.close()

    def test_lag_reports_seq_delta_and_staleness(self, dataset, events, tmp_path):
        clock = FakeClock(100.0)
        factory = make_factory(dataset)
        service = ReplicatedClusteringService(
            factory, durable_config(tmp_path / "primary"), clock=clock
        )
        replica = service.add_replica(name="laggy")
        service.ingest(events[:40])
        service.sync()
        assert replica.lag()["seq_delta"] == 0
        assert replica.lag()["staleness_s"] == 0.0

        clock.advance(5.0)
        service.ingest(events[40:80])  # shipped nowhere yet
        lag = replica.lag()
        assert lag["staleness_s"] == 5.0
        assert lag["seq_delta"] == 0  # replica hasn't heard about them…
        service.shipper.ship(heartbeat=True)  # …until a heartbeat tells it
        replica.poll()
        assert replica.lag()["seq_delta"] == 0  # data segments applied too
        assert replica.lag()["staleness_s"] == 0.0

        stats = service.stats()
        assert stats["shipping"][0]["behind"] == 0
        assert stats["primary"]["oplog_bytes"] > 0
        service.close()


class TestPromotion:
    def test_promoted_follower_matches_uninterrupted_run(
        self, dataset, events, tmp_path
    ):
        """Acceptance: promote() yields a primary whose subsequent
        ingest matches an uninterrupted run."""
        factory = make_factory(dataset)
        reference = ClusteringService(factory, durable_config(tmp_path / "ref"))
        reference.ingest(events)
        reference.flush()

        service = ReplicatedClusteringService(
            factory, durable_config(tmp_path / "primary")
        )
        survivor = service.add_replica(name="witness")  # ephemeral bystander
        service.add_replica(durable_config(tmp_path / "heir"), name="heir")
        cut = (len(events) * 2) // 3  # deliberately mid-batch
        service.ingest(events[:cut])

        promoted = service.promote(1)  # final sync + failover
        assert promoted is service.primary
        assert promoted.applied_seq <= promoted.oplog.last_seq

        service.ingest(events[cut:])
        service.flush()
        service.sync()

        assert promoted.partition() == reference.partition()
        assert (
            promoted.membership.live_ids() == reference.membership.live_ids()
        )
        assert promoted.applied_seq == reference.applied_seq
        # The surviving replica kept tailing across the failover.
        assert survivor.partition() == reference.partition()
        reference.close()
        service.close()

    def test_promote_requires_durable_replica(self, dataset, events, tmp_path):
        factory = make_factory(dataset)
        service = ReplicatedClusteringService(
            factory, durable_config(tmp_path / "primary")
        )
        service.add_replica(name="ephemeral")
        service.ingest(events[:32])
        with pytest.raises(ValueError, match="ephemeral"):
            service.promote(0)
        service.close()

    def test_promote_refuses_divergent_round_cut_config(
        self, dataset, events, tmp_path
    ):
        factory = make_factory(dataset)
        service = ReplicatedClusteringService(
            factory, durable_config(tmp_path / "primary")
        )
        replica = service.add_replica(
            durable_config(tmp_path / "heir"), name="heir"
        )
        service.ingest(events[:32])
        service.sync()
        with pytest.raises(ValueError, match="round-cut"):
            replica.promote(durable_config(tmp_path / "heir", batch_max_ops=64))
        service.close()

    def test_durable_replica_restarts_from_own_state(
        self, dataset, events, tmp_path
    ):
        """A follower crash: it rebootstraps from its own log+snapshot
        and resumes tailing at its old cursor."""
        factory = make_factory(dataset)
        primary = ClusteringService(factory, durable_config(tmp_path / "primary"))
        primary.ingest(events)
        primary.flush()
        shipper = LogShipper(primary.oplog, max_segment_ops=64)

        replica_config = durable_config(tmp_path / "follower")
        transport = InProcessTransport()
        shipper.attach(transport, from_seq=0)
        replica = ReadReplica(factory, replica_config, transport, name="f")
        half_seq = primary.oplog.last_seq // 2
        # Ship roughly half, then "crash" the follower.
        for segment in _segments_upto(shipper, transport, half_seq):
            replica.apply_segment(segment)
        replica.checkpoint()  # snapshot + compact local log
        cursor = replica.received_seq
        replica.service.close()
        del replica

        transport2 = InProcessTransport()
        restarted = ReadReplica(factory, replica_config, transport2, name="f2")
        assert restarted.received_seq == cursor
        shipper.detach(transport)
        shipper.attach(transport2, from_seq=restarted.received_seq)
        shipper.ship()
        restarted.poll()
        assert restarted.partition() == primary.partition()
        primary.close()
        restarted.close()


def _segments_upto(shipper, transport, upto_seq):
    """Ship everything, but hand over only segments ending <= upto_seq."""
    shipper.ship()
    return [s for s in transport.poll() if s.last_seq <= upto_seq]


class FakeClock:
    def __init__(self, now: float) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds
