"""Snapshot shipping: self-contained followers, compaction, re-sync.

The tentpole acceptance surface: a follower given *only* a transport
(a mailbox spool directory) — no access to the primary's checkpoint or
log directories — bootstraps from a shipped `SnapshotArtifact` after
the primary compacted its log, tails the segment suffix, survives its
own restarts, and re-syncs over the same channel after a gap refusal.
Plus the property-style check: a seeded random operation stream driven
through primary + mailbox follower under random crash / compact /
re-sync / promote interleavings ends frozenset-equal to one
uninterrupted run.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.clustering.objectives import DBIndexObjective
from repro.core import DynamicC
from repro.data.generators import generate_access
from repro.data.workload import OperationMix, build_workload
from repro.replica import (
    InProcessTransport,
    LogSegment,
    LogShipper,
    MailboxTransport,
    ReadReplica,
    ReplicatedClusteringService,
    ReplicationGap,
    SnapshotArtifact,
)
from repro.stream import ClusteringService, StreamConfig, add
from repro.stream.oplog import open_log


@pytest.fixture(scope="module")
def dataset():
    return generate_access(n_profiles=5, n_records=180, seed=3)


@pytest.fixture(scope="module")
def events(dataset):
    workload = build_workload(
        dataset,
        initial_count=60,
        n_snapshots=4,
        mixes=OperationMix(add=0.12, remove=0.03, update=0.03),
        seed=2,
    )
    return workload.event_stream()


def make_factory(dataset):
    def factory():
        return DynamicC(dataset.graph(), DBIndexObjective(), seed=0)

    return factory


ROUND_CUT = dict(n_shards=2, batch_max_ops=24, train_rounds=2)


def durable_config(root, **overrides) -> StreamConfig:
    settings = dict(
        ROUND_CUT,
        oplog_path=root / "oplog",
        checkpoint_dir=root / "checkpoints",
    )
    settings.update(overrides)
    return StreamConfig(**settings)


def stamped_ops(n, start_seq):
    return tuple(add(1000 + i, f"p{i}").with_seq(start_seq + i) for i in range(n))


def segment_at(first_seq, n=2):
    return LogSegment(
        first_seq,
        first_seq + n - 1,
        stamped_ops(n, first_seq),
        primary_seq=first_seq + n - 1,
        shipped_at=1.0,
    )


class TestSnapshotArtifact:
    def test_roundtrip_and_state_agreement(self):
        state = {"applied_seq": 12, "n_shards": 2, "shards": ["a", "b"]}
        artifact = SnapshotArtifact.from_state(state, primary_seq=20, shipped_at=3.5)
        assert SnapshotArtifact.from_dict(artifact.to_dict()) == artifact
        with pytest.raises(ValueError, match="disagrees"):
            SnapshotArtifact(state=state, applied_seq=13, primary_seq=20, shipped_at=0.0)


class TestMailboxOrdering:
    def test_order_is_numeric_past_the_padding_width(self, tmp_path):
        """10+-digit seqs outgrow the 12-digit zero padding; consumption
        order must come from parsing the numbers, not from lexicographic
        file names (where "10000000000000" < "900000000000")."""
        mailbox = MailboxTransport(tmp_path / "mail")
        twelve_digits = 900_000_000_000
        fourteen_digits = 10_000_000_000_000
        mailbox.publish(segment_at(fourteen_digits))
        mailbox.publish(segment_at(twelve_digits))
        assert [s.first_seq for s in MailboxTransport(tmp_path / "mail").poll()] == [
            twelve_digits,
            fourteen_digits,
        ]

    def test_order_survives_same_mtime_collisions(self, tmp_path):
        """Burst publishes land within one timestamp granule; order must
        not depend on mtime (nor on directory enumeration order)."""
        mailbox = MailboxTransport(tmp_path / "mail")
        firsts = [1 + 2 * i for i in range(15)]
        for first in random.Random(5).sample(firsts, len(firsts)):
            mailbox.publish(segment_at(first))
        for path in (tmp_path / "mail").iterdir():
            os.utime(path, (1_000_000_000, 1_000_000_000))
        polled = MailboxTransport(tmp_path / "mail").poll()
        assert [s.first_seq for s in polled] == firsts

    def test_snapshot_sorts_before_the_segment_continuing_it(self, tmp_path):
        mailbox = MailboxTransport(tmp_path / "mail")
        mailbox.publish(segment_at(4, n=3))  # [4, 6]
        state = {"applied_seq": 3}
        mailbox.publish(
            SnapshotArtifact.from_state(state, primary_seq=6, shipped_at=1.0)
        )
        mailbox.publish(segment_at(1, n=3))  # [1, 3]
        polled = MailboxTransport(tmp_path / "mail").poll()
        assert [type(a).__name__ for a in polled] == [
            "LogSegment",  # [1, 3]
            "SnapshotArtifact",  # at 3: sorts after what it covers…
            "LogSegment",  # …and before the [4, 6] suffix continuing it
        ]


class TestSelfContainedFollower:
    def test_mailbox_follower_joins_after_compaction(
        self, dataset, events, tmp_path
    ):
        """Acceptance: a follower given only the spool directory joins a
        primary whose log was truncated, catches up, and matches."""
        factory = make_factory(dataset)
        primary = ClusteringService(factory, durable_config(tmp_path / "primary"))
        third = len(events) // 3
        primary.ingest(events[:third])
        primary.checkpoint()
        primary.ingest(events[third : 2 * third])
        primary.checkpoint()
        # Aggressive compaction: drop everything the newest snapshot
        # covers. The log now starts past seq 1 for good.
        report = primary.oplog.truncate_through(
            primary.checkpoints.latest_seq()
        )
        assert report["reclaimed_bytes"] > 0
        assert primary.stats()["oplog_reclaimed_bytes"] >= report["reclaimed_bytes"]
        primary.ingest(events[2 * third :])  # un-checkpointed suffix

        spool = tmp_path / "spool"
        shipper = LogShipper(
            primary.oplog,
            snapshots=primary.checkpoints.load_latest,
            max_segment_ops=48,
        )
        shipper.attach(MailboxTransport(spool), from_seq=0)
        shipper.ship()  # heals its own from_seq=0 gap: snapshot + suffix
        assert shipper.stats()[0]["snapshots_shipped"] == 1

        # The follower sees the spool and nothing else of the primary's.
        follower = ReadReplica(
            factory,
            durable_config(tmp_path / "follower"),
            MailboxTransport(spool),
            name="joiner",
        )
        follower.poll()
        assert follower.snapshots_applied == 1
        primary.flush()
        shipper.ship()
        follower.poll()
        assert follower.partition() == primary.partition()
        assert follower.lag()["seq_delta"] == 0
        # Durable on its own account: local log mirrors the cursor…
        assert follower.service.oplog.last_seq == follower.received_seq
        cursor = follower.received_seq
        follower.service.close()
        # …so a restart works from the follower's directories alone.
        restarted = ReadReplica(
            factory,
            durable_config(tmp_path / "follower"),
            MailboxTransport(spool),
            name="joiner-2",
        )
        assert restarted.received_seq == cursor
        assert restarted.partition() == primary.partition()
        primary.close()
        restarted.close()

    def test_ephemeral_follower_bootstraps_from_polled_snapshot(
        self, dataset, events, tmp_path
    ):
        factory = make_factory(dataset)
        primary = ClusteringService(factory, durable_config(tmp_path / "primary"))
        primary.ingest(events[: len(events) // 2])
        primary.checkpoint()
        primary.oplog.truncate_through(primary.checkpoints.latest_seq())

        shipper = LogShipper(
            primary.oplog, snapshots=primary.checkpoints.load_latest
        )
        transport = InProcessTransport()
        shipper.attach(transport, from_seq=0)
        shipper.ship()
        follower = ReadReplica(factory, StreamConfig(**ROUND_CUT), transport)
        follower.poll()
        assert follower.snapshots_applied == 1
        assert follower.partition() == primary.partition()
        primary.close()

    def test_snapshot_into_log_only_follower_is_refused(self, tmp_path):
        """A shipped snapshot may not seed a replica whose log would
        restart past a prefix stored nowhere (no checkpoint_dir)."""

        def factory():  # never reached: the guard fires first
            raise AssertionError

        transport = InProcessTransport()
        state = {"applied_seq": 8, **ROUND_CUT, "shards": []}
        transport.publish(
            SnapshotArtifact.from_state(state, primary_seq=8, shipped_at=1.0)
        )
        follower = ReadReplica(
            lambda: None,
            StreamConfig(**ROUND_CUT, oplog_path=tmp_path / "oplog"),
            transport,
        )
        with pytest.raises(ValueError, match="checkpoint_dir"):
            follower.poll()
        follower.service.close()


class TestResyncAfterGap:
    def test_service_heals_a_follower_that_lost_its_spool(
        self, dataset, events, tmp_path
    ):
        """sync() turns a follower-side ReplicationGap into a snapshot
        re-seed + re-ship instead of an error."""
        factory = make_factory(dataset)
        service = ReplicatedClusteringService(
            factory, durable_config(tmp_path / "primary"), max_segment_ops=32
        )
        spool = tmp_path / "spool"
        replica = service.add_replica(
            durable_config(tmp_path / "follower"),
            transport=MailboxTransport(spool),
            name="f",
        )
        third = len(events) // 3
        service.ingest(events[:third])
        service.sync()
        in_sync = replica.received_seq
        # More ops get shipped into the spool — and lost before the
        # follower polls them.
        service.ingest(events[third : 2 * third])
        service.shipper.ship()
        for path in spool.iterdir():
            path.unlink()
        service.checkpoint()  # snapshot now covers the lost range
        service.ingest(events[2 * third :])
        applied = service.sync()  # gap detected → resync → caught up
        assert applied > 0
        assert replica.snapshots_applied == 1
        assert replica.received_seq > in_sync
        service.flush()
        service.sync()
        assert replica.partition() == service.primary.partition()
        assert service.shipper.stats()[0]["snapshots_shipped"] == 1
        service.close()

    def test_log_only_replica_refused_before_any_checkpoint_exists(
        self, dataset, tmp_path
    ):
        """A durable follower without a checkpoint_dir can never accept
        the snapshot sync()'s gap healing would ship it — refused at
        attach time even while the primary has no snapshot yet."""
        service = ReplicatedClusteringService(
            make_factory(dataset), durable_config(tmp_path / "primary")
        )
        with pytest.raises(ValueError, match="checkpoint_dir"):
            service.add_replica(
                durable_config(tmp_path / "log-only", checkpoint_dir=None)
            )
        service.close()

    def test_fully_compacted_log_still_ships_the_snapshot(self, tmp_path):
        """When truncation left an *empty* retained suffix, nothing
        iterates — the shipper must still notice a stale cursor and
        publish the snapshot (or refuse loudly), never silently strand
        the follower at lag-zero-but-empty."""
        log = open_log(tmp_path / "oplog")
        log.append([add(i, f"p{i}") for i in range(10)])
        log.truncate_through(10)  # retained suffix: nothing
        state = {"applied_seq": 10}
        shipper = LogShipper(log, snapshots=lambda: state)
        transport = InProcessTransport()
        shipper.attach(transport, from_seq=0)
        assert shipper.ship() == 1
        (artifact,) = transport.poll()
        assert isinstance(artifact, SnapshotArtifact)
        assert artifact.applied_seq == 10
        assert shipper.stats()[0]["behind"] == 0
        assert shipper.ship() == 0  # caught up; idempotent
        # Without a snapshot source the same situation is a loud refusal.
        strict = LogShipper(log)
        stranded = InProcessTransport()
        strict.attach(stranded, from_seq=0)
        with pytest.raises(ReplicationGap, match="compacted past follower"):
            strict.ship()
        log.close()

    def test_divergent_snapshot_does_not_poison_the_local_store(
        self, tmp_path
    ):
        """A shipped snapshot with divergent round-cut parameters is
        refused *before* it is saved locally — storing it would make
        every later restart reload and refuse it too."""
        transport = InProcessTransport()
        state = {
            "applied_seq": 8,
            "n_shards": 4,  # the follower below is configured for 2
            "batch_max_ops": ROUND_CUT["batch_max_ops"],
            "train_rounds": ROUND_CUT["train_rounds"],
            "shards": [],
        }
        transport.publish(
            SnapshotArtifact.from_state(state, primary_seq=8, shipped_at=1.0)
        )
        follower = ReadReplica(
            lambda: None, durable_config(tmp_path / "follower"), transport
        )
        with pytest.raises(ValueError, match="round-cut"):
            follower.poll()
        # The local store stayed clean and the replica stayed usable.
        assert follower.service.checkpoints.load_latest() is None
        assert follower.received_seq == 0
        follower.close()

    def test_gap_with_no_snapshot_still_raises(self, tmp_path):
        log = open_log(tmp_path / "oplog")
        log.append([add(i, f"p{i}") for i in range(10)])
        shipper = LogShipper(log)
        transport = InProcessTransport()
        shipper.attach(transport, from_seq=0)
        shipper.ship()
        replica_transport = InProcessTransport()
        replica = ReadReplica(
            lambda: None, StreamConfig(**ROUND_CUT), replica_transport
        )
        replica_transport.publish(segment_at(5, n=2))  # future: gap
        with pytest.raises(ReplicationGap, match="refusing to apply"):
            replica.poll()
        with pytest.raises(ReplicationGap, match="no snapshot"):
            shipper.resync(transport)
        log.close()

    def test_gap_healed_by_snapshot_later_in_the_same_poll(self, tmp_path):
        """Mailbox ordering puts a re-sync snapshot *after* stale gap
        segments; one drain must survive the gap and land on the
        snapshot."""
        spool = tmp_path / "spool"
        publisher = MailboxTransport(spool)
        publisher.publish(segment_at(40, n=2))  # stale: follower is at 0
        state = {"applied_seq": 41, **ROUND_CUT, "shards": []}
        publisher.publish(
            SnapshotArtifact.from_state(state, primary_seq=41, shipped_at=1.0)
        )
        follower = ReadReplica(
            lambda: None, StreamConfig(**ROUND_CUT), MailboxTransport(spool)
        )
        follower.poll()  # does not raise: the snapshot healed the gap
        assert follower.received_seq == 41
        assert follower.snapshots_applied == 1


class TestServiceCompaction:
    def test_compact_truncates_to_the_lowest_safety_floor(
        self, dataset, events, tmp_path
    ):
        factory = make_factory(dataset)
        service = ReplicatedClusteringService(
            factory,
            durable_config(tmp_path / "primary", compact_on_checkpoint=False),
        )
        service.add_replica(name="r")
        half = len(events) // 2
        service.ingest(events[:half])
        service.checkpoint()
        service.ingest(events[half:])
        service.checkpoint()
        report = service.compact()
        # Two retained checkpoints: truncation stops at the OLDEST one —
        # the fallback recovery root keep_checkpoints preserves — not at
        # the newest snapshot.
        seqs = service.primary.checkpoints.list_seqs()
        assert len(seqs) == 2
        assert report["truncated_through"] == seqs[0] < seqs[-1]
        assert report["reclaimed_bytes"] > 0
        assert service.stats()["primary"]["oplog_reclaimed_bytes"] > 0
        # The suffix past the snapshot survives and the service works.
        service.flush()
        service.sync()
        assert service.replicas[0].partition() == service.primary.partition()
        # A follower added *after* the truncation still bootstraps.
        late = service.add_replica(name="late")
        service.sync()
        assert late.partition() == service.primary.partition()
        service.close()

    def test_compact_before_any_checkpoint_is_an_honest_noop(
        self, dataset, events, tmp_path
    ):
        service = ReplicatedClusteringService(
            make_factory(dataset), durable_config(tmp_path / "primary")
        )
        service.ingest(events[:30])
        report = service.compact()
        assert report["truncated_through"] == 0
        assert report["reclaimed_bytes"] == 0
        # Nothing was truncated, and the report says so truthfully.
        assert report["kept_ops"] == service.primary.oplog.last_seq == 30
        service.close()


class TestRandomInterleavings:
    """Property-style equivalence: any seeded interleaving of crash /
    compact / re-sync / promote against a mailbox follower ends
    frozenset-equal to one uninterrupted run of the same stream."""

    # Both seeds draw interleavings covering every action kind (crash,
    # compact, lose-spool→re-sync, promote) — checked by enumerating
    # the action stream, which depends only on the seed.
    @pytest.mark.parametrize("seed", [2, 29])
    def test_interleaved_run_matches_uninterrupted_run(
        self, dataset, events, tmp_path, seed
    ):
        factory = make_factory(dataset)
        reference = ClusteringService(factory, StreamConfig(**ROUND_CUT))
        reference.ingest(events)
        reference.flush()

        rng = random.Random(seed)
        spools = iter(tmp_path / f"spool-{i}" for i in range(100))
        homes = iter(tmp_path / f"node-{i}" for i in range(100))

        primary = ClusteringService(factory, durable_config(next(homes)))
        spool = next(spools)
        shipper = LogShipper(
            primary.oplog,
            snapshots=primary.checkpoints.load_latest,
            max_segment_ops=16,
        )
        shipper.attach(MailboxTransport(spool), from_seq=0)
        follower_home = next(homes)
        follower = ReadReplica(
            factory, durable_config(follower_home), MailboxTransport(spool)
        )

        def drain():
            nonlocal follower
            shipper.ship()
            try:
                follower.poll()
            except ReplicationGap:
                # The transport lost artifacts: re-seed over the wire.
                primary.checkpoint()
                shipper.resync(shipper._subscriptions[0].transport)
                shipper.ship()
                follower.poll()

        position = 0
        promotions = 0
        while position < len(events):
            step = rng.randint(4, 14)
            primary.ingest(events[position : position + step])
            position += step
            action = rng.choice(
                [
                    "ingest",
                    "ship",
                    "ship",
                    "checkpoint",
                    "compact",
                    "crash",
                    "lose",
                    "promote",
                ]
            )
            if action == "ship":
                drain()
            elif action == "checkpoint":
                primary.checkpoint()
            elif action == "compact":
                primary.checkpoint()
                primary.oplog.truncate_through(primary.checkpoints.latest_seq())
            elif action == "lose":
                # Ship into the spool, then lose it all before the
                # follower polls — the re-sync-after-gap trigger.
                shipper.ship()
                for path in spool.iterdir():
                    path.unlink()
            elif action == "crash":
                # Follower dies; a new process resumes from the
                # follower's own directories and keeps tailing.
                follower.service.close()
                follower = ReadReplica(
                    factory, durable_config(follower_home), MailboxTransport(spool)
                )
            elif action == "promote" and promotions < 2:
                promotions += 1
                drain()  # a clean failover ships everything committed
                promoted = follower.promote()
                primary.close()
                primary = promoted
                spool = next(spools)
                shipper = LogShipper(
                    primary.oplog,
                    snapshots=primary.checkpoints.load_latest,
                    max_segment_ops=16,
                )
                shipper.attach(MailboxTransport(spool), from_seq=0)
                follower_home = next(homes)
                follower = ReadReplica(
                    factory, durable_config(follower_home), MailboxTransport(spool)
                )

        primary.flush()
        drain()
        assert primary.partition() == reference.partition()
        assert follower.partition() == reference.partition()
        assert follower.lag()["seq_delta"] == 0
        primary.close()
        follower.service.close()
        reference.close()
