"""Tests for sampling (§5.3), training data assembly (§5.2), θ (§5.4)."""

import numpy as np
import pytest

from repro.clustering.state import Clustering
from repro.core.config import DynamicCConfig
from repro.core.sampling import sample_negatives
from repro.core.training import (
    TrainingBuffer,
    collect_round_samples,
    select_theta,
)
from repro.ml import LogisticRegressionClassifier

from paper_example import PAPER_IDS

R = PAPER_IDS


class TestSampleNegatives:
    def test_count_respected(self):
        rng = np.random.default_rng(0)
        chosen = sample_negatives(list(range(10)), list(range(10, 20)), 5, rng)
        assert len(chosen) == 5
        assert len(set(chosen)) == 5  # without replacement

    def test_exhausted_pools(self):
        rng = np.random.default_rng(0)
        chosen = sample_negatives([1], [2], 10, rng)
        assert sorted(chosen) == [1, 2]

    def test_zero_count(self):
        rng = np.random.default_rng(0)
        assert sample_negatives([1], [2], 0, rng) == []

    def test_active_weighting_biases_selection(self):
        rng = np.random.default_rng(42)
        active_share = 0
        trials = 300
        for _ in range(trials):
            chosen = sample_negatives(
                ["a"] * 50, ["i"] * 50, 1, rng, active_weight=0.7, inactive_weight=0.3
            )
            active_share += chosen[0] == "a"
        # The paper's 0.7/0.3 weighting: active picked ~70% of the time.
        assert 0.6 < active_share / trials < 0.8

    def test_invalid_weights(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_negatives([1], [2], 1, rng, active_weight=0.0, inactive_weight=0.0)


class TestCollectRoundSamples:
    def test_merge_and_split_positives(self, paper_graph):
        old = Clustering.from_groups(
            paper_graph,
            [
                [R["r1"], R["r2"], R["r3"]],
                [R["r4"], R["r5"]],
                [R["r6"]],
                [R["r7"]],
            ],
        )
        new_partition = frozenset(
            {
                frozenset({R["r2"], R["r3"]}),
                frozenset({R["r4"], R["r5"], R["r6"]}),
                frozenset({R["r1"], R["r7"]}),
            }
        )
        rng = np.random.default_rng(0)
        samples = collect_round_samples(
            old, new_partition, changed={R["r6"], R["r7"]}, rng=rng
        )
        # 1 split (C1) and 2 merges ⇒ 1 split positive, 4 merge positives.
        assert len(samples.split_positive) == 1
        assert len(samples.merge_positive) == 4
        # Negatives never exceed positives (§5.3: equal counts, capped by pool).
        assert len(samples.merge_negative) <= 4
        assert len(samples.split_negative) <= 1

    def test_old_clustering_not_mutated(self, paper_graph):
        old = Clustering.from_groups(paper_graph, [[R["r1"]], [R["r7"]]])
        partition_before = old.as_partition()
        new_partition = frozenset({frozenset({R["r1"], R["r7"]})})
        collect_round_samples(
            old, new_partition, changed=set(), rng=np.random.default_rng(0)
        )
        assert old.as_partition() == partition_before

    def test_unchanged_round_yields_no_positives(self, paper_old_clustering):
        old = paper_old_clustering
        samples = collect_round_samples(
            old, old.as_partition(), changed=set(), rng=np.random.default_rng(0)
        )
        assert not samples.merge_positive
        assert not samples.split_positive


class TestTrainingBuffer:
    def test_fifo_eviction(self):
        buffer = TrainingBuffer(max_size=3)
        for i in range(5):
            buffer.add_merge_sample(_fake_features(i), label=i % 2)
        assert buffer.merge_size == 3
        X, y = buffer.merge_matrix()
        assert X.shape == (3, 4)
        assert list(y) == [0, 1, 0]  # samples 2, 3, 4 survive

    def test_empty_matrices(self):
        buffer = TrainingBuffer()
        X, y = buffer.merge_matrix()
        assert X.shape == (0, 4)
        X, y = buffer.split_matrix()
        assert X.shape == (0, 3)

    def test_len(self):
        buffer = TrainingBuffer()
        buffer.add_merge_sample(_fake_features(1), 1)
        buffer.add_split_sample(_fake_features(2), 0)
        assert len(buffer) == 2


def _fake_features(seed: int):
    from repro.core.features import ClusterFeatures

    rng = np.random.default_rng(seed)
    return ClusterFeatures(
        intra=float(rng.random()),
        max_inter=float(rng.random()),
        size=int(rng.integers(1, 10)),
        partner_size=int(rng.integers(0, 10)),
    )


class TestSelectTheta:
    def test_theta_is_min_positive_probability(self):
        rng = np.random.default_rng(0)
        X = np.vstack(
            [rng.normal(2.0, 0.5, size=(40, 3)), rng.normal(-2.0, 0.5, size=(40, 3))]
        )
        y = np.array([1] * 40 + [0] * 40)
        model = LogisticRegressionClassifier().fit(X, y)
        theta = select_theta(model, X, y, quantile=0.0, floor=0.0)
        positives = model.predict_proba(X[y == 1])
        assert theta == pytest.approx(float(positives.min()))
        # 100% training recall (§5.4).
        assert np.all(positives >= theta)

    def test_floor_applies(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(20, 3))
        y = np.array([1] * 10 + [0] * 10)
        model = LogisticRegressionClassifier().fit(X, y)
        theta = select_theta(model, X, y, floor=0.4)
        assert theta >= 0.4

    def test_no_positives_defaults(self):
        model = LogisticRegressionClassifier().fit(
            np.zeros((4, 2)), np.zeros(4, dtype=int)
        )
        assert select_theta(model, np.zeros((4, 2)), np.zeros(4)) == 0.5

    def test_quantile_raises_theta(self):
        rng = np.random.default_rng(2)
        X = np.vstack(
            [rng.normal(1.0, 1.0, size=(50, 2)), rng.normal(-1.0, 1.0, size=(50, 2))]
        )
        y = np.array([1] * 50 + [0] * 50)
        model = LogisticRegressionClassifier().fit(X, y)
        low = select_theta(model, X, y, quantile=0.0, floor=0.0)
        high = select_theta(model, X, y, quantile=0.3, floor=0.0)
        assert high >= low
