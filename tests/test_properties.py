"""Property-based tests (hypothesis) on core data structures and invariants.

Covered properties:

* Clustering state — any sequence of merge/split/move/remove operations
  keeps the partition invariants and the incremental intra-similarity
  sums exact.
* Objective deltas — delta_merge/delta_split/delta_move are exactly the
  score difference of applying the change, for all three objectives.
* Transformation derivation — replaying the derived steps transforms any
  old partition into any new partition of the same objects.
* Pair metrics — bounded in [0, 1], symmetric F1, identity gives 1.
* Levenshtein — triangle inequality and symmetry.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.clustering.objectives import (
    CorrelationObjective,
    DBIndexObjective,
    KMeansObjective,
)
from repro.clustering.state import Clustering
from repro.core.transformation import derive_transformation, replay_transformation
from repro.eval.pair_metrics import pair_metrics
from repro.similarity import SimilarityGraph
from repro.similarity.levenshtein import levenshtein_distance
from repro.similarity.table import TableSimilarity

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

N_OBJECTS = 8


@st.composite
def random_graphs(draw):
    """A small similarity graph with random sparse edges."""
    n = draw(st.integers(min_value=3, max_value=N_OBJECTS))
    pairs = {}
    for a in range(1, n + 1):
        for b in range(a + 1, n + 1):
            if draw(st.booleans()):
                sim = draw(
                    st.floats(min_value=0.1, max_value=1.0, allow_nan=False)
                )
                pairs[(f"o{a}", f"o{b}")] = round(sim, 3)
    graph = SimilarityGraph(TableSimilarity(pairs), store_threshold=0.05)
    for obj_id in range(1, n + 1):
        graph.add_object(obj_id, f"o{obj_id}")
    return graph


@st.composite
def partitions(draw, objects):
    """A random partition of the given object list."""
    labels = [draw(st.integers(min_value=0, max_value=len(objects) - 1)) for _ in objects]
    groups: dict[int, set] = {}
    for obj, label in zip(objects, labels):
        groups.setdefault(label, set()).add(obj)
    return list(groups.values())


@st.composite
def graph_with_operations(draw):
    graph = draw(random_graphs())
    ids = sorted(graph.object_ids())
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["merge", "split", "move", "remove"]),
                st.integers(min_value=0, max_value=10_000),
            ),
            max_size=12,
        )
    )
    return graph, ids, ops


# ---------------------------------------------------------------------------
# Clustering state invariants
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(graph_with_operations())
def test_clustering_invariants_under_random_operations(data):
    graph, ids, ops = data
    clustering = Clustering.singletons(graph)
    rng = np.random.default_rng(0)
    for kind, seed in ops:
        cids = list(clustering.cluster_ids())
        if kind == "merge" and len(cids) >= 2:
            a, b = cids[seed % len(cids)], cids[(seed // 7) % len(cids)]
            if a != b:
                clustering.merge(a, b)
        elif kind == "split":
            big = [cid for cid in cids if clustering.size(cid) > 1]
            if big:
                cid = big[seed % len(big)]
                members = sorted(clustering.members_view(cid))
                clustering.split(cid, {members[seed % len(members)]})
        elif kind == "move" and len(cids) >= 2:
            objects = sorted(clustering.labels())
            obj = objects[seed % len(objects)]
            target = cids[(seed // 3) % len(cids)]
            if clustering.contains_cluster(target):
                clustering.move(obj, target)
        elif kind == "remove":
            objects = sorted(clustering.labels())
            if len(objects) > 1:
                obj = objects[seed % len(objects)]
                clustering.remove_object(obj)
                graph.remove_object(obj)
        clustering.check_invariants()


# ---------------------------------------------------------------------------
# Objective delta exactness
# ---------------------------------------------------------------------------


def _check_deltas(graph, objective, make_fresh):
    clustering = Clustering.singletons(graph)
    ids = sorted(graph.object_ids())
    # Build a few clusters deterministically.
    clustering.merge(clustering.cluster_of(ids[0]), clustering.cluster_of(ids[1]))
    if len(ids) >= 4:
        clustering.merge(clustering.cluster_of(ids[2]), clustering.cluster_of(ids[3]))

    cids = list(clustering.cluster_ids())
    # merge delta
    fast = objective.delta_merge(clustering, cids[0], cids[1])
    trial = clustering.copy()
    trial.merge(cids[0], cids[1])
    slow = make_fresh().score(trial) - make_fresh().score(clustering)
    assert fast == pytest.approx(slow, abs=1e-8)

    # split delta on a multi-member cluster
    big = [cid for cid in clustering.cluster_ids() if clustering.size(cid) > 1]
    if big:
        cid = big[0]
        member = sorted(clustering.members_view(cid))[0]
        fast = objective.delta_split(clustering, cid, {member})
        trial = clustering.copy()
        trial.split(cid, {member})
        slow = make_fresh().score(trial) - make_fresh().score(clustering)
        assert fast == pytest.approx(slow, abs=1e-8)

    # move delta
    if len(list(clustering.cluster_ids())) >= 2:
        obj = ids[0]
        targets = [
            cid
            for cid in clustering.cluster_ids()
            if cid != clustering.cluster_of(obj)
        ]
        fast = objective.delta_move(clustering, obj, targets[0])
        trial = clustering.copy()
        trial.move(obj, targets[0])
        slow = make_fresh().score(trial) - make_fresh().score(clustering)
        assert fast == pytest.approx(slow, abs=1e-8)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(random_graphs())
def test_correlation_deltas_exact(graph):
    _check_deltas(graph, CorrelationObjective(), CorrelationObjective)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(random_graphs())
def test_dbindex_deltas_exact(graph):
    _check_deltas(graph, DBIndexObjective(), DBIndexObjective)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(random_graphs(), st.integers(min_value=1, max_value=4))
def test_kmeans_deltas_exact(graph, k):
    rng = np.random.default_rng(7)
    vectors = {obj_id: rng.normal(size=3) for obj_id in graph.object_ids()}

    def make():
        return KMeansObjective(k=k, vector_of=lambda oid: vectors[oid], penalty=50.0)

    _check_deltas(graph, make(), make)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(random_graphs())
def test_dbindex_cache_consistent_after_gateway_ops(graph):
    objective = DBIndexObjective()
    clustering = Clustering.singletons(graph)
    ids = sorted(graph.object_ids())
    objective.apply_merge(
        clustering, clustering.cluster_of(ids[0]), clustering.cluster_of(ids[1])
    )
    objective.apply_merge(
        clustering, clustering.cluster_of(ids[0]), clustering.cluster_of(ids[2])
    )
    objective.apply_split(clustering, clustering.cluster_of(ids[0]), {ids[0]})
    assert objective.score(clustering) == pytest.approx(
        DBIndexObjective().score(clustering), abs=1e-8
    )


# ---------------------------------------------------------------------------
# Transformation derivation
# ---------------------------------------------------------------------------


@settings(max_examples=80, deadline=None)
@given(st.data())
def test_derived_transformation_replays_exactly(data):
    n = data.draw(st.integers(min_value=1, max_value=10))
    objects = list(range(n))
    old = data.draw(partitions(objects))
    new = data.draw(partitions(objects))
    log = derive_transformation(old, new)
    result = replay_transformation(old, log)
    assert result == frozenset(frozenset(g) for g in new)


@settings(max_examples=50, deadline=None)
@given(st.data())
def test_transformation_of_identity_is_empty(data):
    n = data.draw(st.integers(min_value=1, max_value=10))
    partition = data.draw(partitions(list(range(n))))
    assert len(derive_transformation(partition, partition)) == 0


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


@settings(max_examples=80, deadline=None)
@given(st.data())
def test_pair_metrics_bounds_and_symmetry(data):
    n = data.draw(st.integers(min_value=1, max_value=12))
    objects = list(range(n))
    a = data.draw(partitions(objects))
    b = data.draw(partitions(objects))
    m = pair_metrics(a, b)
    assert 0.0 <= m.precision <= 1.0
    assert 0.0 <= m.recall <= 1.0
    assert 0.0 <= m.f1 <= 1.0
    assert m.f1 == pytest.approx(pair_metrics(b, a).f1)
    assert pair_metrics(a, a).f1 == 1.0


@settings(max_examples=100, deadline=None)
@given(st.text(max_size=12), st.text(max_size=12), st.text(max_size=12))
def test_levenshtein_triangle_inequality(a, b, c):
    assert levenshtein_distance(a, c) <= levenshtein_distance(
        a, b
    ) + levenshtein_distance(b, c)
    assert levenshtein_distance(a, b) == levenshtein_distance(b, a)
