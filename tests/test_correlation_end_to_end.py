"""End-to-end DynamicC over correlation clustering (Eq. 1).

Correlation clustering is the paper's expository objective (§3.2 and
every worked example); this exercises the full pipeline on it, on top
of the DB-index integration suite.
"""

import numpy as np
import pytest

from repro.clustering.baselines import NaiveIncremental
from repro.clustering.batch import HillClimbing
from repro.clustering.objectives import CorrelationObjective
from repro.core import DynamicC
from repro.data.generators import generate_musicbrainz
from repro.data.workload import OperationMix, build_workload
from repro.eval.harness import (
    f1_against_reference,
    run_batch_per_round,
    run_incremental,
)


@pytest.fixture(scope="module")
def correlation_setup():
    dataset = generate_musicbrainz(n_entities=35, n_duplicates=105, seed=17)
    workload = build_workload(
        dataset,
        initial_count=55,
        n_snapshots=6,
        mixes=OperationMix(add=0.18, remove=0.03, update=0.03),
        seed=9,
    )
    reference = run_batch_per_round(
        workload,
        lambda: HillClimbing(CorrelationObjective()),
        score_fn=lambda c: CorrelationObjective().score(c),
    )
    run = run_incremental(
        workload,
        lambda g: DynamicC(g, CorrelationObjective(), seed=0),
        bootstrap=lambda g: HillClimbing(CorrelationObjective()).cluster(g),
        train_rounds=3,
        score_fn=lambda c: CorrelationObjective().score(c),
    )
    return workload, reference, run


class TestCorrelationEndToEnd:
    def test_quality_close_to_batch(self, correlation_setup):
        _, reference, run = correlation_setup
        metrics = f1_against_reference(run, reference)
        assert np.mean([m.f1 for m in metrics]) > 0.85

    def test_objective_tracks_batch(self, correlation_setup):
        _, reference, run = correlation_setup
        ref_scores = {r.index: r.score for r in reference.rounds}
        for record in run.predict_rounds():
            assert record.score <= ref_scores[record.index] * 1.25 + 1e-9

    def test_faster_than_batch(self, correlation_setup):
        _, reference, run = correlation_setup
        predict_indices = {r.index for r in run.predict_rounds()}
        batch_latency = sum(
            r.latency for r in reference.rounds if r.index in predict_indices
        )
        assert run.total_latency() < batch_latency

    def test_beats_naive(self, correlation_setup):
        workload, reference, run = correlation_setup
        naive = run_incremental(
            workload,
            lambda g: NaiveIncremental(g, threshold=0.45),
            bootstrap=lambda g: HillClimbing(CorrelationObjective()).cluster(g),
        )
        predict_count = len(run.predict_rounds())
        dyn_f1 = np.mean([m.f1 for m in f1_against_reference(run, reference)])
        naive_f1 = np.mean(
            [m.f1 for m in f1_against_reference(naive, reference)[-predict_count:]]
        )
        assert dyn_f1 > naive_f1
