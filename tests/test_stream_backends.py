"""Storage-backend contract tests: JSONL and sqlite logs/checkpoints.

The two implementations of `LogBackend` / `CheckpointStore` must be
interchangeable at the Operation level — same append/replay/compact
semantics, and crucially the same torn-tail healing after a crash
mid-append ("bit-for-bit" equality of the healed operation sequence).
"""

from __future__ import annotations

import json
import sqlite3

import pytest

from repro.clustering.objectives import DBIndexObjective
from repro.core import DynamicC
from repro.data.generators import generate_access
from repro.data.workload import OperationMix, build_workload
from repro.stream import (
    ClusteringService,
    StreamConfig,
    add,
    open_checkpoints,
    open_log,
    remove,
    update,
)

BACKENDS = ("jsonl", "sqlite")


def log_path(tmp_path, backend):
    return tmp_path / f"oplog-{backend}.{'jsonl' if backend == 'jsonl' else 'sqlite'}"


def sample_ops(n):
    """A payload-diverse op mix (codec coverage rides along)."""
    ops = []
    for i in range(n):
        if i % 7 == 3:
            ops.append(update(i - 1, ("tuple", i)))
        elif i % 11 == 5:
            ops.append(remove(i - 2))
        else:
            ops.append(add(i, frozenset({f"tok{i}", f"tok{i + 1}"})))
    return ops


def tear_tail(path, backend):
    """Simulate a kill mid-append: damage the final durable record."""
    if backend == "jsonl":
        # Chop the last line in half — exactly what an interrupted
        # write(2) of the final record leaves behind.
        lines = path.read_bytes().splitlines(keepends=True)
        lines[-1] = lines[-1][: len(lines[-1]) // 2]
        path.write_bytes(b"".join(lines))
    else:
        # Same failure at the row level: the last record's JSON is cut
        # in half (a torn page / a writer that died mid-transaction
        # under a journal mode that couldn't roll back).
        conn = sqlite3.connect(str(path))
        (last_seq,) = conn.execute("SELECT MAX(seq) FROM oplog").fetchone()
        (record,) = conn.execute(
            "SELECT record FROM oplog WHERE seq = ?", (last_seq,)
        ).fetchone()
        conn.execute(
            "UPDATE oplog SET record = ? WHERE seq = ?",
            (record[: len(record) // 2], last_seq),
        )
        conn.commit()
        conn.close()


class TestLogBackendContract:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_append_iter_roundtrip(self, tmp_path, backend):
        with open_log(log_path(tmp_path, backend), backend=backend) as log:
            stamped = log.append(sample_ops(30))
            assert [op.seq for op in stamped] == list(range(1, 31))
            assert log.last_seq == 30
            replayed = list(log.replay())
            assert replayed == stamped
            # Seq-addressed suffix reads.
            assert [op.seq for op in log.iter_from(21)] == list(range(22, 31))
            assert log.size_bytes() > 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_replay_after_compaction_boundary(self, tmp_path, backend):
        """compact(upto) then replay(after_seq=upto) is gapless and exact."""
        with open_log(log_path(tmp_path, backend), backend=backend) as log:
            log.append(sample_ops(20))
            kept = log.compact(upto_seq=10)
            assert kept == 10
            # The boundary case the recovery path depends on: replaying
            # after exactly the compaction point sees the full suffix…
            assert [op.seq for op in log.replay(after_seq=10)] == list(range(11, 21))
            # …and the prefix is really gone (a full replay starts at 11).
            assert [op.seq for op in log.replay()] == list(range(11, 21))
            # Appends continue the sequence across the compaction.
            (next_op,) = log.append([add(999, "after-compact")])
            assert next_op.seq == 21
        with open_log(log_path(tmp_path, backend), backend=backend) as reopened:
            assert reopened.last_seq == 21
            assert [op.seq for op in reopened.replay(after_seq=10)] == list(
                range(11, 22)
            )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_compact_reclaims_disk(self, tmp_path, backend):
        """size_bytes (the oplog_bytes gauge) must drop after compaction
        on every backend, not sit at the high-water mark."""
        with open_log(log_path(tmp_path, backend), backend=backend) as log:
            log.append([add(i, f"payload-{i:06d}") for i in range(3000)])
            before = log.size_bytes()
            log.compact(upto_seq=2999)
            assert log.size_bytes() < before / 2
            # Still fully usable afterwards.
            (op,) = log.append([add(9999, "tail")])
            assert op.seq == 3001

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_append_stamped_requires_contiguity(self, tmp_path, backend):
        with open_log(log_path(tmp_path, backend), backend=backend) as log:
            stamped = log.append(sample_ops(5))
            follower = open_log(
                log_path(tmp_path, backend + "-follower"), backend=backend
            )
            assert follower.append_stamped(stamped[:3]) == 3
            with pytest.raises(ValueError, match="contiguity"):
                follower.append_stamped([stamped[4]])  # skips seq 4
            # The refused batch burned nothing.
            assert follower.last_seq == 3
            follower.append_stamped(stamped[3:])
            assert list(follower.replay()) == stamped
            follower.close()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_iter_from_shares_healed_tail_bound(self, tmp_path, backend):
        path = log_path(tmp_path, backend)
        with open_log(path, backend=backend) as log:
            log.append(sample_ops(12))
        tear_tail(path, backend)
        with open_log(path, backend=backend) as healed:
            assert healed.last_seq == 11
            assert [op.seq for op in healed.iter_from(0)] == list(range(1, 12))
            # Healing is physical, not just a read-time filter: the next
            # append reuses the torn record's seq.
            (op,) = healed.append([add(500, "replacement")])
            assert op.seq == 12

    def test_sqlite_crash_semantics_match_jsonl(self, tmp_path):
        """Kill mid-append on both backends → identical healed Operations.

        The satellite acceptance check: after tearing the final record
        of each log, reopening must yield the same operation sequence
        bit-for-bit at the Operation level (same dict encodings, same
        seqs, same next assigned seq).
        """
        ops = sample_ops(25)
        logs = {}
        for backend in BACKENDS:
            path = log_path(tmp_path, backend)
            with open_log(path, backend=backend) as log:
                log.append(ops)
            tear_tail(path, backend)
            logs[backend] = open_log(path, backend=backend)
        jsonl, sqlite_log = logs["jsonl"], logs["sqlite"]
        assert jsonl.last_seq == sqlite_log.last_seq == 24
        jsonl_ops = list(jsonl.replay())
        sqlite_ops = list(sqlite_log.replay())
        assert jsonl_ops == sqlite_ops
        assert [op.to_dict() for op in jsonl_ops] == [
            op.to_dict() for op in sqlite_ops
        ]
        # Post-heal appends stay in lockstep too.
        assert jsonl.append([add(1000, "x")]) == sqlite_log.append([add(1000, "x")])
        for log in logs.values():
            log.close()

    def test_open_log_rejects_unknown_backend(self, tmp_path):
        with pytest.raises(ValueError, match="unknown log backend"):
            open_log(tmp_path / "x", backend="parquet")


class TestTruncateThroughBoundaries:
    """`truncate_through(T)`: iter_from, shipping catch-up, and crash
    recovery behave correctly at exactly T, one before, and one after —
    on both backends. These are the seams compaction can silently
    corrupt: one seq of slop either way is divergence, not staleness."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_iter_from_around_the_truncation_seq(self, tmp_path, backend):
        with open_log(log_path(tmp_path, backend), backend=backend) as log:
            log.append(sample_ops(40))
            report = log.truncate_through(20)
            assert report["truncated_through"] == 20
            assert report["kept_ops"] == 20
            assert report["log_bytes"] == log.size_bytes()
            assert log.bytes_reclaimed == report["reclaimed_bytes"]
            if backend == "jsonl":
                # Bytes come back immediately; sqlite pages may round.
                assert report["reclaimed_bytes"] > 0
            # Truncation drops history, never the tail position.
            assert log.last_seq == 40
            # At exactly T: the full surviving suffix. One after: one
            # fewer. One before: the dropped record does NOT reappear —
            # the stream starts at 21 and the *caller's* gap check owns
            # refusing it.
            assert [op.seq for op in log.iter_from(20)] == list(range(21, 41))
            assert [op.seq for op in log.iter_from(21)] == list(range(22, 41))
            assert next(iter(log.iter_from(19))).seq == 21
            # The reclaimed gauge accumulates across truncations.
            second = log.truncate_through(30)
            assert (
                log.bytes_reclaimed
                == report["reclaimed_bytes"] + second["reclaimed_bytes"]
            )
            assert [op.seq for op in log.iter_from(30)] == list(range(31, 41))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_replica_catchup_around_the_truncation_seq(self, tmp_path, backend):
        from repro.replica import (
            InProcessTransport,
            LogShipper,
            ReplicationGap,
            SnapshotArtifact,
        )

        with open_log(log_path(tmp_path, backend), backend=backend) as log:
            log.append(sample_ops(40))
            log.truncate_through(20)
            # A follower holding exactly T (or past it) catches up from
            # segments alone…
            shipper = LogShipper(log, max_segment_ops=64)
            at_boundary, past_boundary = InProcessTransport(), InProcessTransport()
            shipper.attach(at_boundary, from_seq=20)
            shipper.attach(past_boundary, from_seq=21)
            shipper.ship()
            assert [(s.first_seq, s.last_seq) for s in at_boundary.poll()] == [
                (21, 40)
            ]
            assert [(s.first_seq, s.last_seq) for s in past_boundary.poll()] == [
                (22, 40)
            ]
            # …one before is unshippable: a hard refusal without a
            # snapshot source, a snapshot + suffix with one.
            strict = LogShipper(log)
            stranded = InProcessTransport()
            strict.attach(stranded, from_seq=19)
            with pytest.raises(ReplicationGap, match="compacted past follower"):
                strict.ship()
            healing = LogShipper(log, snapshots=lambda: {"applied_seq": 20})
            healed = InProcessTransport()
            healing.attach(healed, from_seq=19)
            healing.ship()
            artifacts = healed.poll()
            assert isinstance(artifacts[0], SnapshotArtifact)
            assert artifacts[0].applied_seq == 20
            assert (artifacts[1].first_seq, artifacts[-1].last_seq) == (21, 40)
            assert healing.stats()[0]["snapshots_shipped"] == 1

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_crash_recovery_around_the_truncation_seq(self, tmp_path, backend):
        dataset = generate_access(n_profiles=4, n_records=100, seed=5)
        events = build_workload(
            dataset,
            initial_count=40,
            n_snapshots=3,
            mixes=OperationMix(add=0.1, remove=0.02, update=0.02),
            seed=4,
        ).event_stream()

        def factory():
            return DynamicC(dataset.graph(), DBIndexObjective(), seed=0)

        config = StreamConfig(
            n_shards=2,
            batch_max_ops=16,
            train_rounds=2,
            oplog_path=tmp_path / "oplog",
            checkpoint_dir=tmp_path / "checkpoints",
            log_backend=backend,
            checkpoint_backend="json" if backend == "jsonl" else "sqlite",
            compact_on_checkpoint=False,  # truncations below are the test's
        )
        service = ClusteringService(factory, config)
        service.ingest(events[:-6])
        service.checkpoint()
        boundary = service.applied_seq
        service.ingest(events[-6:])  # logged suffix, pending past boundary
        assert service.oplog.last_seq >= boundary + 2
        live_partition = service.partition()
        service.close()

        # Truncating exactly through the checkpoint seq: recovery
        # replays the suffix and reproduces the pre-crash state.
        with open_log(config.oplog_path, backend=backend) as log:
            log.truncate_through(boundary)
        recovered = ClusteringService.recover(factory, config)
        assert recovered.applied_seq == boundary
        assert recovered.partition() == live_partition
        recovered.close()

        # One past it: the first op recovery needs is gone — a loud
        # gap, never a silent divergence.
        with open_log(config.oplog_path, backend=backend) as log:
            log.truncate_through(boundary + 1)
        with pytest.raises(RuntimeError, match="oplog gap"):
            ClusteringService.recover(factory, config)


class TestCheckpointStoreContract:
    @pytest.mark.parametrize("backend", ("json", "sqlite"))
    def test_save_load_prune(self, tmp_path, backend):
        store = open_checkpoints(tmp_path / backend, backend=backend, keep=2)
        for seq in (10, 25, 40):
            store.save({"applied_seq": seq, "marker": seq * 2})
        assert store.list_seqs() == [25, 40]
        assert store.load_latest()["marker"] == 80
        store.close()
        # A fresh handle sees the same durable state.
        reopened = open_checkpoints(tmp_path / backend, backend=backend, keep=2)
        assert reopened.load_latest()["applied_seq"] == 40
        reopened.close()

    @pytest.mark.parametrize("backend", ("json", "sqlite"))
    def test_corrupt_newest_snapshot_is_skipped(self, tmp_path, backend):
        store = open_checkpoints(tmp_path / backend, backend=backend, keep=3)
        store.save({"applied_seq": 10, "good": True})
        store.save({"applied_seq": 20, "good": True})
        store.close()
        if backend == "json":
            (tmp_path / backend / "checkpoint-20.json").write_text('{"corrupt')
        else:
            conn = sqlite3.connect(str(tmp_path / backend / "checkpoints.sqlite"))
            conn.execute(
                "UPDATE checkpoints SET state = ? WHERE applied_seq = 20",
                ('{"corrupt',),
            )
            conn.commit()
            conn.close()
        reopened = open_checkpoints(tmp_path / backend, backend=backend, keep=3)
        assert reopened.load_latest()["applied_seq"] == 10
        reopened.close()

    def test_open_checkpoints_rejects_unknown_backend(self, tmp_path):
        with pytest.raises(ValueError, match="unknown checkpoint backend"):
            open_checkpoints(tmp_path, backend="zip")


class TestSqliteBackedService:
    """The crash-recovery invariant holds on sqlite storage, and the
    resulting state is backend-independent."""

    def test_config_validates_backends(self, tmp_path):
        with pytest.raises(ValueError, match="log_backend"):
            StreamConfig(log_backend="csv")
        with pytest.raises(ValueError, match="checkpoint_backend"):
            StreamConfig(checkpoint_backend="csv")

    def test_recovery_invariant_and_backend_independence(self, tmp_path):
        dataset = generate_access(n_profiles=6, n_records=240, seed=3)
        workload = build_workload(
            dataset,
            initial_count=80,
            n_snapshots=5,
            mixes=OperationMix(add=0.12, remove=0.03, update=0.03),
            seed=2,
        )
        events = workload.event_stream()

        def factory():
            return DynamicC(dataset.graph(), DBIndexObjective(), seed=0)

        def config_for(root, log_backend, checkpoint_backend):
            return StreamConfig(
                n_shards=2,
                batch_max_ops=32,
                train_rounds=2,
                oplog_path=root / "oplog",
                checkpoint_dir=root / "checkpoints",
                log_backend=log_backend,
                checkpoint_backend=checkpoint_backend,
            )

        reference = ClusteringService(
            factory, config_for(tmp_path / "jsonl", "jsonl", "json")
        )
        reference.ingest(events)
        reference.flush()

        config = config_for(tmp_path / "sqlite", "sqlite", "sqlite")
        crashing = ClusteringService(factory, config)
        crashing.ingest(events[:100])
        crashing.checkpoint()  # snapshot + sqlite-side compaction
        crashing.ingest(events[100:130])  # logged, partially unapplied
        crashing.close()
        del crashing

        recovered = ClusteringService.recover(factory, config)
        recovered.ingest(events[130:])
        recovered.flush()

        assert recovered.partition() == reference.partition()
        assert recovered.membership.live_ids() == reference.membership.live_ids()
        assert recovered.applied_seq == reference.applied_seq
        recovered.close()
        reference.close()
