"""ReadReplica: a follower that serves reads from shipped log state.

A replica is "anything that can read the log": it bootstraps from the
latest checkpoint — its own, one handed over in-process, or a
:class:`~repro.replica.segment.SnapshotArtifact` polled off the
transport — then tails shipped
:class:`~repro.replica.segment.LogSegment` batches, persisting each to
its *own* operation log before applying it, so a durable follower is
itself recoverable and, via :meth:`promote`, a primary-in-waiting.
Because snapshots arrive over the same channel as segments, a follower
given nothing but a transport (a mailbox spool directory, say) is
fully self-contained: it never reads the primary's checkpoint or log
directories, and it can join a primary whose log was compacted long
before the follower existed.

Applying reuses :meth:`ClusteringService.apply_logged
<repro.stream.service.ClusteringService.apply_logged>`, the same code
path crash recovery replays through — which is exactly why a caught-up
follower reproduces the primary's partition *identically* (frozenset
equality), not approximately: same log, same round cuts, same
deterministic engines.

Consumption is gap-refusing and duplicate-tolerant: a segment that
skips past ``received_seq + 1`` raises
:class:`~repro.replica.segment.ReplicationGap` (stale-but-consistent
beats divergent), while an already-seen segment (at-least-once
transport redelivery) is dropped and a partially-overlapping one is
sliced to its new suffix. A gap inside one :meth:`poll` is held open
rather than raised immediately — a snapshot later in the same drain
re-syncs past it; only a gap no polled snapshot healed escapes.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Callable

from repro.faults.inject import fire
from repro.obs.health import check_replica_lag
from repro.obs.telemetry import make_telemetry
from repro.stream.checkpoint import open_checkpoints
from repro.stream.service import (
    ClusteringService,
    StreamConfig,
    _internal_construction,
)
from repro.stream.shard import EngineFactory

from .segment import LogSegment, ReplicationGap, SnapshotArtifact
from .transport import Transport


class ReadReplica:
    """A read-serving follower fed by shipped log segments.

    Parameters
    ----------
    engine_factory:
        The same deterministic factory the primary uses — a must, or
        replayed rounds diverge.
    config:
        The replica's own :class:`~repro.stream.service.StreamConfig`.
        Round-cut parameters must match the primary's; ``oplog_path`` /
        ``checkpoint_dir`` name the *replica's* durable state (may be
        ``None`` for a disposable in-memory follower).
    transport:
        The channel this replica polls segments from.
    snapshot:
        Optional checkpoint state to bootstrap from when the replica
        has no durable store of its own (see :meth:`bootstrap`).
    """

    def __init__(
        self,
        engine_factory: EngineFactory,
        config: StreamConfig,
        transport: Transport,
        *,
        name: str = "replica",
        clock: Callable[[], float] = time.time,
        snapshot: dict | None = None,
        max_lag_ops: int = 10_000,
        max_staleness_s: float = 60.0,
        tenant: str | None = None,
    ) -> None:
        self.name = name
        self.transport = transport
        self.clock = clock
        self.max_lag_ops = max_lag_ops
        self.max_staleness_s = max_staleness_s
        #: Tenant filter over a shared (multi-tenant) log: when set,
        #: only operations stamped with this tenant are applied — the
        #: replica serves that namespace alone, while seq accounting
        #: still tracks the *full* shared log (gaps between this
        #: tenant's operations are other tenants' traffic, not loss).
        #: Tenant-filtered replicas must be ephemeral: a local oplog
        #: would either hold a gappy tenant-only log (unreplayable) or
        #: the full log (which a plain restart would replay unfiltered).
        self.tenant = tenant
        if tenant is not None and config.oplog_path is not None:
            raise ValueError(
                f"{name}: a tenant-filtered replica must not keep its own "
                "oplog (oplog_path=None) — it applies a filtered stream "
                "that a later unfiltered recover would contradict"
            )
        # The replica's name is the ``replica`` label on its service's
        # e2e_visibility_seconds / watermark instruments and its
        # structured-log component.
        if config.node_name != name:
            config = replace(config, node_name=name)
        if snapshot is not None and config.oplog_path is not None:
            # The local log will start right after the snapshot's seq.
            # Unless the local checkpoint store holds that snapshot,
            # any later recover-from-disk (a restart, promote()) would
            # replay a log whose prefix is nowhere and refuse the gap —
            # the replica would be durable in name only.
            raise ValueError(
                f"{name}: an in-memory-only snapshot cannot seed a replica "
                "with its own oplog; use bootstrap(), which stores the "
                "snapshot in the replica's checkpoint_dir first (required)"
            )
        # Resolve the recorder once and share the *instance* with the
        # service (it survives the service replacements apply_snapshot
        # and promote() perform, so one replica = one telemetry stream).
        obs = make_telemetry(config.telemetry)
        if obs.enabled:
            config = replace(config, telemetry=obs)
        # The recover path does all the heavy lifting: restore the
        # newest snapshot, refuse divergent round-cut parameters,
        # replay the local log suffix.
        fire("replica.bootstrap", config.oplog_path)
        with obs.span("replica.bootstrap", component=name):
            with _internal_construction():
                self.service = ClusteringService.recover(
                    engine_factory, config, snapshot=snapshot
                )
        #: Last seq this replica holds (log content, markers included).
        self.received_seq = (
            self.service.oplog.last_seq
            if self.service.oplog is not None
            else self.service.applied_seq
        )
        #: The primary's last committed seq, as of the last segment heard.
        self.primary_seq = self.received_seq
        self.last_heard_at: float | None = None
        self.segments_applied = 0
        self.duplicates_dropped = 0
        self.snapshots_applied = 0
        self.snapshots_skipped = 0
        # Process-local monotonic stamp of the last applied segment or
        # snapshot; feeds the ``applied_age_s`` gauge. Unlike
        # ``staleness_s`` (derived from the shipper's wall-clock
        # ``shipped_at``), it cannot go negative or jump under clock
        # skew between primary and replica hosts.
        self._applied_mono: float | None = None
        #: The primary's freshness watermark, as of the newest artifact
        #: heard (wall clock; ``None`` until an artifact carries one).
        self.primary_watermark_ts: float | None = None
        self._register_health()

    def _register_health(self) -> None:
        """(Re)register the replication check on the live service.

        Called at construction and after every service replacement
        (:meth:`apply_snapshot` rebuilds the service, and with it the
        health registry), so ``/readyz`` always sees replication lag.
        """
        self.service.health.register(
            "replication",
            check_replica_lag(
                self.lag,
                max_seq_delta=self.max_lag_ops,
                max_staleness_s=self.max_staleness_s,
            ),
        )

    @property
    def obs(self):
        """The live service's telemetry recorder (tracks replacements)."""
        return self.service.telemetry

    @classmethod
    def bootstrap(
        cls,
        engine_factory: EngineFactory,
        config: StreamConfig,
        transport: Transport,
        *,
        snapshot: dict | None = None,
        name: str = "replica",
        clock: Callable[[], float] = time.time,
        tenant: str | None = None,
    ) -> "ReadReplica":
        """Start a follower, seeding it from a primary's snapshot.

        A durable replica copies the snapshot into its *own* checkpoint
        store first — so it restarts (and promotes) from local state
        without needing the primary again; an ephemeral replica restores
        the snapshot directly in memory. A local snapshot newer than the
        offered one wins.
        """
        if snapshot is not None and config.oplog_path is not None and config.checkpoint_dir is None:
            raise ValueError(
                f"{name}: a snapshot-seeded replica with its own oplog also "
                "needs its own checkpoint_dir — its log starts past the "
                "snapshot, so restart/promote() without a locally stored "
                "snapshot would refuse the log gap"
            )
        if snapshot is not None and config.checkpoint_dir is not None:
            store = open_checkpoints(
                config.checkpoint_dir,
                backend=config.checkpoint_backend,
                keep=config.keep_checkpoints,
            )
            local = store.load_latest()
            if local is None or int(local["applied_seq"]) < int(snapshot["applied_seq"]):
                store.save(snapshot)
            store.close()
            snapshot = None  # recover reads the seeded store
        return cls(
            engine_factory,
            config,
            transport,
            name=name,
            clock=clock,
            snapshot=snapshot,
            tenant=tenant,
        )

    # ------------------------------------------------------------------
    # Tailing
    # ------------------------------------------------------------------
    def poll(self) -> int:
        """Drain the transport and apply; returns operations applied.

        A segment that gaps past ``received_seq`` does not abort the
        drain: the gap is held open while later artifacts are scanned,
        because a :class:`SnapshotArtifact` further down the same batch
        (the shipper publishes snapshot-then-suffix) re-syncs past it.
        Only a gap that no polled snapshot healed is raised — at which
        point the fix is a primary-side
        :meth:`~repro.replica.shipper.LogShipper.resync`, whose
        artifacts the *next* poll consumes.
        """
        with self.obs.span("replica.poll", component=self.name):
            applied = 0
            gap: ReplicationGap | None = None
            for artifact in self.transport.poll():
                if isinstance(artifact, SnapshotArtifact):
                    before = self.received_seq
                    applied += self.apply_snapshot(artifact)
                    if self.received_seq > before:
                        gap = None  # the restore jumped us past it
                    continue
                try:
                    applied += self.apply_segment(artifact)
                except ReplicationGap as exc:
                    # Segments consumed while a gap is open are lost, but
                    # they were unusable anyway; resync re-ships the whole
                    # suffix after the snapshot, so nothing is skipped.
                    gap = exc
            if gap is not None:
                raise gap
            return applied

    def apply_segment(self, segment: LogSegment) -> int:
        """Persist and apply one shipped segment; returns ops applied."""
        self.primary_seq = max(self.primary_seq, segment.primary_seq)
        if self.last_heard_at is None or segment.shipped_at > self.last_heard_at:
            self.last_heard_at = segment.shipped_at
        self._advance_watermark(segment.primary_watermark_ts)
        if segment.is_heartbeat:
            return 0
        if segment.last_seq <= self.received_seq:
            # At-least-once transports may redeliver; already applied.
            self.duplicates_dropped += 1
            return 0
        if segment.first_seq > self.received_seq + 1:
            raise ReplicationGap(
                f"{self.name} holds seq {self.received_seq} but was shipped "
                f"[{segment.first_seq}, {segment.last_seq}]; refusing to "
                "apply past a gap — re-bootstrap from a newer checkpoint"
            )
        # A partial redelivery (e.g. a segment cut just after a snapshot
        # restore) contributes only its unseen suffix.
        operations = segment.operations[self.received_seq - segment.first_seq + 1 :]
        if self.tenant is not None:
            # Shared multi-tenant log: apply only this tenant's slice.
            # Contiguity cannot be asserted on the filtered stream (the
            # holes are other tenants), so gap detection lives entirely
            # in the full-segment bounds checked above.
            operations = tuple(
                op for op in operations if op.tenant == self.tenant
            )
            with self.obs.span(
                "replica.segment.apply", component=self.name, ops=len(operations)
            ):
                self.service.apply_logged(operations, contiguous=False)
        else:
            with self.obs.span(
                "replica.segment.apply", component=self.name, ops=len(operations)
            ):
                if self.service.oplog is not None:
                    # Hard state first (the WAL rule), then derived state.
                    self.service.oplog.append_stamped(operations)
                self.service.apply_logged(operations, expect_after=self.received_seq)
        self.received_seq = segment.last_seq
        self.segments_applied += 1
        self._applied_mono = time.monotonic()
        return len(operations)

    def apply_snapshot(self, artifact: SnapshotArtifact) -> int:
        """Restore this replica from a shipped checkpoint snapshot.

        The transport-only bootstrap/re-sync path: an artifact newer
        than ``received_seq`` replaces all derived state (through the
        same :meth:`ClusteringService.recover
        <repro.stream.service.ClusteringService.recover>` path a crash
        restart uses) and jumps the cursor to its ``applied_seq``; an
        older or already-covered one is skipped. A durable replica
        stores the snapshot in its *own* checkpoint store first and
        truncates its local log through the snapshot — so a later
        restart or :meth:`promote` works from local state alone.
        Returns 0 (snapshots carry state, not operations).
        """
        self.primary_seq = max(self.primary_seq, artifact.primary_seq)
        if self.last_heard_at is None or artifact.shipped_at > self.last_heard_at:
            self.last_heard_at = artifact.shipped_at
        self._advance_watermark(artifact.primary_watermark_ts)
        if artifact.applied_seq <= self.received_seq:
            self.snapshots_skipped += 1
            return 0
        config = self.service.config
        if config.oplog_path is not None and config.checkpoint_dir is None:
            raise ValueError(
                f"{self.name}: cannot restore a shipped snapshot into a "
                "replica with an oplog but no checkpoint_dir — its log "
                "would restart past a prefix stored nowhere"
            )
        for field_name, want in config.round_cut_params().items():
            # Validate BEFORE saving or closing anything: storing a
            # divergent snapshot would poison the local store (every
            # later restart reloads it and refuses), and recover()'s own
            # check would fire only after the old service was torn down.
            have = artifact.state.get(field_name)
            if have is not None and int(have) != want:
                raise ValueError(
                    f"{self.name}: shipped snapshot has {field_name}={have}, "
                    f"this replica's config wants {want}; refusing divergent "
                    "round-cut parameters"
                )
        factory = self.service._engine_factory
        with self.obs.span(
            "replica.snapshot.apply",
            component=self.name,
            applied_seq=artifact.applied_seq,
        ):
            if self.service.checkpoints is not None:
                # Own the snapshot locally, then recover from the store —
                # the exact restart path, so a crash right after this poll
                # comes back to the same state.
                self.service.checkpoints.save(dict(artifact.state))
                self.service.close()
                with _internal_construction():
                    self.service = ClusteringService.recover(factory, config)
            else:
                self.service.close()
                with _internal_construction():
                    self.service = ClusteringService.recover(
                        factory, config, snapshot=artifact.state
                    )
            if self.service.oplog is not None:
                # The local log's pre-snapshot content is now covered (and
                # disconnected from future appends); drop it.
                self.service.oplog.truncate_through(artifact.applied_seq)
        self.received_seq = artifact.applied_seq
        self.snapshots_applied += 1
        self._applied_mono = time.monotonic()
        self._register_health()  # the restore built a fresh service
        return 0

    def _advance_watermark(self, watermark_ts: float | None) -> None:
        if watermark_ts is not None and (
            self.primary_watermark_ts is None
            or watermark_ts > self.primary_watermark_ts
        ):
            self.primary_watermark_ts = watermark_ts

    def lag(self) -> dict:
        """How far behind the primary this replica's answers are.

        ``seq_delta`` is in operations (primary's last committed seq
        minus the last seq received here); ``staleness_s`` is the
        wall-clock age of the last heard segment/heartbeat, ``None``
        until first contact. ``staleness_s`` compares this host's clock
        against the shipper's ``shipped_at`` stamp, so it is clamped to
        ``>= 0`` — skewed clocks must not report answers from the
        future. ``applied_age_s`` is the skew-immune companion: seconds
        since this process last applied a segment or snapshot, measured
        entirely on the replica's own monotonic clock (``None`` until
        something has been applied).

        The watermark trio measures *data freshness* rather than
        transport freshness: ``primary_watermark_ts`` is the newest
        primary ``ingest_ts`` this replica has heard of,
        ``applied_watermark_ts`` the newest one visible to its queries,
        and ``visibility_lag_s`` their difference — both stamps come
        from the *primary's* clock, so the subtraction is skew-free,
        and it is still clamped ``>= 0`` because an artifact race
        (snapshot stamped before a concurrent ingest) may briefly order
        them oddly. Each is ``None`` until the relevant stamp exists
        (empty log, pre-watermark log, never-polled replica).
        """
        applied_watermark = self.service.applied_watermark_ts
        visibility_lag = None
        if self.primary_watermark_ts is not None and applied_watermark is not None:
            visibility_lag = max(0.0, self.primary_watermark_ts - applied_watermark)
        return {
            "primary_watermark_ts": self.primary_watermark_ts,
            "applied_watermark_ts": applied_watermark,
            "visibility_lag_s": visibility_lag,
            "name": self.name,
            "received_seq": self.received_seq,
            "applied_seq": self.service.applied_seq,
            "primary_seq": self.primary_seq,
            "seq_delta": max(0, self.primary_seq - self.received_seq),
            "staleness_s": (
                max(0.0, self.clock() - self.last_heard_at)
                if self.last_heard_at is not None
                else None
            ),
            "applied_age_s": (
                time.monotonic() - self._applied_mono
                if self._applied_mono is not None
                else None
            ),
        }

    # ------------------------------------------------------------------
    # Reads (same query surface as the primary façade)
    # ------------------------------------------------------------------
    def cluster_of(self, obj_id: int) -> str | None:
        return self.service.cluster_of(obj_id)

    def members(self, gcid: str) -> frozenset[int]:
        return self.service.members(gcid)

    def clusters(self) -> dict[str, frozenset[int]]:
        return self.service.clusters()

    def partition(self) -> frozenset[frozenset[int]]:
        return self.service.partition()

    def num_objects(self) -> int:
        return self.service.num_objects()

    def stats(self, legacy: bool = True) -> dict:
        snapshot = self.service.stats(legacy=legacy)
        snapshot["replica"] = self.lag()
        snapshot["segments_applied"] = self.segments_applied
        snapshot["duplicates_dropped"] = self.duplicates_dropped
        snapshot["snapshots_applied"] = self.snapshots_applied
        snapshot["snapshots_skipped"] = self.snapshots_skipped
        # Spool damage the transport set aside (0 for transports that
        # never quarantine, e.g. in-process queues).
        snapshot["transport_quarantined"] = getattr(self.transport, "quarantined", 0)
        return snapshot

    def checkpoint(self):
        """Snapshot replica state and compact its local log copy.

        Keeps a long-lived durable follower's disk footprint bounded,
        independently of the primary's checkpoint cadence.
        """
        return self.service.checkpoint()

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------
    def promote(self, config: StreamConfig | None = None) -> ClusteringService:
        """Fail over: this follower becomes a primary.

        Checkpoints local state, then rebuilds through
        :meth:`ClusteringService.recover` over the replica's own log and
        checkpoint store — the exact crash-recovery path, so the
        promoted primary's subsequent ingest matches an uninterrupted
        run's. Only a durable follower can be promoted: a primary must
        own a log for its ingest to be recoverable (and shippable to
        the remaining followers).

        ``config`` may adjust storage policy (fsync, retention) for the
        new primary; divergent round-cut parameters are refused.
        """
        current = self.service.config
        if config is None:
            config = current
        elif config.round_cut_params() != current.round_cut_params():
            raise ValueError(
                f"promotion refused: new config round-cut parameters "
                f"{config.round_cut_params()} diverge from the replicated "
                f"state's {current.round_cut_params()}"
            )
        if self.service.oplog is None:
            raise ValueError(
                f"{self.name} is ephemeral (no oplog); only a durable "
                "replica can be promoted to primary"
            )
        factory = self.service._engine_factory
        if self.service.checkpoints is not None:
            # Snapshot first so the recover below replays only the
            # (tiny) logged-but-unapplied suffix, not the whole log.
            self.service.checkpoint()
        self.service.close()
        with _internal_construction():
            return ClusteringService.recover(factory, config)

    def close(self) -> None:
        self.service.close()
        self.transport.close()

    def __enter__(self) -> "ReadReplica":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
