"""Shipping artifacts: log segments and checkpoint snapshots.

A :class:`LogSegment` is a contiguous, committed slice of the primary's
operation log — seq-addressed, self-validating, JSON-serialisable for
transports that cross a process boundary. Every segment also carries
the primary's ``last committed seq`` and a wall-clock ship timestamp,
which is what lets a follower report an honest :meth:`lag
<repro.replica.replica.ReadReplica.lag>` (seq delta + staleness)
without a side channel. A segment with no operations is a heartbeat:
pure lag telemetry, no log content.

A :class:`SnapshotArtifact` is a whole checkpoint travelling the same
channel — the other half of the classic snapshot + log-suffix recovery
contract. Shipping snapshots as first-class artifacts is what lets a
follower bootstrap (or re-sync after a
:class:`ReplicationGap`) from the transport alone, with no access to
the primary's checkpoint or log directories — and what makes it safe
for the primary to truncate its log past segments a late joiner would
otherwise still need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.stream.events import Operation


class ReplicationGap(RuntimeError):
    """A follower (or shipper) hit a hole in the shipped sequence.

    Raised instead of silently skipping: applying past a gap would
    diverge the replica from the primary forever, which is strictly
    worse than being stale.
    """


@dataclass(frozen=True)
class LogSegment:
    """A contiguous slice ``[first_seq, last_seq]`` of shipped oplog.

    ``operations`` empty (with ``last_seq == first_seq - 1``) is a
    heartbeat — it advances a follower's view of ``primary_seq`` and
    ``shipped_at`` without carrying log content.
    """

    first_seq: int
    last_seq: int
    operations: tuple[Operation, ...]
    #: The primary's last committed seq when this segment was cut.
    primary_seq: int
    #: Wall-clock ship time (``time.time()`` domain) on the primary.
    shipped_at: float
    #: The primary's freshness watermark when this segment was cut: the
    #: ``ingest_ts`` of its newest committed operation (``None`` when
    #: the log predates watermarks). Rides every artifact — heartbeats
    #: included — so a follower's visibility lag stays honest while the
    #: primary is idle.
    primary_watermark_ts: float | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "operations", tuple(self.operations))
        if not self.operations:
            if self.last_seq != self.first_seq - 1:
                raise ValueError(
                    f"empty segment must span [n, n-1], got "
                    f"[{self.first_seq}, {self.last_seq}]"
                )
            return
        expected = self.first_seq
        for operation in self.operations:
            if operation.seq != expected:
                raise ValueError(
                    f"segment is not contiguous: expected seq {expected}, "
                    f"got {operation.seq}"
                )
            expected += 1
        if self.last_seq != self.operations[-1].seq:
            raise ValueError(
                f"segment bounds [{self.first_seq}, {self.last_seq}] disagree "
                f"with operations ending at {self.operations[-1].seq}"
            )

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.operations)

    @property
    def is_heartbeat(self) -> bool:
        return not self.operations

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        data = {
            "first_seq": self.first_seq,
            "last_seq": self.last_seq,
            "primary_seq": self.primary_seq,
            "shipped_at": self.shipped_at,
            "operations": [operation.to_dict() for operation in self.operations],
        }
        if self.primary_watermark_ts is not None:
            data["primary_watermark_ts"] = self.primary_watermark_ts
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "LogSegment":
        watermark = data.get("primary_watermark_ts")
        return cls(
            first_seq=int(data["first_seq"]),
            last_seq=int(data["last_seq"]),
            operations=tuple(
                Operation.from_dict(item) for item in data["operations"]
            ),
            primary_seq=int(data["primary_seq"]),
            shipped_at=float(data["shipped_at"]),
            primary_watermark_ts=float(watermark) if watermark is not None else None,
        )

    @classmethod
    def heartbeat(
        cls,
        after_seq: int,
        primary_seq: int,
        shipped_at: float,
        primary_watermark_ts: float | None = None,
    ) -> "LogSegment":
        """An empty segment asserting "nothing new after ``after_seq``"."""
        return cls(
            first_seq=after_seq + 1,
            last_seq=after_seq,
            operations=(),
            primary_seq=primary_seq,
            shipped_at=shipped_at,
            primary_watermark_ts=primary_watermark_ts,
        )


@dataclass(frozen=True)
class SnapshotArtifact:
    """A checkpoint snapshot shipped as a transport artifact.

    ``state`` is the full checkpoint payload a
    :class:`~repro.stream.checkpoint.CheckpointStore` would hold (shard
    states, round-cut parameters, ``applied_seq``); ``applied_seq`` is
    lifted out as the artifact's address — the seq position a follower
    restoring it jumps to, and the point log segments must continue
    from. Like a segment, it carries ``primary_seq`` and ``shipped_at``
    so even a pure bootstrap advances the follower's lag clocks.
    """

    state: dict
    applied_seq: int
    #: The primary's last committed seq when this snapshot was shipped.
    primary_seq: int
    #: Wall-clock ship time (``time.time()`` domain) on the primary.
    shipped_at: float
    #: The primary's freshness watermark at ship time (see
    #: :attr:`LogSegment.primary_watermark_ts`).
    primary_watermark_ts: float | None = None

    def __post_init__(self) -> None:
        recorded = int(self.state["applied_seq"])
        if recorded != self.applied_seq:
            raise ValueError(
                f"snapshot artifact at seq {self.applied_seq} disagrees with "
                f"its state's applied_seq {recorded}"
            )

    @classmethod
    def from_state(
        cls,
        state: dict,
        *,
        primary_seq: int,
        shipped_at: float,
        primary_watermark_ts: float | None = None,
    ) -> "SnapshotArtifact":
        return cls(
            state=state,
            applied_seq=int(state["applied_seq"]),
            primary_seq=primary_seq,
            shipped_at=shipped_at,
            primary_watermark_ts=primary_watermark_ts,
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        data = {
            "applied_seq": self.applied_seq,
            "primary_seq": self.primary_seq,
            "shipped_at": self.shipped_at,
            "state": self.state,
        }
        if self.primary_watermark_ts is not None:
            data["primary_watermark_ts"] = self.primary_watermark_ts
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SnapshotArtifact":
        watermark = data.get("primary_watermark_ts")
        return cls(
            state=data["state"],
            applied_seq=int(data["applied_seq"]),
            primary_seq=int(data["primary_seq"]),
            shipped_at=float(data["shipped_at"]),
            primary_watermark_ts=float(watermark) if watermark is not None else None,
        )
