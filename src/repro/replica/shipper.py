"""LogShipper: stream committed oplog suffixes — and snapshots — to followers.

The primary-side half of replication. The shipper keeps one cursor per
attached transport (``shipped_seq``: the last seq that follower has
been sent) and, on every :meth:`ship`, cuts the committed suffix
``seq > shipped_seq`` into bounded :class:`~repro.replica.segment.LogSegment`
chunks.

Compaction changes the contract: when the log has been truncated past a
follower's cursor, the follower can never be caught up from the log
alone. Given a snapshot source (``snapshots=``, typically the primary's
``checkpoints.load_latest``), the shipper heals the gap itself — it
publishes the newest checkpoint as a
:class:`~repro.replica.segment.SnapshotArtifact`, advances the cursor
to the snapshot's ``applied_seq``, and resumes segment shipping from
there, so a brand-new follower (``from_seq=0``) can join a long-running,
compacted primary over the transport alone. Without a snapshot source
(or with one too old to help) it raises
:class:`~repro.replica.segment.ReplicationGap` instead of shipping a
stream the follower would have to reject anyway. :meth:`resync` is the
explicit form, for a follower that reported a gap on *its* side (lost
spool files, a restart from older local state).

Reading only committed records is free by construction: a
:class:`~repro.stream.oplog.LogBackend` never yields past its healed
``last_seq`` bound.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.faults.retry import RetryPolicy
from repro.obs.telemetry import NULL_TELEMETRY
from repro.stream.oplog import LogBackend

from .segment import LogSegment, ReplicationGap, SnapshotArtifact
from .transport import Transport


@dataclass
class _Subscription:
    transport: Transport
    shipped_seq: int
    segments_shipped: int = 0
    ops_shipped: int = 0
    snapshots_shipped: int = 0


class LogShipper:
    """Fan a primary's operation log out to N follower transports.

    Parameters
    ----------
    log:
        The primary's operation log (any backend).
    snapshots:
        Zero-argument callable returning the primary's newest checkpoint
        state (or ``None``) — e.g. ``checkpoints.load_latest``. Enables
        snapshot shipping: compaction gaps are healed by publishing the
        snapshot instead of raising. ``None`` keeps the strict
        segments-only behaviour.
    max_segment_ops:
        Upper bound on operations per shipped segment, so a follower
        that fell far behind catches up in bounded bites rather than
        one giant message.
    clock:
        Wall-clock source stamped into artifacts (``time.time`` domain;
        injectable for deterministic staleness tests).
    retry:
        :class:`~repro.faults.RetryPolicy` wrapped around every
        transport publish, so a transient spool error (fd pressure, a
        flaky synced filesystem) heals under backoff instead of
        aborting the whole ship. Exhaustion surfaces as the typed
        :class:`~repro.errors.DurabilityError` with boundary
        ``"ship.publish"``. Defaults to a small policy; pass
        ``repro.faults.NO_RETRY`` to restore fail-fast behaviour.
    """

    def __init__(
        self,
        log: LogBackend,
        *,
        snapshots: Callable[[], dict | None] | None = None,
        max_segment_ops: int = 512,
        clock: Callable[[], float] = time.time,
        obs=NULL_TELEMETRY,
        retry: RetryPolicy | None = None,
    ) -> None:
        if max_segment_ops < 1:
            raise ValueError("max_segment_ops must be >= 1")
        self.log = log
        self.snapshots = snapshots
        self.max_segment_ops = max_segment_ops
        self.clock = clock
        self.retry = retry if retry is not None else RetryPolicy()
        #: Observability recorder (shared with the owning topology so
        #: shipping latencies land in the merged snapshot).
        self.obs = obs
        self._subscriptions: list[_Subscription] = []

    def attach(self, transport: Transport, from_seq: int = 0) -> None:
        """Subscribe a follower that already holds the log up to ``from_seq``."""
        self._subscriptions.append(_Subscription(transport, from_seq))

    def detach(self, transport: Transport) -> None:
        self._subscriptions = [
            sub for sub in self._subscriptions if sub.transport is not transport
        ]

    def __len__(self) -> int:
        return len(self._subscriptions)

    def cursors(self) -> list[int]:
        """Every follower's ``shipped_seq`` (the compaction floor)."""
        return [sub.shipped_seq for sub in self._subscriptions]

    # ------------------------------------------------------------------
    def ship(self, heartbeat: bool = False) -> int:
        """Publish every follower's unshipped suffix; returns artifacts sent.

        With ``heartbeat=True`` an up-to-date follower still receives an
        empty segment, so its staleness clock keeps moving even when the
        primary is idle.
        """
        published = 0
        primary_seq = self.log.last_seq
        now = self.clock()
        for sub in self._subscriptions:
            published += self._ship_subscription(sub, primary_seq, now, heartbeat)
        return published

    def _ship_subscription(
        self, sub: _Subscription, primary_seq: int, now: float, heartbeat: bool
    ) -> int:
        published = 0
        healed_once = False
        while True:
            chunk: list = []
            gap_at: int | None = None
            for operation in self.log.iter_from(sub.shipped_seq):
                if operation.seq != sub.shipped_seq + len(chunk) + 1:
                    gap_at = operation.seq
                    break
                chunk.append(operation)
                if len(chunk) == self.max_segment_ops:
                    published += self._publish_chunk(sub, chunk, primary_seq, now)
                    chunk = []
            if chunk:
                published += self._publish_chunk(sub, chunk, primary_seq, now)
            if gap_at is None and sub.shipped_seq < self.log.last_seq:
                # The log stopped yielding short of its own last_seq: the
                # remaining range was truncated away entirely (an empty
                # retained suffix). Without this check a follower behind
                # a fully-compacted log would be silently stranded —
                # nothing iterates, so the in-loop gap test never fires.
                gap_at = self.log.last_seq + 1
            if gap_at is not None:
                if healed_once:
                    raise ReplicationGap(
                        f"log still gaps at seq {gap_at} after a snapshot "
                        f"re-sync; it is damaged beyond what shipping can heal"
                    )
                published += self._publish_snapshot(sub, gap_at, now)
                healed_once = True
                continue  # re-walk the log from the snapshot's position
            break
        if published == 0 and heartbeat:
            with self.obs.span("ship.publish", kind="heartbeat"):
                self._publish(
                    sub.transport,
                    LogSegment.heartbeat(
                        sub.shipped_seq,
                        primary_seq,
                        now,
                        primary_watermark_ts=self.log.last_watermark_ts,
                    ),
                )
            published += 1
        return published

    def _publish(self, transport: Transport, artifact) -> None:
        """One retried transport publish (boundary ``ship.publish``)."""
        self.retry.run(
            lambda: transport.publish(artifact),
            boundary="ship.publish",
            obs=self.obs,
        )

    def _publish_chunk(
        self, sub: _Subscription, chunk: list, primary_seq: int, now: float
    ) -> int:
        segment = LogSegment(
            first_seq=chunk[0].seq,
            last_seq=chunk[-1].seq,
            operations=tuple(chunk),
            primary_seq=primary_seq,
            shipped_at=now,
            primary_watermark_ts=self.log.last_watermark_ts,
        )
        with self.obs.span("ship.publish", kind="segment", ops=len(segment)):
            self._publish(sub.transport, segment)
        sub.shipped_seq = segment.last_seq
        sub.segments_shipped += 1
        sub.ops_shipped += len(segment)
        return 1

    def _publish_snapshot(
        self, sub: _Subscription, oldest_shippable: int, now: float
    ) -> int:
        """Heal a compaction gap by shipping the newest snapshot.

        The snapshot must actually bridge: new enough that the retained
        log connects to it (``applied_seq >= oldest_shippable - 1``) and
        ahead of the follower's cursor (or nothing was gained).
        """
        state = self.snapshots() if self.snapshots is not None else None
        if state is not None:
            applied_seq = int(state["applied_seq"])
            if applied_seq > sub.shipped_seq and applied_seq >= oldest_shippable - 1:
                with self.obs.span(
                    "ship.publish", kind="snapshot", applied_seq=applied_seq
                ):
                    self._publish(
                        sub.transport,
                        SnapshotArtifact.from_state(
                            state,
                            primary_seq=self.log.last_seq,
                            shipped_at=now,
                            primary_watermark_ts=self.log.last_watermark_ts,
                        ),
                    )
                sub.shipped_seq = applied_seq
                sub.snapshots_shipped += 1
                return 1
        raise ReplicationGap(
            f"log compacted past follower: it has seq {sub.shipped_seq}, "
            f"oldest shippable is {oldest_shippable}, and no snapshot "
            f"{'source is attached' if self.snapshots is None else 'bridges the gap'}"
            "; re-bootstrap it from a checkpoint"
        )

    def resync(self, transport: Transport) -> int:
        """Re-seed one follower with the newest snapshot; returns its seq.

        The recovery move for a *follower-side* gap (it lost spool
        files, or restarted from state older than its cursor): publish
        the newest checkpoint and pull the cursor back to the snapshot's
        ``applied_seq``, so the next :meth:`ship` re-sends the whole
        suffix after it. Raises :class:`ReplicationGap` when no snapshot
        is available — an honest "this follower cannot be saved yet"
        (checkpoint the primary first).
        """
        for sub in self._subscriptions:
            if sub.transport is transport:
                break
        else:
            raise ValueError("transport is not attached to this shipper")
        state = self.snapshots() if self.snapshots is not None else None
        if state is None:
            raise ReplicationGap(
                "re-sync requested but no snapshot is available; "
                "checkpoint the primary, then retry"
            )
        artifact = SnapshotArtifact.from_state(
            state,
            primary_seq=self.log.last_seq,
            shipped_at=self.clock(),
            primary_watermark_ts=self.log.last_watermark_ts,
        )
        self._publish(sub.transport, artifact)
        sub.shipped_seq = artifact.applied_seq
        sub.snapshots_shipped += 1
        return artifact.applied_seq

    def stats(self) -> list[dict]:
        """Per-follower shipping counters (telemetry)."""
        return [
            {
                "shipped_seq": sub.shipped_seq,
                "segments_shipped": sub.segments_shipped,
                "ops_shipped": sub.ops_shipped,
                "snapshots_shipped": sub.snapshots_shipped,
                "behind": max(0, self.log.last_seq - sub.shipped_seq),
            }
            for sub in self._subscriptions
        ]
