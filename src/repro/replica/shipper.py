"""LogShipper: stream committed oplog suffixes to followers.

The primary-side half of replication. The shipper keeps one cursor per
attached transport (``shipped_seq``: the last seq that follower has
been sent) and, on every :meth:`ship`, cuts the committed suffix
``seq > shipped_seq`` into bounded :class:`~repro.replica.segment.LogSegment`
chunks. Shipping is gap-refusing from the primary side too: if the log
was compacted past a follower's cursor, the follower can never be
caught up from the log alone, and the shipper raises
:class:`~repro.replica.segment.ReplicationGap` instead of shipping a
stream the follower would have to reject anyway (re-bootstrap from a
checkpoint is the fix).

Reading only committed records is free by construction: a
:class:`~repro.stream.oplog.LogBackend` never yields past its healed
``last_seq`` bound.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.stream.oplog import LogBackend

from .segment import LogSegment, ReplicationGap
from .transport import Transport


@dataclass
class _Subscription:
    transport: Transport
    shipped_seq: int
    segments_shipped: int = 0
    ops_shipped: int = 0


class LogShipper:
    """Fan a primary's operation log out to N follower transports.

    Parameters
    ----------
    log:
        The primary's operation log (any backend).
    max_segment_ops:
        Upper bound on operations per shipped segment, so a follower
        that fell far behind catches up in bounded bites rather than
        one giant message.
    clock:
        Wall-clock source stamped into segments (``time.time`` domain;
        injectable for deterministic staleness tests).
    """

    def __init__(
        self,
        log: LogBackend,
        *,
        max_segment_ops: int = 512,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if max_segment_ops < 1:
            raise ValueError("max_segment_ops must be >= 1")
        self.log = log
        self.max_segment_ops = max_segment_ops
        self.clock = clock
        self._subscriptions: list[_Subscription] = []

    def attach(self, transport: Transport, from_seq: int = 0) -> None:
        """Subscribe a follower that already holds the log up to ``from_seq``."""
        self._subscriptions.append(_Subscription(transport, from_seq))

    def detach(self, transport: Transport) -> None:
        self._subscriptions = [
            sub for sub in self._subscriptions if sub.transport is not transport
        ]

    def __len__(self) -> int:
        return len(self._subscriptions)

    # ------------------------------------------------------------------
    def ship(self, heartbeat: bool = False) -> int:
        """Publish every follower's unshipped suffix; returns segments sent.

        With ``heartbeat=True`` an up-to-date follower still receives an
        empty segment, so its staleness clock keeps moving even when the
        primary is idle.
        """
        published = 0
        primary_seq = self.log.last_seq
        now = self.clock()
        for sub in self._subscriptions:
            chunk: list = []
            shipped_any = False
            for operation in self.log.iter_from(sub.shipped_seq):
                if operation.seq != sub.shipped_seq + len(chunk) + 1:
                    raise ReplicationGap(
                        f"log compacted past follower: it has seq "
                        f"{sub.shipped_seq}, oldest shippable is "
                        f"{operation.seq}; re-bootstrap it from a checkpoint"
                    )
                chunk.append(operation)
                if len(chunk) == self.max_segment_ops:
                    published += self._publish_chunk(sub, chunk, primary_seq, now)
                    shipped_any = True
                    chunk = []
            if chunk:
                published += self._publish_chunk(sub, chunk, primary_seq, now)
                shipped_any = True
            if not shipped_any and heartbeat:
                sub.transport.publish(
                    LogSegment.heartbeat(sub.shipped_seq, primary_seq, now)
                )
                published += 1
        return published

    def _publish_chunk(
        self, sub: _Subscription, chunk: list, primary_seq: int, now: float
    ) -> int:
        segment = LogSegment(
            first_seq=chunk[0].seq,
            last_seq=chunk[-1].seq,
            operations=tuple(chunk),
            primary_seq=primary_seq,
            shipped_at=now,
        )
        sub.transport.publish(segment)
        sub.shipped_seq = segment.last_seq
        sub.segments_shipped += 1
        sub.ops_shipped += len(segment)
        return 1

    def stats(self) -> list[dict]:
        """Per-follower shipping counters (telemetry)."""
        return [
            {
                "shipped_seq": sub.shipped_seq,
                "segments_shipped": sub.segments_shipped,
                "ops_shipped": sub.ops_shipped,
                "behind": max(0, self.log.last_seq - sub.shipped_seq),
            }
            for sub in self._subscriptions
        ]
