"""ReplicatedClusteringService: one primary, N read replicas.

The deployment façade for read-heavy traffic: writes (``ingest`` /
``flush`` / ``checkpoint``) go to the durable primary
:class:`~repro.stream.service.ClusteringService`; reads round-robin
across the attached :class:`~repro.replica.replica.ReadReplica`
followers (falling back to the primary while none are attached). A
:class:`~repro.replica.shipper.LogShipper` fans the primary's oplog
out to every follower — snapshots included, so compaction-stranded or
gap-refusing followers are re-seeded over the transport; :meth:`sync`
is the catch-up heartbeat (with in-place gap healing), :meth:`compact`
truncates the log through the newest shipped snapshot, and
:meth:`promote` is follower→primary failover.

Reads are eventually consistent with explicit, queryable staleness
(:meth:`lag`). Cluster *ids* are replica-relative — each restore
re-mints them, exactly like crash recovery does — so cross-query code
should key on object ids (or use :meth:`members_of`, which resolves
id → cluster → members against one replica).
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Callable, Iterable, Sequence

from repro.obs.health import check_replica_lag
from repro.obs.server import ObsServer
from repro.stream.events import Operation
from repro.stream.service import (
    ClusteringService,
    StreamConfig,
    _internal_construction,
    _warn_deprecated_facade,
)
from repro.stream.shard import EngineFactory

from .replica import ReadReplica
from .segment import ReplicationGap
from .shipper import LogShipper
from .transport import InProcessTransport, Transport


class ReplicatedClusteringService:
    """Primary/replica clustering with round-robin read routing.

    Parameters
    ----------
    engine_factory:
        Deterministic per-shard engine factory, shared by the primary
        and every replica.
    config:
        The primary's config. ``oplog_path`` is required — the log is
        the replication stream, so an ephemeral primary has nothing to
        ship.
    max_segment_ops:
        Chunk bound for shipped segments.
    clock:
        Wall-clock source for segment timestamps and staleness
        (injectable for tests).
    """

    def __init__(
        self,
        engine_factory: EngineFactory,
        config: StreamConfig,
        *,
        max_segment_ops: int = 512,
        clock: Callable[[], float] = time.time,
    ) -> None:
        _warn_deprecated_facade(
            "repro.replica.ReplicatedClusteringService", "repro.serve.Service"
        )
        if config.oplog_path is None:
            raise ValueError(
                "replication requires a durable primary: set oplog_path"
            )
        self._factory = engine_factory
        self.clock = clock
        self.max_segment_ops = max_segment_ops
        # The topology serves ONE operational surface for the whole
        # primary → shipper → replicas pipeline, so the listen spec is
        # lifted off the primary's config (it would otherwise bind its
        # own, replica-blind server on the same address).
        listen = config.obs_server
        if listen is not None:
            config = replace(config, obs_server=None)
        with _internal_construction():
            self.primary = ClusteringService(engine_factory, config)
        #: The topology's single telemetry collection point: the
        #: primary's recorder, shared with the shipper and (by default)
        #: every attached replica, so one ``snapshot()`` covers the
        #: whole primary → shipper → replica pipeline.
        self.telemetry = self.primary.telemetry
        #: Topology health: the primary's component checks, plus one
        #: ``replica:<name>`` lag check per attached follower.
        self.health = self.primary.health
        self.obs_server = (
            ObsServer(
                listen,
                telemetry=self.telemetry,
                health=self.health,
                logger=self.primary.logger if self.primary.logger.enabled else None,
            ).start()
            if listen is not None
            else None
        )
        self.shipper = self._build_shipper()
        self.replicas: list[ReadReplica] = []
        self._reader = 0

    @property
    def obs_address(self) -> str | None:
        """Bound ``host:port`` of the obs HTTP server, ``None`` when off."""
        return self.obs_server.address if self.obs_server is not None else None

    def _build_shipper(self) -> LogShipper:
        return LogShipper(
            self.primary.oplog,
            snapshots=self._latest_snapshot,
            max_segment_ops=self.max_segment_ops,
            clock=self.clock,
            obs=self.telemetry,
        )

    def _latest_snapshot(self) -> dict | None:
        """The shipper's snapshot source: the primary's newest checkpoint."""
        if self.primary.checkpoints is None:
            return None
        return self.primary.checkpoints.load_latest()

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def add_replica(
        self,
        config: StreamConfig | None = None,
        *,
        transport: Transport | None = None,
        name: str | None = None,
    ) -> ReadReplica:
        """Attach a follower, bootstrapped from the primary's newest snapshot.

        ``config=None`` attaches a disposable in-memory replica (same
        round-cut parameters, no durable state); pass a config with its
        own ``oplog_path`` / ``checkpoint_dir`` for a follower that can
        survive restarts and be promoted. Divergent round-cut parameters
        are refused up front — a follower cutting different rounds from
        the same log would silently diverge, the replication analogue of
        the recover-time config check.
        """
        name = name or f"replica-{len(self.replicas)}"
        transport = transport or InProcessTransport()
        if config is None:
            # The telemetry *instance* rides along so the replica's
            # spans land in the topology's shared collection point
            # (when telemetry is off this is the no-op singleton, which
            # passes through make_telemetry unchanged).
            config = replace(
                self.primary.config,
                oplog_path=None,
                checkpoint_dir=None,
                fsync=False,
                telemetry=self.telemetry,
            )
        elif config.round_cut_params() != self.primary.config.round_cut_params():
            raise ValueError(
                f"replica {name!r} refused: round-cut parameters "
                f"{config.round_cut_params()} diverge from the primary's "
                f"{self.primary.config.round_cut_params()}"
            )
        elif config.oplog_path is not None and config.checkpoint_dir is None:
            # Refused up front, not just when a snapshot happens to
            # exist at bootstrap: sync()'s gap healing ships snapshots,
            # and a log-only follower cannot accept one (its log would
            # restart past a prefix stored nowhere) — it would wedge
            # behind the first gap forever.
            raise ValueError(
                f"replica {name!r} refused: a durable (oplog) follower "
                "also needs its own checkpoint_dir, or snapshot "
                "shipping/re-sync can never seed it"
            )
        snapshot = (
            self.primary.checkpoints.load_latest()
            if self.primary.checkpoints is not None
            else None
        )
        replica = ReadReplica.bootstrap(
            self._factory,
            config,
            transport,
            snapshot=snapshot,
            name=name,
            clock=self.clock,
        )
        # Ship only what the snapshot doesn't already cover.
        self.shipper.attach(transport, from_seq=replica.received_seq)
        self.replicas.append(replica)
        self.health.register(
            f"replica:{name}",
            check_replica_lag(
                replica.lag,
                max_seq_delta=replica.max_lag_ops,
                max_staleness_s=replica.max_staleness_s,
            ),
        )
        return replica

    def sync(self, heartbeat: bool = True) -> int:
        """Ship unshipped log + have every replica apply it (catch-up).

        Returns the number of operations applied across replicas. With
        ``heartbeat=True`` up-to-date replicas still hear the primary,
        keeping their staleness clocks honest through idle stretches.

        A replica that reports a :class:`ReplicationGap` (its transport
        lost artifacts, or it restarted from state older than its
        shipping cursor) is healed in place: the shipper re-seeds it
        with the newest snapshot and re-ships the suffix. Only when no
        snapshot exists does the gap propagate.
        """
        self.shipper.ship(heartbeat=heartbeat)
        applied = 0
        for replica in self.replicas:
            try:
                applied += replica.poll()
            except ReplicationGap:
                self.shipper.resync(replica.transport)
                self.shipper.ship(heartbeat=False)
                applied += replica.poll()
        return applied

    # ------------------------------------------------------------------
    # Writes — always the primary
    # ------------------------------------------------------------------
    def ingest(self, operations: Iterable[Operation | Sequence]) -> int:
        return self.primary.ingest(operations)

    def flush(self) -> None:
        self.primary.flush()

    def checkpoint(self):
        """Checkpoint the primary, shipping first.

        A checkpoint compacts the primary's log; shipping beforehand
        guarantees compaction can never outrun a follower's cursor and
        strand it behind a gap.
        """
        self.sync(heartbeat=False)
        return self.primary.checkpoint()

    def compact(self) -> dict:
        """Truncate the primary's log as far as every safety floor allows.

        The explicit compaction lever (pair it with
        ``compact_on_checkpoint=False`` to own retention manually). The
        truncation point is the minimum of three floors, each protecting
        a recovery path: the newest *shipped* snapshot (a late joiner's
        bootstrap root — never truncate what hasn't been snapshotted),
        the oldest *retained* checkpoint (the fallback root recovery
        uses when a newer snapshot turns out corrupt — ``keep_checkpoints``
        retains it precisely so the log from its seq forward stays
        replayable), and every attached follower's shipping cursor
        (which the preceding ship brings to the head anyway). Late
        joiners are not stranded: a post-compaction ``attach(from_seq=0)``
        is healed by the shipper publishing the snapshot itself. Returns
        the :meth:`~repro.stream.oplog.LogBackend.truncate_through`
        report (kept ops, reclaimed bytes).
        """
        if self.primary.checkpoints is None:
            raise RuntimeError("compaction requires a primary checkpoint_dir")
        # load_latest is the *readability* gate for a destructive op: a
        # listed-but-corrupt snapshot must not authorise truncation (its
        # seq is not a recovery root). The bound itself never needs the
        # newest seq — the oldest retained is always lower.
        if self.primary.checkpoints.load_latest() is None:
            # No readable snapshot → nothing may be truncated. The
            # service cannot have truncated before its first checkpoint,
            # so last_seq IS the kept count — no log scan, and no
            # truncate_through(0) rewriting the whole file to drop
            # zero records.
            log = self.primary.oplog
            return {
                "truncated_through": 0,
                "kept_ops": log.last_seq,
                "reclaimed_bytes": 0,
                "log_bytes": log.size_bytes(),
            }
        self.sync(heartbeat=False)  # ship the prefix before dropping it
        bound = min(
            self.primary.checkpoints.list_seqs()[:1]  # oldest retained
            + self.shipper.cursors()
        )
        return self.primary.oplog.truncate_through(bound)

    # ------------------------------------------------------------------
    # Reads — round-robin over replicas
    # ------------------------------------------------------------------
    def _next_reader(self):
        if not self.replicas:
            return self.primary
        reader = self.replicas[self._reader % len(self.replicas)]
        self._reader += 1
        return reader

    def cluster_of(self, obj_id: int) -> str | None:
        return self._next_reader().cluster_of(obj_id)

    def members(self, gcid: str) -> frozenset[int]:
        return self._next_reader().members(gcid)

    def members_of(self, obj_id: int) -> frozenset[int]:
        """Peers of an object — id → cluster → members on ONE reader.

        The safe compound query: cluster ids are reader-relative, so
        resolving both halves against the same replica is what makes
        the answer coherent.
        """
        reader = self._next_reader()
        gcid = reader.cluster_of(obj_id)
        return reader.members(gcid) if gcid is not None else frozenset()

    def clusters(self) -> dict[str, frozenset[int]]:
        return self._next_reader().clusters()

    def partition(self) -> frozenset[frozenset[int]]:
        return self._next_reader().partition()

    def num_objects(self) -> int:
        return self._next_reader().num_objects()

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def lag(self) -> list[dict]:
        """Per-replica lag (seq delta + staleness); see :meth:`ReadReplica.lag`."""
        return [replica.lag() for replica in self.replicas]

    def stats(self, legacy: bool = True) -> dict:
        """Topology stats in the canonical cross-layer shape.

        Top-level ``ops_total`` / ``backlog`` / percentile trio describe
        the primary (the write path); the nested per-component dicts
        (``primary``, ``shipping``, ``replicas``) carry the detail.
        """
        primary = self.primary.stats(legacy=legacy)
        return {
            "ops_total": primary["ops_total"],
            "backlog": primary["backlog"],
            "p50_s": primary["p50_s"],
            "p95_s": primary["p95_s"],
            "p99_s": primary["p99_s"],
            "primary": primary,
            "shipping": self.shipper.stats(),
            "replicas": self.lag(),
        }

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------
    def promote(self, index: int = 0) -> ClusteringService:
        """Fail over to ``replicas[index]``: follower becomes primary.

        Best-effort final sync, then the chosen (durable) replica
        rebuilds itself through the crash-recovery path and takes over
        writes; the old primary is closed and the remaining replicas
        re-attach to the new primary's log — their cursors stay valid
        because replication preserves sequence numbers exactly.
        """
        if not self.replicas:
            raise ValueError("no replicas to promote")
        chosen = self.replicas[index]
        if chosen.service.oplog is None:
            raise ValueError(
                f"{chosen.name} is ephemeral (no oplog); only a durable "
                "replica can be promoted"
            )
        # In a clean failover (primary still alive) drain everything
        # committed; in a disaster the caller promotes whatever shipped.
        self.sync(heartbeat=False)
        self.replicas.pop(index)
        self.shipper.detach(chosen.transport)
        old_primary = self.primary
        self.primary = chosen.promote()
        old_primary.close()
        chosen.transport.close()
        # The new primary's recorder becomes the collection point (the
        # same instance when the promoted follower shared it).
        self.telemetry = self.primary.telemetry
        # Same for the operational surface: the new primary's health
        # registry takes over (re-acquiring every surviving replica's
        # lag check), and a live obs server is re-pointed, not restarted
        # — its address survives the failover.
        self.health = self.primary.health
        for replica in self.replicas:
            self.health.register(
                f"replica:{replica.name}",
                check_replica_lag(
                    replica.lag,
                    max_seq_delta=replica.max_lag_ops,
                    max_staleness_s=replica.max_staleness_s,
                ),
            )
        if self.obs_server is not None:
            self.obs_server.telemetry = self.telemetry
            self.obs_server.health = self.health
        self.shipper = self._build_shipper()
        for replica in self.replicas:
            self.shipper.attach(replica.transport, from_seq=replica.received_seq)
        return self.primary

    def close(self) -> None:
        if self.obs_server is not None:
            self.obs_server.close()
        self.primary.close()
        for replica in self.replicas:
            replica.close()

    def __enter__(self) -> "ReplicatedClusteringService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
