"""ReplicatedClusteringService: one primary, N read replicas.

The deployment façade for read-heavy traffic: writes (``ingest`` /
``flush`` / ``checkpoint``) go to the durable primary
:class:`~repro.stream.service.ClusteringService`; reads round-robin
across the attached :class:`~repro.replica.replica.ReadReplica`
followers (falling back to the primary while none are attached). A
:class:`~repro.replica.shipper.LogShipper` fans the primary's oplog
out to every follower; :meth:`sync` is the catch-up heartbeat, and
:meth:`promote` is follower→primary failover.

Reads are eventually consistent with explicit, queryable staleness
(:meth:`lag`). Cluster *ids* are replica-relative — each restore
re-mints them, exactly like crash recovery does — so cross-query code
should key on object ids (or use :meth:`members_of`, which resolves
id → cluster → members against one replica).
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Callable, Iterable, Sequence

from repro.stream.events import Operation
from repro.stream.service import ClusteringService, StreamConfig
from repro.stream.shard import EngineFactory

from .replica import ReadReplica
from .shipper import LogShipper
from .transport import InProcessTransport, Transport


class ReplicatedClusteringService:
    """Primary/replica clustering with round-robin read routing.

    Parameters
    ----------
    engine_factory:
        Deterministic per-shard engine factory, shared by the primary
        and every replica.
    config:
        The primary's config. ``oplog_path`` is required — the log is
        the replication stream, so an ephemeral primary has nothing to
        ship.
    max_segment_ops:
        Chunk bound for shipped segments.
    clock:
        Wall-clock source for segment timestamps and staleness
        (injectable for tests).
    """

    def __init__(
        self,
        engine_factory: EngineFactory,
        config: StreamConfig,
        *,
        max_segment_ops: int = 512,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if config.oplog_path is None:
            raise ValueError(
                "replication requires a durable primary: set oplog_path"
            )
        self._factory = engine_factory
        self.clock = clock
        self.max_segment_ops = max_segment_ops
        self.primary = ClusteringService(engine_factory, config)
        self.shipper = LogShipper(
            self.primary.oplog, max_segment_ops=max_segment_ops, clock=clock
        )
        self.replicas: list[ReadReplica] = []
        self._reader = 0

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def add_replica(
        self,
        config: StreamConfig | None = None,
        *,
        transport: Transport | None = None,
        name: str | None = None,
    ) -> ReadReplica:
        """Attach a follower, bootstrapped from the primary's newest snapshot.

        ``config=None`` attaches a disposable in-memory replica (same
        round-cut parameters, no durable state); pass a config with its
        own ``oplog_path`` / ``checkpoint_dir`` for a follower that can
        survive restarts and be promoted. Divergent round-cut parameters
        are refused up front — a follower cutting different rounds from
        the same log would silently diverge, the replication analogue of
        the recover-time config check.
        """
        name = name or f"replica-{len(self.replicas)}"
        transport = transport or InProcessTransport()
        if config is None:
            config = replace(
                self.primary.config, oplog_path=None, checkpoint_dir=None, fsync=False
            )
        elif config.round_cut_params() != self.primary.config.round_cut_params():
            raise ValueError(
                f"replica {name!r} refused: round-cut parameters "
                f"{config.round_cut_params()} diverge from the primary's "
                f"{self.primary.config.round_cut_params()}"
            )
        snapshot = (
            self.primary.checkpoints.load_latest()
            if self.primary.checkpoints is not None
            else None
        )
        replica = ReadReplica.bootstrap(
            self._factory,
            config,
            transport,
            snapshot=snapshot,
            name=name,
            clock=self.clock,
        )
        # Ship only what the snapshot doesn't already cover.
        self.shipper.attach(transport, from_seq=replica.received_seq)
        self.replicas.append(replica)
        return replica

    def sync(self, heartbeat: bool = True) -> int:
        """Ship unshipped log + have every replica apply it (catch-up).

        Returns the number of operations applied across replicas. With
        ``heartbeat=True`` up-to-date replicas still hear the primary,
        keeping their staleness clocks honest through idle stretches.
        """
        self.shipper.ship(heartbeat=heartbeat)
        return sum(replica.poll() for replica in self.replicas)

    # ------------------------------------------------------------------
    # Writes — always the primary
    # ------------------------------------------------------------------
    def ingest(self, operations: Iterable[Operation | Sequence]) -> int:
        return self.primary.ingest(operations)

    def flush(self) -> None:
        self.primary.flush()

    def checkpoint(self):
        """Checkpoint the primary, shipping first.

        A checkpoint compacts the primary's log; shipping beforehand
        guarantees compaction can never outrun a follower's cursor and
        strand it behind a gap.
        """
        self.sync(heartbeat=False)
        return self.primary.checkpoint()

    # ------------------------------------------------------------------
    # Reads — round-robin over replicas
    # ------------------------------------------------------------------
    def _next_reader(self):
        if not self.replicas:
            return self.primary
        reader = self.replicas[self._reader % len(self.replicas)]
        self._reader += 1
        return reader

    def cluster_of(self, obj_id: int) -> str | None:
        return self._next_reader().cluster_of(obj_id)

    def members(self, gcid: str) -> frozenset[int]:
        return self._next_reader().members(gcid)

    def members_of(self, obj_id: int) -> frozenset[int]:
        """Peers of an object — id → cluster → members on ONE reader.

        The safe compound query: cluster ids are reader-relative, so
        resolving both halves against the same replica is what makes
        the answer coherent.
        """
        reader = self._next_reader()
        gcid = reader.cluster_of(obj_id)
        return reader.members(gcid) if gcid is not None else frozenset()

    def clusters(self) -> dict[str, frozenset[int]]:
        return self._next_reader().clusters()

    def partition(self) -> frozenset[frozenset[int]]:
        return self._next_reader().partition()

    def num_objects(self) -> int:
        return self._next_reader().num_objects()

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def lag(self) -> list[dict]:
        """Per-replica lag (seq delta + staleness); see :meth:`ReadReplica.lag`."""
        return [replica.lag() for replica in self.replicas]

    def stats(self) -> dict:
        return {
            "primary": self.primary.stats(),
            "shipping": self.shipper.stats(),
            "replicas": self.lag(),
        }

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------
    def promote(self, index: int = 0) -> ClusteringService:
        """Fail over to ``replicas[index]``: follower becomes primary.

        Best-effort final sync, then the chosen (durable) replica
        rebuilds itself through the crash-recovery path and takes over
        writes; the old primary is closed and the remaining replicas
        re-attach to the new primary's log — their cursors stay valid
        because replication preserves sequence numbers exactly.
        """
        if not self.replicas:
            raise ValueError("no replicas to promote")
        chosen = self.replicas[index]
        if chosen.service.oplog is None:
            raise ValueError(
                f"{chosen.name} is ephemeral (no oplog); only a durable "
                "replica can be promoted"
            )
        # In a clean failover (primary still alive) drain everything
        # committed; in a disaster the caller promotes whatever shipped.
        self.sync(heartbeat=False)
        self.replicas.pop(index)
        self.shipper.detach(chosen.transport)
        old_primary = self.primary
        self.primary = chosen.promote()
        old_primary.close()
        chosen.transport.close()
        self.shipper = LogShipper(
            self.primary.oplog, max_segment_ops=self.max_segment_ops, clock=self.clock
        )
        for replica in self.replicas:
            self.shipper.attach(replica.transport, from_seq=replica.received_seq)
        return self.primary

    def close(self) -> None:
        self.primary.close()
        for replica in self.replicas:
            replica.close()

    def __enter__(self) -> "ReplicatedClusteringService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
