"""Artifact transports: how shipped log slices and snapshots reach a follower.

A transport is one ordered primary→follower channel with at-least-once
delivery; the follower's gap/duplicate handling makes consumption
exactly-once. It carries two artifact kinds — :class:`LogSegment` and
:class:`SnapshotArtifact` — so a follower can be bootstrapped and
re-synced over the channel alone. Two implementations:

* :class:`InProcessTransport` — a deque, for replicas living in the
  primary's process (the common read-scaling deployment here);
* :class:`MailboxTransport` — a spool directory of one-file-per-artifact
  JSON, atomically published (temp + rename), so a follower in another
  process — or on another machine via a shared/synced filesystem — can
  tail the primary with no network stack at all.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
from collections import deque

from repro.faults.inject import fire
from repro.obs.telemetry import NULL_TELEMETRY
from repro.stream.checkpoint import fsync_directory

from .segment import LogSegment, SnapshotArtifact

_SEGMENT_FILE = re.compile(r"^segment-(\d+)-(\d+)\.json$")
_SNAPSHOT_FILE = re.compile(r"^snapshot-(\d+)\.json$")


class Transport:
    """One primary→follower artifact channel."""

    def publish(self, artifact) -> None:
        """Make a segment or snapshot available to the follower (primary side)."""
        raise NotImplementedError

    def poll(self) -> list:
        """Drain everything published since the last poll, in order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release transport resources (default: nothing held)."""


class InProcessTransport(Transport):
    """Same-process channel: an unbounded FIFO of artifacts."""

    def __init__(self) -> None:
        self._queue: deque = deque()

    def __len__(self) -> int:
        return len(self._queue)

    def publish(self, artifact) -> None:
        fire("ship.publish")
        self._queue.append(artifact)

    def poll(self) -> list:
        fire("ship.poll")
        # Drain by popping, never snapshot-then-clear: an artifact
        # published between a ``list(...)`` copy and the ``clear()``
        # (another thread's shipper) would be silently dropped.
        drained = []
        queue = self._queue
        while True:
            try:
                drained.append(queue.popleft())
            except IndexError:
                return drained


def _spool_key(path: pathlib.Path) -> tuple:
    """Numeric consumption order for a spool file.

    Parsed from the name, never the directory listing or mtime: zero
    padding keeps *pretty* listings sorted, but files outlive the
    padding width (a 13-digit seq vs a 12-digit one compares wrong
    lexicographically) and same-second publishes collide on mtime, so
    the only trustworthy order is the numbers themselves. A snapshot at
    seq S sorts before a segment starting at S: restoring the snapshot
    first lets the segment's suffix apply on top.
    """
    match = _SEGMENT_FILE.match(path.name)
    if match:
        return (int(match.group(1)), 1, int(match.group(2)))
    match = _SNAPSHOT_FILE.match(path.name)
    if match:
        seq = int(match.group(1))
        return (seq, 0, seq)
    return (float("inf"), 2, 0)  # unrecognised; globs should preclude this


class MailboxTransport(Transport):
    """Filesystem spool: one atomically-renamed JSON file per artifact.

    File names embed the zero-padded seq range (``segment-first-last``)
    or snapshot position (``snapshot-appliedseq``); consumption order is
    recovered by *parsing* those numbers — see :func:`_spool_key`.
    Heartbeats (``last < first``) sort before a data segment starting at
    the same seq and overwrite older heartbeats at the same position
    instead of piling up. ``poll`` consumes: each file is deleted once
    read. A file that fails to decode (rename-atomicity means a crash
    can't produce one — this is media damage or a non-atomic copy) is
    quarantined aside as ``*.quarantined`` rather than re-read forever
    or treated as fatal.
    """

    def __init__(self, directory) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        #: Undecodable files set aside by this instance (telemetry).
        self.quarantined = 0
        #: Observability recorder; the owning follower/replica replaces
        #: it so quarantines land on ``transport_quarantined_total``
        #: instead of only the bare attribute.
        self.obs = NULL_TELEMETRY

    def _name_for(self, artifact) -> str:
        if isinstance(artifact, SnapshotArtifact):
            return f"snapshot-{artifact.applied_seq:012d}.json"
        return (
            f"segment-{artifact.first_seq:012d}-"
            f"{max(artifact.last_seq, 0):012d}.json"
        )

    def publish(self, artifact) -> None:
        path = self.directory / self._name_for(artifact)
        fire("ship.publish", path)
        temp = path.with_name(path.name + ".tmp")
        with open(temp, "w", encoding="utf-8") as handle:
            json.dump(artifact.to_dict(), handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, path)
        # The dirent must survive power loss too: the shipper advances
        # its cursor (and compaction may drop the log prefix) on the
        # strength of this publish having happened.
        fsync_directory(self.directory)

    def pending(self) -> list[pathlib.Path]:
        paths = list(self.directory.glob("segment-*.json"))
        paths.extend(self.directory.glob("snapshot-*.json"))
        return sorted(paths, key=_spool_key)

    def _quarantine(self, path: pathlib.Path) -> None:
        try:
            path.rename(path.with_name(path.name + ".quarantined"))
        except OSError:
            return  # vanished under us; nothing left to set aside
        self.quarantined += 1
        if self.obs.enabled:
            self.obs.counter(
                "transport_quarantined_total",
                help="Undecodable spool files set aside by MailboxTransport",
            ).inc()

    def poll(self) -> list:
        # Fired before anything is consumed: an injected poll error
        # models the whole spool being unreachable (a synced-filesystem
        # blip), propagates to the follower's retry policy, and leaves
        # every artifact pending for the attempt that succeeds.
        fire("ship.poll", self.directory)
        artifacts = []
        for path in self.pending():
            loader = (
                SnapshotArtifact if _SNAPSHOT_FILE.match(path.name) else LogSegment
            )
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    data = json.load(handle)
                artifact = loader.from_dict(data)
            except OSError:
                # Transient I/O (fd pressure, a lock on a synced spool,
                # the file vanished): nothing proves the file is bad, so
                # leave it pending and retry on a later poll — and stop
                # the drain here. Consuming later files past a skipped
                # one would deliver out of order and delete segments the
                # follower must refuse, turning a retryable blip into a
                # forced snapshot re-sync.
                break
            except (ValueError, KeyError, TypeError):
                # Provenly damaged content (ValueError covers JSON and
                # unicode decode errors, the rest are malformed
                # artifact dicts). Quarantine instead of deleting
                # (evidence survives) and instead of skipping in place
                # (which would re-parse it on every poll forever).
                self._quarantine(path)
                continue
            artifacts.append(artifact)
            try:
                path.unlink()
            except OSError:
                # Delivered but not consumed (a lock, or the file taken
                # from under us). Leaving it is safe — redelivery is
                # duplicate-tolerant on the follower — whereas raising
                # here would throw away everything drained so far.
                pass
        return artifacts
