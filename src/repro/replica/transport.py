"""Segment transports: how shipped log slices reach a follower.

A transport is one ordered primary→follower channel with at-least-once
delivery; the follower's gap/duplicate handling makes consumption
exactly-once. Two implementations:

* :class:`InProcessTransport` — a deque, for replicas living in the
  primary's process (the common read-scaling deployment here);
* :class:`MailboxTransport` — a spool directory of one-file-per-segment
  JSON, atomically published (temp + rename), so a follower in another
  process — or on another machine via a shared/synced filesystem — can
  tail the primary with no network stack at all.
"""

from __future__ import annotations

import json
import os
import pathlib
from collections import deque

from .segment import LogSegment


class Transport:
    """One primary→follower segment channel."""

    def publish(self, segment: LogSegment) -> None:
        """Make a segment available to the follower (primary side)."""
        raise NotImplementedError

    def poll(self) -> list[LogSegment]:
        """Drain everything published since the last poll, in order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release transport resources (default: nothing held)."""


class InProcessTransport(Transport):
    """Same-process channel: an unbounded FIFO of segments."""

    def __init__(self) -> None:
        self._queue: deque[LogSegment] = deque()

    def __len__(self) -> int:
        return len(self._queue)

    def publish(self, segment: LogSegment) -> None:
        self._queue.append(segment)

    def poll(self) -> list[LogSegment]:
        drained = list(self._queue)
        self._queue.clear()
        return drained


class MailboxTransport(Transport):
    """Filesystem spool: one atomically-renamed JSON file per segment.

    File names embed the zero-padded seq range, so a plain sorted
    directory listing recovers publish order; heartbeats (``last <
    first``) sort before a data segment starting at the same seq and
    overwrite older heartbeats at the same position instead of piling
    up. ``poll`` consumes: each file is deleted once read.
    """

    def __init__(self, directory) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _name_for(self, segment: LogSegment) -> str:
        return f"segment-{segment.first_seq:012d}-{max(segment.last_seq, 0):012d}.json"

    def publish(self, segment: LogSegment) -> None:
        path = self.directory / self._name_for(segment)
        temp = path.with_suffix(".json.tmp")
        with open(temp, "w", encoding="utf-8") as handle:
            json.dump(segment.to_dict(), handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, path)

    def pending(self) -> list[pathlib.Path]:
        return sorted(self.directory.glob("segment-*.json"))

    def poll(self) -> list[LogSegment]:
        segments = []
        for path in self.pending():
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    segments.append(LogSegment.from_dict(json.load(handle)))
            except (json.JSONDecodeError, OSError):
                # A publisher died mid-write before the rename, or the
                # file vanished under us; rename-atomicity means a
                # readable file is always complete, so skip quietly.
                continue
            path.unlink()
        return segments
