"""repro.replica — oplog shipping, read replicas, and failover.

Builds on :mod:`repro.stream`'s log-first design: the operation log is
the only hard state, so *anything that can read the log can serve
reads*. This package turns that property into a primary/replica system:

* :mod:`repro.replica.segment` — the shipping artifacts:
  :class:`LogSegment` (contiguous, self-validating log slice) and
  :class:`SnapshotArtifact` (a whole checkpoint over the wire), plus
  :class:`ReplicationGap`;
* :mod:`repro.replica.transport` — artifact channels: in-process queue
  and filesystem mailbox (cross-process, no network stack, torn files
  quarantined);
* :mod:`repro.replica.shipper` — :class:`LogShipper`, per-follower
  cursors over the primary's committed log suffix; compaction gaps
  healed by shipping the newest snapshot, :meth:`~LogShipper.resync`
  for follower-side gaps;
* :mod:`repro.replica.replica` — :class:`ReadReplica`: transport-only
  bootstrap/re-sync from shipped snapshots, gap-refusing tailing,
  explicit :meth:`~ReadReplica.lag`, and :meth:`~ReadReplica.promote`
  failover;
* :mod:`repro.replica.service` — :class:`ReplicatedClusteringService`,
  the one-primary/N-replica façade with round-robin read routing,
  self-healing :meth:`~ReplicatedClusteringService.sync`,
  snapshot-bounded :meth:`~ReplicatedClusteringService.compact`, and —
  with ``StreamConfig(obs_server=...)`` — one topology-wide HTTP
  operational surface (metrics, traces, per-replica health);
* :mod:`repro.replica.follower` — :class:`FollowerDaemon` /
  ``python -m repro.replica.follower``: a standalone mailbox follower
  on a poll timer, serving its own endpoints, with readiness gated on
  bootstrap.
"""

from .replica import ReadReplica
from .segment import LogSegment, ReplicationGap, SnapshotArtifact
from .service import ReplicatedClusteringService
from .shipper import LogShipper
from .transport import InProcessTransport, MailboxTransport, Transport


def __getattr__(name):
    # Lazy so `python -m repro.replica.follower` doesn't import the
    # module twice (package import + runpy execution would warn).
    if name == "FollowerDaemon":
        from .follower import FollowerDaemon

        return FollowerDaemon
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "FollowerDaemon",
    "InProcessTransport",
    "LogSegment",
    "LogShipper",
    "MailboxTransport",
    "ReadReplica",
    "ReplicatedClusteringService",
    "ReplicationGap",
    "SnapshotArtifact",
    "Transport",
]
