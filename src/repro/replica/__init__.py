"""repro.replica — oplog shipping, read replicas, and failover.

Builds on :mod:`repro.stream`'s log-first design: the operation log is
the only hard state, so *anything that can read the log can serve
reads*. This package turns that property into a primary/replica system:

* :mod:`repro.replica.segment` — :class:`LogSegment`, the contiguous,
  self-validating unit of shipping (+ :class:`ReplicationGap`);
* :mod:`repro.replica.transport` — segment channels: in-process queue
  and filesystem mailbox (cross-process, no network stack);
* :mod:`repro.replica.shipper` — :class:`LogShipper`, per-follower
  cursors over the primary's committed log suffix;
* :mod:`repro.replica.replica` — :class:`ReadReplica`: checkpoint
  bootstrap, gap-refusing tailing, explicit :meth:`~ReadReplica.lag`,
  and :meth:`~ReadReplica.promote` failover;
* :mod:`repro.replica.service` — :class:`ReplicatedClusteringService`,
  the one-primary/N-replica façade with round-robin read routing.
"""

from .replica import ReadReplica
from .segment import LogSegment, ReplicationGap
from .service import ReplicatedClusteringService
from .shipper import LogShipper
from .transport import InProcessTransport, MailboxTransport, Transport

__all__ = [
    "InProcessTransport",
    "LogSegment",
    "LogShipper",
    "MailboxTransport",
    "ReadReplica",
    "ReplicatedClusteringService",
    "ReplicationGap",
    "Transport",
]
