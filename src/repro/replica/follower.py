"""Standalone mailbox follower: ``python -m repro.replica.follower``.

The multi-process half of the serving story: a primary publishes
segments and snapshots into a spool directory
(:class:`~repro.replica.transport.MailboxTransport`), and this daemon —
running in another process, or on another machine over a synced
filesystem — tails the spool on a poll timer, applies what arrives to
its own :class:`~repro.replica.replica.ReadReplica`, and serves its own
operational surface (``/metrics``, ``/metrics.json``, ``/traces``,
``/healthz``, ``/readyz``) over HTTP.

Readiness is gated on bootstrap: ``/readyz`` answers 503 until the
follower's first successful drain of the spool has given it something
to serve (a snapshot restore, applied segments, or at minimum a
heartbeat proving a live primary) — so a load balancer never routes
reads to a follower that is still an empty engine. After the gate
opens, readiness follows the health checks (replication lag bounds,
spool consumability, the replica's own storage).

The engine factory must be the *same deterministic factory the primary
uses* or replayed rounds diverge; pass it as ``--factory module:attr``.
The built-in :func:`demo_factory` pairs with
``examples/replicated_service.py``-style demo primaries and exists so
the daemon can be exercised end-to-end without writing a module first.

Quickstart (two shells)::

    # shell 1: a primary shipping into the spool via MailboxTransport
    # shell 2:
    python -m repro.replica.follower --spool /tmp/spool \\
        --listen 127.0.0.1:9100 --factory myproject.engines:factory
    curl -s localhost:9100/readyz | python -m json.tool
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time
from typing import Callable

from repro.errors import DurabilityError
from repro.faults.retry import RetryPolicy
from repro.obs.health import CheckResult, HealthRegistry, degraded, failing, ok
from repro.obs.logging import NULL_LOGGER, StructuredLogger
from repro.obs.server import ObsServer
from repro.stream.service import StreamConfig
from repro.stream.shard import EngineFactory

from .replica import ReadReplica
from .segment import ReplicationGap
from .transport import MailboxTransport


class FollowerDaemon:
    """A poll-timer mailbox follower with its own operational surface.

    Parameters
    ----------
    engine_factory:
        The primary's deterministic engine factory.
    config:
        The follower's :class:`~repro.stream.service.StreamConfig`;
        round-cut parameters must match the primary's. ``obs_server``
        here is ignored — the daemon owns the HTTP surface via
        ``listen`` so it survives the service replacements a snapshot
        restore performs.
    spool:
        The spool directory the primary's
        :class:`~repro.replica.transport.MailboxTransport` publishes
        into.
    listen:
        ``"host:port"`` for this follower's endpoints; ``None`` serves
        nothing (useful under tests driving :meth:`run_once` directly).
    poll_interval:
        Seconds between spool drains in :meth:`run`.
    retry:
        :class:`~repro.faults.RetryPolicy` around each spool drain, so
        a transient read error heals under backoff within one
        :meth:`run_once` instead of waiting a whole poll interval.
        Exhaustion degrades the ``spool`` health check rather than
        killing the daemon.
    """

    def __init__(
        self,
        engine_factory: EngineFactory,
        config: StreamConfig,
        spool,
        *,
        name: str = "follower",
        listen: str | None = None,
        poll_interval: float = 0.5,
        tenant: str | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        if poll_interval <= 0:
            raise ValueError("poll_interval must be > 0")
        self.name = name
        self.poll_interval = poll_interval
        self.retry = retry if retry is not None else RetryPolicy()
        self.transport = MailboxTransport(spool)
        self.replica = ReadReplica(
            engine_factory, config, self.transport, name=name, tenant=tenant
        )
        # Quarantines land on transport_quarantined_total, not only the
        # bare attribute (satellite of the fault-tolerance story).
        self.transport.obs = self.replica.obs
        self.logger = (
            self.replica.service.logger.child(f"follower.{name}")
            if self.replica.service.logger.enabled
            else NULL_LOGGER
        )
        self.polls = 0
        self.ops_applied = 0
        #: Opens once the first successful drain leaves the follower
        #: with something to serve; gates ``/readyz``.
        self.bootstrapped = False
        #: Unhealed gap from the last drain (needs a primary-side
        #: resync); cleared by the next successful poll.
        self.gap: str | None = None
        #: Last drain's retry-exhausted error (spool I/O kept failing);
        #: degrades the ``spool`` check until a drain succeeds.
        self.poll_error: str | None = None
        # The daemon's own registry delegates to the *live* service's
        # checks (the replica replaces its service on snapshot restore,
        # registry and all), and adds the spool + bootstrap gate.
        self.health = HealthRegistry(ready_when=lambda: self.bootstrapped)
        self.health.register("spool", self._check_spool)
        self.health.register("service", self._check_service)
        self.obs_server = (
            ObsServer(
                listen,
                telemetry=self.replica.obs,
                health=self.health,
                logger=self.logger if self.logger.enabled else None,
            ).start()
            if listen is not None
            else None
        )

    @property
    def obs_address(self) -> str | None:
        return self.obs_server.address if self.obs_server is not None else None

    # ------------------------------------------------------------------
    def _check_spool(self) -> CheckResult:
        data = {
            "pending": len(self.transport.pending()),
            "quarantined": self.transport.quarantined,
        }
        if self.gap is not None:
            return failing(self.gap, **data)
        if self.poll_error is not None:
            return degraded(self.poll_error, **data)
        if self.transport.quarantined:
            return degraded(
                f"{self.transport.quarantined} artifacts quarantined", **data
            )
        return ok("consumable", **data)

    def _check_service(self) -> CheckResult:
        report = self.replica.service.health.report()
        status = report["status"]
        detail = ", ".join(
            f"{name}: {check['status']}" for name, check in report["checks"].items()
        )
        return CheckResult(status, detail, {"checks": report["checks"]})

    # ------------------------------------------------------------------
    def run_once(self) -> int:
        """Drain the spool once; returns operations applied.

        A :class:`ReplicationGap` does not kill the daemon — the
        follower keeps serving its (stale but consistent) state, the
        ``spool`` check turns failing so ``/readyz`` flips to 503, and
        the next successful drain (after a primary-side resync ships a
        bridging snapshot) clears it.
        """
        self.polls += 1
        try:
            applied = self.retry.run(
                self.replica.poll, boundary="ship.poll", obs=self.replica.obs
            )
        except ReplicationGap as exc:
            self.gap = str(exc)
            if self.logger.enabled:
                self.logger.error("replication_gap", detail=str(exc))
            return 0
        except DurabilityError as exc:
            # Spool I/O kept failing past the retry budget: keep serving
            # stale-but-consistent state, flag the spool check, and let
            # the next poll tick try again.
            self.poll_error = str(exc)
            if self.logger.enabled:
                self.logger.error("spool_poll_exhausted", detail=str(exc))
            return 0
        self.gap = None
        self.poll_error = None
        self.ops_applied += applied
        if not self.bootstrapped and (
            self.replica.received_seq > 0
            or self.replica.last_heard_at is not None
        ):
            self.bootstrapped = True
            if self.logger.enabled:
                self.logger.info(
                    "follower_ready",
                    received_seq=self.replica.received_seq,
                    snapshots_applied=self.replica.snapshots_applied,
                )
        if applied and self.logger.enabled:
            lag = self.replica.lag()
            self.logger.info(
                "spool_applied",
                ops=applied,
                received_seq=self.replica.received_seq,
                visibility_lag_s=lag["visibility_lag_s"],
            )
        return applied

    def run(
        self,
        *,
        max_polls: int | None = None,
        should_stop: Callable[[], bool] | None = None,
    ) -> None:
        """Poll forever (or ``max_polls`` times), sleeping between drains."""
        while max_polls is None or self.polls < max_polls:
            if should_stop is not None and should_stop():
                return
            self.run_once()
            if max_polls is not None and self.polls >= max_polls:
                return
            time.sleep(self.poll_interval)

    def stats(self) -> dict:
        return {
            "name": self.name,
            "polls": self.polls,
            "ops_applied": self.ops_applied,
            "bootstrapped": self.bootstrapped,
            "gap": self.gap,
            "poll_error": self.poll_error,
            "obs_address": self.obs_address,
            "replica": self.replica.lag(),
        }

    def close(self) -> None:
        if self.obs_server is not None:
            self.obs_server.close()
        self.replica.close()

    def __enter__(self) -> "FollowerDaemon":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def demo_factory():
    """A deterministic demo engine (pairs with the demo/test primaries).

    Deliberately tiny: the access-profile dataset with a fixed seed, a
    DB-index objective, DynamicC seed 0 — matching the factories the
    examples and replication tests build, so a demo primary and this
    CLI agree without a shared module.
    """
    from repro.clustering.objectives import DBIndexObjective
    from repro.core import DynamicC
    from repro.data.generators import generate_access

    dataset = generate_access(n_profiles=8, n_records=500, seed=3)
    return DynamicC(dataset.graph(), DBIndexObjective(), seed=0)


def load_factory(spec: str) -> EngineFactory:
    """Resolve ``module:attr`` (or ``module.attr``) to an engine factory."""
    module_name, sep, attr = spec.partition(":")
    if not sep:
        module_name, _, attr = spec.rpartition(".")
        if not module_name:
            raise SystemExit(f"--factory must look like module:attr, got {spec!r}")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise SystemExit(f"cannot import factory module {module_name!r}: {exc}")
    try:
        return getattr(module, attr)
    except AttributeError:
        raise SystemExit(f"module {module_name!r} has no attribute {attr!r}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.replica.follower",
        description="Mailbox follower: tail a spool directory, serve "
        "read-replica health/metrics over HTTP.",
    )
    parser.add_argument("--spool", required=True, help="spool directory the primary ships into")
    parser.add_argument("--listen", default="127.0.0.1:0", help="host:port for /metrics, /healthz, /readyz… (default: loopback, free port)")
    parser.add_argument("--name", default="follower", help="this follower's name (metrics label, log component)")
    parser.add_argument("--factory", default=None, help="engine factory as module:attr (default: built-in demo factory)")
    parser.add_argument("--poll-interval", type=float, default=0.5, help="seconds between spool drains")
    parser.add_argument("--max-polls", type=int, default=None, help="exit after this many drains (default: run forever)")
    parser.add_argument("--oplog", default=None, help="follower's own oplog path (durable follower)")
    parser.add_argument("--checkpoints", default=None, help="follower's own checkpoint dir (required with --oplog)")
    parser.add_argument("--log-backend", default="jsonl", help="oplog backend: jsonl or sqlite")
    parser.add_argument("--shards", type=int, default=2, help="n_shards (must match the primary)")
    parser.add_argument("--batch-max-ops", type=int, default=256, help="round-cut budget (must match the primary)")
    parser.add_argument("--train-rounds", type=int, default=3, help="warmup rounds (must match the primary)")
    parser.add_argument("--tenant", default=None, help="follow only this tenant's operations out of a shared multi-tenant spool (repro.serve primaries); implies an ephemeral follower (no --oplog)")
    parser.add_argument("--telemetry", action="store_true", help="collect span latencies and traces")
    parser.add_argument("--quiet", action="store_true", help="suppress structured logs on stderr")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    factory = load_factory(args.factory) if args.factory else demo_factory
    config = StreamConfig(
        n_shards=args.shards,
        batch_max_ops=args.batch_max_ops,
        train_rounds=args.train_rounds,
        oplog_path=args.oplog,
        checkpoint_dir=args.checkpoints,
        log_backend=args.log_backend,
        telemetry="on" if args.telemetry else None,
        node_name=args.name,
        log_stream=None if args.quiet else sys.stderr,
    )
    if args.tenant is not None and args.oplog is not None:
        raise SystemExit("--tenant followers are ephemeral: drop --oplog")
    daemon = FollowerDaemon(
        factory,
        config,
        args.spool,
        name=args.name,
        listen=args.listen,
        poll_interval=args.poll_interval,
        tenant=args.tenant,
    )
    print(
        f"follower {args.name!r} tailing {args.spool} — "
        f"endpoints at http://{daemon.obs_address}",
        file=sys.stderr,
    )
    try:
        daemon.run(max_polls=args.max_polls)
    except KeyboardInterrupt:
        pass
    finally:
        daemon.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
