"""ServeConfig: the one consolidated configuration for :mod:`repro.serve`.

Subsumes the knobs previously spread across ``StreamConfig`` keyword
soup, replication wiring and obs kwargs. The serve layer owns the
storage layout: callers name a ``root_dir`` and the service derives the
shared operation log (``<root>/oplog.*``) and per-tenant checkpoint
directories (``<root>/tenants/<name>/checkpoints``) from it — the old
``oplog_path`` / ``checkpoint_dir`` knobs are deliberately absent and
:meth:`ServeConfig.from_kwargs` converts attempts to pass them into
actionable :class:`~repro.errors.ConfigError` messages.

Validation is funnelled through one point: serve-level constraints are
checked here, and the shared streaming knobs are delegated to
``StreamConfig.__post_init__`` by building the per-tenant template —
so a bad ``router=`` or ``log_backend=`` fails identically whether it
arrives through the old or the new API.
"""

from __future__ import annotations

import difflib
import pathlib
from dataclasses import dataclass, fields
from typing import Any

from repro.errors import ConfigError
from repro.obs.server import parse_listen
from repro.stream.service import StreamConfig

#: Pre-serve knobs whose replacement is structural, not a rename.
_RETIRED_KWARGS = {
    "oplog_path": (
        "the serve layer owns the storage layout: pass root_dir=... and "
        "the shared multi-tenant oplog lives at <root_dir>/oplog.<backend>"
    ),
    "checkpoint_dir": (
        "the serve layer owns the storage layout: pass root_dir=... and "
        "each tenant checkpoints under <root_dir>/tenants/<name>/checkpoints"
    ),
    "replicas": (
        "replicas are attached per tenant at runtime — "
        'service.tenant("name").add_replica(...) — not configured up front'
    ),
}


@dataclass
class ServeConfig:
    """Tunables for :class:`repro.serve.Service`.

    Attributes
    ----------
    engine_factory:
        Zero-argument callable building one fresh deterministic
        :class:`~repro.core.dynamicc.DynamicC`; called once per shard
        per tenant. Determinism is what makes per-tenant recovery,
        eviction reload and replica catch-up exact.
    n_shards, batch_max_ops, batch_max_age, train_rounds, router:
        Per-tenant engine-pool knobs, identical in meaning to their
        :class:`~repro.stream.StreamConfig` counterparts; every tenant
        runs the same round-cut parameters (they are the replay
        contract).
    root_dir:
        Durable-state root. ``None`` runs the whole service ephemerally
        (no shared log, no checkpoints, no eviction). When set, the
        shared tenant-stamped oplog and every tenant's checkpoints live
        under it.
    log_backend, checkpoint_backend, fsync, keep_checkpoints,
    compact_on_checkpoint:
        Storage policy, as in ``StreamConfig``. ``fsync`` applies to
        the *shared* log and therefore requires ``root_dir``.
    telemetry, obs_server, node_name, log_stream:
        Observability, as in ``StreamConfig``; one recorder, one HTTP
        surface and one structured-log stream cover every tenant
        (instruments are labeled ``tenant=...``).
    max_resident_tenants:
        LRU activation cap: at most this many tenants keep live engine
        pools; the least-recently-used is checkpointed out and reloads
        lazily on its next touch. Requires ``root_dir`` (eviction
        without a checkpoint store would lose state).
    quota_ops_per_s, quota_burst:
        Per-tenant token-bucket rate limit; ``quota_burst`` defaults to
        the rate (one second of headroom) and requires the rate.
    quota_max_objects:
        Per-tenant ceiling on live objects.
    quota_max_pending:
        Per-tenant ceiling on buffered (logged-but-unapplied) backlog.
    max_segment_ops:
        Replication segment bound for the shared-log shipper.
    degraded_probe_s, degraded_probe_max_s:
        Degraded-mode probe spacing: when a durability breaker opens
        (shared-log append or a tenant's checkpoint path kept failing),
        the first recovery probe runs after ``degraded_probe_s``
        seconds, doubling per consecutive failure up to
        ``degraded_probe_max_s``. Probes piggyback on ingest attempts
        and ``/readyz`` evaluation — no background thread.
    """

    engine_factory: Any
    n_shards: int = 2
    batch_max_ops: int = 256
    batch_max_age: float | None = None
    train_rounds: int = 3
    router: str = "hash"
    root_dir: Any = None
    log_backend: str = "jsonl"
    checkpoint_backend: str = "json"
    fsync: bool = False
    keep_checkpoints: int = 3
    compact_on_checkpoint: bool = True
    telemetry: Any = None
    obs_server: str | None = None
    node_name: str = "serve"
    log_stream: Any = None
    max_resident_tenants: int | None = None
    quota_ops_per_s: float | None = None
    quota_burst: float | None = None
    quota_max_objects: int | None = None
    quota_max_pending: int | None = None
    max_segment_ops: int = 512
    degraded_probe_s: float = 1.0
    degraded_probe_max_s: float = 30.0

    def __post_init__(self) -> None:
        if not callable(self.engine_factory):
            raise ConfigError(
                "engine_factory must be a zero-argument callable building "
                f"a DynamicC engine, got {self.engine_factory!r}"
            )
        if self.obs_server is not None:
            try:
                parse_listen(self.obs_server)  # fail fast on a bad spec
            except ValueError as exc:
                raise ConfigError(str(exc)) from None
        if self.fsync and self.root_dir is None:
            raise ConfigError(
                "fsync=True needs a durable log to sync: set root_dir (the "
                "shared oplog lives under it) or drop fsync"
            )
        if self.max_resident_tenants is not None:
            if self.max_resident_tenants < 1:
                raise ConfigError("max_resident_tenants must be >= 1")
            if self.root_dir is None:
                raise ConfigError(
                    "max_resident_tenants (LRU eviction) requires root_dir: "
                    "an evicted tenant is checkpointed out and reloaded from "
                    "disk, which an ephemeral service has nowhere to do"
                )
        if self.quota_burst is not None and self.quota_ops_per_s is None:
            raise ConfigError(
                "quota_burst refines quota_ops_per_s and is meaningless "
                "without it: set quota_ops_per_s too, or drop quota_burst"
            )
        if self.quota_ops_per_s is not None and self.quota_ops_per_s <= 0:
            raise ConfigError("quota_ops_per_s must be > 0")
        if self.quota_burst is not None and self.quota_burst < 1:
            raise ConfigError("quota_burst must be >= 1")
        if self.quota_max_objects is not None and self.quota_max_objects < 1:
            raise ConfigError("quota_max_objects must be >= 1")
        if self.quota_max_pending is not None and self.quota_max_pending < 1:
            raise ConfigError("quota_max_pending must be >= 1")
        if self.max_segment_ops < 1:
            raise ConfigError("max_segment_ops must be >= 1")
        if self.degraded_probe_s <= 0:
            raise ConfigError("degraded_probe_s must be > 0")
        if self.degraded_probe_max_s < self.degraded_probe_s:
            raise ConfigError(
                "degraded_probe_max_s must be >= degraded_probe_s "
                "(it caps the doubling probe backoff)"
            )
        # Delegate the shared streaming knobs (shard counts, router,
        # backends, telemetry setting...) to the single validation
        # point they have always had.
        self.tenant_stream_config("_template", self.telemetry)

    @classmethod
    def from_kwargs(cls, engine_factory: Any, **kwargs: Any) -> "ServeConfig":
        """Build a config from keyword options, with typed diagnostics.

        The single kwargs funnel behind :meth:`repro.serve.Service.open`:
        unknown options raise :class:`~repro.errors.ConfigError` with a
        did-you-mean suggestion, and retired pre-serve options raise
        with the structural replacement spelled out.
        """
        known = {field.name for field in fields(cls)} - {"engine_factory"}
        for name in kwargs:
            if name in _RETIRED_KWARGS:
                raise ConfigError(
                    f"{name!r} is not a ServeConfig option: {_RETIRED_KWARGS[name]}"
                )
            if name not in known:
                close = difflib.get_close_matches(name, sorted(known), n=1)
                hint = f"; did you mean {close[0]!r}?" if close else ""
                raise ConfigError(
                    f"unknown ServeConfig option {name!r}{hint} "
                    f"(valid options: {', '.join(sorted(known))})"
                )
        return cls(engine_factory, **kwargs)

    # ------------------------------------------------------------------
    # Storage layout
    # ------------------------------------------------------------------
    def resolve_root(self) -> pathlib.Path | None:
        return pathlib.Path(self.root_dir) if self.root_dir is not None else None

    def oplog_path(self) -> pathlib.Path | None:
        """The shared tenant-stamped operation log under ``root_dir``."""
        root = self.resolve_root()
        if root is None:
            return None
        suffix = "sqlite" if self.log_backend == "sqlite" else "jsonl"
        return root / f"oplog.{suffix}"

    def tenants_root(self) -> pathlib.Path | None:
        root = self.resolve_root()
        return root / "tenants" if root is not None else None

    def tenant_checkpoint_dir(self, tenant: str) -> pathlib.Path | None:
        tenants = self.tenants_root()
        return tenants / tenant / "checkpoints" if tenants is not None else None

    # ------------------------------------------------------------------
    # Derived StreamConfigs
    # ------------------------------------------------------------------
    def tenant_stream_config(self, tenant: str, telemetry: Any) -> StreamConfig:
        """The per-tenant engine-pool config.

        Tenant services never own an oplog (the shared tenant-stamped
        log is the manager's) and never fsync (there is nothing local
        to sync); they checkpoint into their own directory when the
        service is durable.
        """
        return StreamConfig(
            n_shards=self.n_shards,
            batch_max_ops=self.batch_max_ops,
            # Age cuts are the manager's job: a wall-clock cut must be
            # recorded as a tenant-stamped flush marker in the shared
            # log, which only the log's owner can do.
            batch_max_age=None,
            train_rounds=self.train_rounds,
            router=self.router,
            oplog_path=None,
            checkpoint_dir=self.tenant_checkpoint_dir(tenant),
            log_backend=self.log_backend,
            checkpoint_backend=self.checkpoint_backend,
            fsync=False,
            keep_checkpoints=self.keep_checkpoints,
            compact_on_checkpoint=self.compact_on_checkpoint,
            telemetry=telemetry,
            obs_server=None,
            node_name=f"{self.node_name}:{tenant}",
            log_stream=self.log_stream,
        )

    def replica_stream_config(self, name: str, telemetry: Any) -> StreamConfig:
        """A tenant-filtered replica's config (ephemeral by contract)."""
        return StreamConfig(
            n_shards=self.n_shards,
            batch_max_ops=self.batch_max_ops,
            batch_max_age=None,
            train_rounds=self.train_rounds,
            router=self.router,
            oplog_path=None,
            checkpoint_dir=None,
            telemetry=telemetry,
            obs_server=None,
            node_name=name,
            log_stream=self.log_stream,
        )

    def round_cut_params(self) -> dict[str, int]:
        """The replay-determinism contract, as in ``StreamConfig``."""
        return {
            "n_shards": self.n_shards,
            "batch_max_ops": self.batch_max_ops,
            "train_rounds": self.train_rounds,
        }
