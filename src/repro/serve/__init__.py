"""repro.serve — the multi-tenant service front door.

The redesigned public API over the streaming/replication stack:

* :class:`Service` / :meth:`Service.open` — one process-wide topology:
  a shared tenant-stamped operation log, per-tenant DynamicC engine
  pools, LRU activation under ``max_resident_tenants``, admission
  quotas, tenant-filtered read replicas, and a single labeled
  observability surface;
* :class:`TenantHandle` — ``service.tenant("name")``: the per-tenant
  ingest/query/control view (stateless; survives evictions);
* :class:`ServeConfig` — the one consolidated configuration object
  (:meth:`ServeConfig.from_kwargs` is the typed-kwargs funnel);
* :class:`TenantManager` — the engine room, for embedders that need
  the pools without the façade;
* :class:`TokenBucket` — the admission-control primitive;
* the typed error family from :mod:`repro.errors` (:class:`ServeError`,
  :class:`ConfigError`, :class:`QuotaExceeded`,
  :class:`UnknownTenantError`), re-exported for convenience.

The pre-serve façades — ``repro.stream.ClusteringService`` and
``repro.replica.ReplicatedClusteringService`` — keep working unchanged
this release and emit a ``DeprecationWarning`` pointing here; see the
README's "Service API" migration table.
"""

from repro.errors import (
    ConfigError,
    QuotaExceeded,
    ServeError,
    UnknownTenantError,
)

from .config import ServeConfig
from .quota import TokenBucket
from .service import Service, TenantHandle
from .tenant import TenantManager

__all__ = [
    "ConfigError",
    "QuotaExceeded",
    "ServeConfig",
    "ServeError",
    "Service",
    "TenantHandle",
    "TenantManager",
    "TokenBucket",
    "UnknownTenantError",
]
