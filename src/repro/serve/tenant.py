"""TenantManager: per-tenant engine pools over one shared operation log.

The multi-tenant engine room behind :class:`repro.serve.Service`. One
manager owns:

* **the shared log** — a single tenant-stamped
  :class:`~repro.stream.oplog.LogBackend` with global sequence numbers;
  every accepted operation is stamped ``tenant=...`` (and, via each
  tenant's router, ``shard=...``) *before* it is appended, so recovery,
  eviction reload, compaction and replica catch-up all filter the same
  durable record instead of consulting side tables;
* **per-tenant engine pools** — each resident tenant is one oplog-less
  :class:`~repro.stream.service.ClusteringService` (N DynamicC shards,
  its own router, metrics and checkpoint store) fed through
  ``apply_logged``, the same code path crash recovery and replicas
  replay through. Per-tenant global-sequence gaps are other tenants'
  traffic, so round cutting is by count and by tenant-stamped flush
  markers only — which is exactly what makes a tenant's state
  byte-identical to a run of that tenant alone;
* **admission control** — per-tenant ops/s token buckets, live-object
  ceilings and backlog bounds, all checked *before* any state is
  touched; a rejection is a typed
  :class:`~repro.errors.QuotaExceeded` and a
  ``quota_rejections_total{tenant=...,reason=...}`` increment, never a
  partial write;
* **LRU activation** — at most ``max_resident_tenants`` pools live at
  once; the least-recently-used tenant is checkpointed out and closed,
  and reloads lazily on its next touch from its checkpoint plus the
  shared-log suffix (pending operations live in the log past the
  checkpoint's ``applied_seq``, so eviction loses nothing);
* **replication** — one :class:`~repro.replica.LogShipper` fans the
  shared log out to tenant-filtered
  :class:`~repro.replica.ReadReplica` followers, each bootstrapped
  from its tenant's newest checkpoint.
"""

from __future__ import annotations

import os
import re
import time
from collections import OrderedDict
from typing import Any, Iterable, Sequence

from repro.errors import (
    ConfigError,
    DegradedError,
    DurabilityError,
    QuotaExceeded,
    UnknownTenantError,
)
from repro.faults.breaker import CircuitBreaker
from repro.faults.inject import fire
from repro.faults.retry import RetryPolicy
from repro.obs.health import HealthRegistry, check_oplog, degraded, ok
from repro.obs.logging import NULL_LOGGER, StructuredLogger
from repro.obs.telemetry import make_telemetry
from repro.replica.replica import ReadReplica
from repro.replica.shipper import LogShipper
from repro.replica.transport import InProcessTransport
from repro.stream.checkpoint import open_checkpoints
from repro.stream.events import ADD, FLUSH, Operation
from repro.stream.metrics import LatencyStat
from repro.stream.oplog import open_log
from repro.stream.service import ClusteringService, _internal_construction

from .config import ServeConfig
from .quota import TokenBucket

#: Tenant names double as directory names and metric label values.
_TENANT_NAME = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


class TenantEntry:
    """One resident tenant: its engine pool plus admission state."""

    __slots__ = ("name", "service", "bucket")

    def __init__(
        self, name: str, service: ClusteringService, bucket: TokenBucket | None
    ) -> None:
        self.name = name
        self.service = service
        self.bucket = bucket


class TenantManager:
    """Engine pools, quotas and the shared log for all tenants."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self._factory = config.engine_factory
        #: One recorder for the whole multi-tenant topology; tenant
        #: services and replicas share the instance so ``/metrics`` is
        #: a single labeled surface.
        self.telemetry = make_telemetry(config.telemetry)
        root = config.resolve_root()
        tenants_root = config.tenants_root()
        if tenants_root is not None:
            tenants_root.mkdir(parents=True, exist_ok=True)
        self.oplog = (
            open_log(
                config.oplog_path(),
                backend=config.log_backend,
                fsync=config.fsync,
            )
            if root is not None
            else None
        )
        if self.oplog is not None:
            self.oplog.obs = self.telemetry
        self._shipper = (
            LogShipper(
                self.oplog,
                snapshots=None,  # snapshots are per tenant, not global
                max_segment_ops=config.max_segment_ops,
                obs=self.telemetry,
            )
            if self.oplog is not None
            else None
        )
        self._replicas: "OrderedDict[str, ReadReplica]" = OrderedDict()
        #: Resident tenants in LRU order (least-recent first).
        self._residents: "OrderedDict[str, TenantEntry]" = OrderedDict()
        #: Every tenant this root has ever activated (residents plus
        #: checkpointed-out directories found on disk).
        self._known: set[str] = set()
        if tenants_root is not None:
            self._known.update(
                entry.name for entry in tenants_root.iterdir() if entry.is_dir()
            )
        self._next_seq = 1  # ephemeral stamping when there is no log
        self.logger = (
            StructuredLogger(
                f"serve.{config.node_name}",
                config.log_stream,
                telemetry=self.telemetry,
            )
            if config.log_stream is not None
            else NULL_LOGGER
        )
        # Plain counters are the stats() source of truth (telemetry may
        # be the null recorder); the labeled instruments mirror them
        # onto the HTTP surface.
        self._ops_total = 0
        self._activations_total = 0
        self._evictions_total = 0
        self._rejections: dict[str, dict[str, int]] = {}
        self._ingest_latency = LatencyStat()
        self._ops_counter = self.telemetry.counter(
            "tenant_ops_total",
            labels=("tenant",),
            help="Operations accepted into the shared log, per tenant",
        )
        self._rejection_counter = self.telemetry.counter(
            "quota_rejections_total",
            labels=("tenant", "reason"),
            help="Ingest batches rejected by admission control",
        )
        self._activation_counter = self.telemetry.counter(
            "tenant_activations_total",
            labels=("tenant",),
            help="Tenant engine pools built (first touch or reload)",
        )
        self._eviction_counter = self.telemetry.counter(
            "tenant_evictions_total",
            labels=("tenant",),
            help="Tenant engine pools checkpointed out under the LRU cap",
        )
        self._resident_gauge = self.telemetry.gauge(
            "resident_tenants",
            help="Tenant engine pools currently live in memory",
        )
        self._degraded_total = 0
        self._degraded_counter = self.telemetry.counter(
            "degraded_rejections_total",
            labels=("tenant", "reason"),
            help="Ingest batches rejected because a durability path is degraded",
        )
        #: Retry policy around shared-log appends: transient I/O heals
        #: in place; ENOSPC / exhaustion opens the oplog breaker.
        self._oplog_retry = RetryPolicy()
        #: Shared-path breaker: when the multi-tenant log cannot append,
        #: *every* tenant's ingest is down — severity ``failing`` so
        #: ``/readyz`` answers 503. No probe callable: the half-open
        #: trial is the next real ingest's append.
        self._oplog_breaker = CircuitBreaker(
            "oplog",
            base_backoff_s=config.degraded_probe_s,
            max_backoff_s=config.degraded_probe_max_s,
            obs=self.telemetry,
        )
        #: Per-tenant checkpoint-path breakers, created on first failure
        #: or first activation; severity ``degraded`` — one tenant's
        #: full disk must not 503 its neighbours.
        self._breakers: dict[str, CircuitBreaker] = {}
        self.health = HealthRegistry()
        self.health.register("oplog", check_oplog(self.oplog))
        self.health.register("residency", self._check_residency)
        if self.oplog is not None:
            self.health.register(
                "durability", self._oplog_breaker.health_check("failing")
            )
        self._health_tenants: set[str] = set()
        if self.logger.enabled:
            self.logger.info(
                "serve_started",
                node=config.node_name,
                root=str(root) if root is not None else None,
                known_tenants=len(self._known),
                max_resident=config.max_resident_tenants,
            )

    # ------------------------------------------------------------------
    # Residency / LRU activation
    # ------------------------------------------------------------------
    @staticmethod
    def check_name(name: Any) -> str:
        if not isinstance(name, str) or not _TENANT_NAME.match(name):
            raise ConfigError(
                f"invalid tenant name {name!r}: names are 1-64 chars of "
                "[A-Za-z0-9._-] starting with an alphanumeric (they become "
                "directory names and metric label values)"
            )
        return name

    def resident(self) -> list[str]:
        """Resident tenant names, least-recently-used first."""
        return list(self._residents)

    def tenants(self) -> list[str]:
        """Every tenant this service knows (resident or evicted)."""
        return sorted(self._known | set(self._residents))

    def is_resident(self, name: str) -> bool:
        return name in self._residents

    def activate(self, name: str) -> TenantEntry:
        """Get the tenant's engine pool, building/reloading it lazily.

        A cache hit is an LRU touch. A miss builds the pool through the
        crash-recovery path — newest checkpoint (if any), then the
        shared-log suffix filtered to this tenant — so a reloaded
        tenant is in exactly the state it was evicted in, pending
        operations included.
        """
        entry = self._residents.get(self.check_name(name))
        if entry is not None:
            self._residents.move_to_end(name)
            return entry
        cfg = self.config.tenant_stream_config(name, self.telemetry)
        with self.telemetry.span("serve.tenant.activate", tenant=name):
            with _internal_construction():
                if cfg.checkpoint_dir is not None:
                    # recover() restores the newest checkpoint and
                    # refuses divergent round-cut parameters; with no
                    # checkpoint yet it degrades to a fresh service.
                    service = ClusteringService.recover(self._factory, cfg)
                else:
                    service = ClusteringService(self._factory, cfg)
            if self.oplog is not None:
                suffix = [
                    op
                    for op in self.oplog.replay(after_seq=service.applied_seq)
                    if op.tenant == name
                ]
                if suffix:
                    service.apply_logged(suffix, contiguous=False)
        bucket = (
            TokenBucket(
                self.config.quota_ops_per_s,
                self.config.quota_burst or self.config.quota_ops_per_s,
            )
            if self.config.quota_ops_per_s is not None
            else None
        )
        entry = TenantEntry(name, service, bucket)
        self._residents[name] = entry
        self._known.add(name)
        self._activations_total += 1
        self._activation_counter.labels(tenant=name).inc()
        if name not in self._health_tenants:
            self._health_tenants.add(name)
            self.health.register(f"tenant:{name}", self._tenant_probe(name))
            if self.config.tenant_checkpoint_dir(name) is not None:
                self.health.register(
                    f"tenant:{name}:durability",
                    self._tenant_breaker(name).health_check("degraded"),
                )
        if self.logger.enabled:
            self.logger.info(
                "tenant_activated", tenant=name, applied_seq=service.applied_seq
            )
        cap = self.config.max_resident_tenants
        while cap is not None and len(self._residents) > cap:
            if not self._evict_lru(keep=name):
                break  # nothing evictable; run over-cap (residency degrades)
        self._resident_gauge.set(len(self._residents))
        return entry

    def _evict_lru(self, keep: str) -> bool:
        """Evict the LRU-most evictable tenant; returns whether one went.

        A tenant whose checkpoint path is degraded (open breaker, probe
        still failing) is passed over rather than retried on every
        activation — the next candidate goes instead. When *no* tenant
        can be parked, the manager runs over-cap: strictly better than
        refusing admission because one tenant's disk is full.
        """
        for candidate in list(self._residents):
            if candidate == keep:
                continue
            breaker = self._breakers.get(candidate)
            if breaker is not None and not breaker.maybe_probe() and not breaker.allow():
                continue
            try:
                self.evict(candidate)
            except (DegradedError, OSError):
                continue  # evict() recorded the failure; try the next one
            return True
        return False

    def evict(self, name: str) -> None:
        """Checkpoint a tenant's pool out of memory (reloads lazily).

        Pending operations are *not* flushed first — they sit in the
        shared log past the checkpoint's ``applied_seq`` and replay on
        reactivation, preserving round boundaries exactly.
        """
        entry = self._residents.pop(name, None)
        if entry is None:
            raise UnknownTenantError(f"tenant {name!r} is not resident")
        if entry.service.checkpoints is None:
            self._residents[name] = entry  # put it back; nothing durable
            raise RuntimeError(
                f"cannot evict tenant {name!r}: the service has no root_dir, "
                "so there is no checkpoint store to park its state in"
            )
        with self.telemetry.span("serve.tenant.evict", tenant=name):
            try:
                entry.service.checkpoint()
            except (OSError, DurabilityError) as exc:
                # Can't park state we can't persist: put the entry back
                # (as LRU-most, so other tenants evict first), open the
                # tenant's breaker and reject typed.
                self._residents[name] = entry
                self._residents.move_to_end(name, last=False)
                self._fail_tenant(name, "checkpoint.save", exc)
            entry.service.close()
        self._tenant_breaker(name).record_success()
        self._evictions_total += 1
        self._eviction_counter.labels(tenant=name).inc()
        self._resident_gauge.set(len(self._residents))
        if self.logger.enabled:
            self.logger.info(
                "tenant_evicted",
                tenant=name,
                applied_seq=entry.service.applied_seq,
            )

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(self, tenant: str, operations: Iterable[Operation | Sequence]) -> int:
        """Admit, stamp, log and apply one tenant's operations.

        The pipeline is: activate (LRU touch) → admission control (all
        checks precede any mutation) → tenant + watermark + placement
        stamps → shared-log append → ``apply_logged`` into the tenant's
        pool. Returns the number of operations accepted; raises
        :class:`~repro.errors.QuotaExceeded` rejecting the whole batch
        otherwise.
        """
        start = time.perf_counter()
        entry = self.activate(tenant)
        # Degradation gates precede quota checks: a write the durability
        # path cannot honour must not drain rate-limit tokens. The
        # shared-log breaker recovers through its own half-open trial
        # (the append below); a tenant breaker recovers via its probe.
        if self.oplog is not None and not self._oplog_breaker.allow():
            self._reject_degraded(
                None,
                "oplog.append",
                self._oplog_breaker.retry_after_s(),
                self._oplog_breaker.last_error,
                counted_tenant=tenant,
            )
        breaker = self._breakers.get(tenant)
        if breaker is not None and not breaker.maybe_probe() and not breaker.allow():
            self._reject_degraded(
                tenant,
                "checkpoint.save",
                breaker.retry_after_s(),
                breaker.last_error,
            )
        ops = [ClusteringService._coerce(op) for op in operations]
        if any(op.kind == FLUSH for op in ops):
            raise ValueError(
                "flush markers are control records; call flush() instead"
            )
        if entry.service.placements_stamped and self.config.router == "hash":
            raise RuntimeError(
                f"tenant {tenant!r} state contains stamped (least-loaded) "
                "placements; ingesting through router='hash' would route "
                "operations for already-placed objects to the wrong shard"
            )
        self._enforce_quota(tenant, entry, ops)
        now = time.time()
        stamped = []
        for op in ops:
            if op.ingest_ts is None:
                op = op.with_ingest_ts(now)
            stamped.append(op.with_tenant(tenant))
        with self.telemetry.span("serve.ingest", tenant=tenant, ops=len(stamped)):
            # Placement through the tenant's own router, before logging,
            # so the stamp is durable and replays verbatim.
            stamped = entry.service.router.assign(stamped)
            if self.oplog is not None:
                to_append = stamped
                try:
                    stamped = self._oplog_retry.run(
                        lambda: self.oplog.append(to_append),
                        boundary="oplog.append",
                        obs=self.telemetry,
                    )
                except (OSError, DurabilityError) as exc:
                    # Retries exhausted (or a non-retryable ENOSPC):
                    # shed writes, keep serving reads. Nothing was
                    # logged, so nothing is applied — the rejection is
                    # atomic like a quota bounce.
                    self._oplog_breaker.record_failure(exc)
                    self._reject_degraded(
                        None,
                        "oplog.append",
                        self._oplog_breaker.retry_after_s(),
                        exc,
                        counted_tenant=tenant,
                    )
                self._oplog_breaker.record_success()
            else:
                stamped = [
                    op.with_seq(self._next_seq + offset)
                    for offset, op in enumerate(stamped)
                ]
                self._next_seq += len(stamped)
            entry.service.apply_logged(stamped)
        accepted = len(stamped)
        self._ops_total += accepted
        self._ops_counter.labels(tenant=tenant).inc(accepted)
        if self.config.batch_max_age is not None and len(entry.service.batcher):
            if entry.service.batcher.oldest_age() >= self.config.batch_max_age:
                self.flush(tenant)
        self._ingest_latency.record(time.perf_counter() - start)
        return accepted

    def _enforce_quota(
        self, tenant: str, entry: TenantEntry, ops: list[Operation]
    ) -> None:
        # Non-consuming checks first: a batch bounced on backlog or
        # object count must not have drained rate-limit tokens.
        cfg = self.config
        n = len(ops)
        if cfg.quota_max_pending is not None:
            pending = len(entry.service.batcher)
            if pending + n > cfg.quota_max_pending:
                self._reject(
                    tenant,
                    "backlog",
                    f"tenant {tenant!r} backlog quota: {pending} pending + "
                    f"{n} new > {cfg.quota_max_pending} allowed — flush() or "
                    "wait for the batcher to drain",
                    limit=cfg.quota_max_pending,
                    current=pending,
                )
        if cfg.quota_max_objects is not None:
            # Project over applied *and* buffered state: pending adds
            # count against the cap even though they are not applied
            # yet, or a burst inside one micro-batch would slip past.
            membership = entry.service.membership
            pending_new = {
                op.obj_id
                for op in entry.service.batcher.pending()
                if op.kind == ADD and membership.shard_of(op.obj_id) is None
            }
            batch_new = {
                op.obj_id
                for op in ops
                if op.kind == ADD
                and membership.shard_of(op.obj_id) is None
                and op.obj_id not in pending_new
            }
            live = entry.service.num_objects() + len(pending_new)
            if live + len(batch_new) > cfg.quota_max_objects:
                self._reject(
                    tenant,
                    "max_objects",
                    f"tenant {tenant!r} object quota: {live} live/pending + "
                    f"{len(batch_new)} new > {cfg.quota_max_objects} allowed "
                    "— remove objects or raise quota_max_objects",
                    limit=cfg.quota_max_objects,
                    current=live,
                )
        if entry.bucket is not None:
            retry_after = entry.bucket.try_acquire(n)
            if retry_after is not None:
                self._reject(
                    tenant,
                    "ops_rate",
                    f"tenant {tenant!r} rate quota: {n} ops exceed the "
                    f"available burst at {cfg.quota_ops_per_s:g} ops/s — "
                    f"retry in {retry_after:.3f}s",
                    limit=cfg.quota_ops_per_s,
                    current=n,
                    retry_after_s=retry_after,
                )

    def _reject(
        self,
        tenant: str,
        reason: str,
        message: str,
        *,
        limit: float | None = None,
        current: float | None = None,
        retry_after_s: float | None = None,
    ) -> None:
        per_tenant = self._rejections.setdefault(tenant, {})
        per_tenant[reason] = per_tenant.get(reason, 0) + 1
        self._rejection_counter.labels(tenant=tenant, reason=reason).inc()
        if self.logger.enabled:
            self.logger.warning("quota_rejected", tenant=tenant, reason=reason)
        raise QuotaExceeded(
            tenant,
            reason,
            message,
            limit=limit,
            current=current,
            retry_after_s=retry_after_s,
        )

    # ------------------------------------------------------------------
    # Degraded mode
    # ------------------------------------------------------------------
    def _tenant_breaker(self, name: str) -> CircuitBreaker:
        """The named tenant's checkpoint-path breaker (created lazily)."""
        breaker = self._breakers.get(name)
        if breaker is None:
            breaker = CircuitBreaker(
                f"tenant:{name}",
                probe=self._durability_probe(name),
                base_backoff_s=self.config.degraded_probe_s,
                max_backoff_s=self.config.degraded_probe_max_s,
                obs=self.telemetry,
            )
            self._breakers[name] = breaker
        return breaker

    def _durability_probe(self, name: str):
        """A cheap write+fsync re-test of one tenant's checkpoint path.

        Routed through the ``checkpoint.save`` fault boundary with the
        probe file's path, so an injected (or real) fault scoped to
        this tenant's directory keeps the probe failing until lifted.
        """
        directory = self.config.tenant_checkpoint_dir(name)

        def probe() -> None:
            if directory is None:
                return
            directory.mkdir(parents=True, exist_ok=True)
            path = directory / ".durability-probe"
            fire("checkpoint.save", path)
            with open(path, "w", encoding="utf-8") as handle:
                handle.write("ok")
                handle.flush()
                os.fsync(handle.fileno())
            os.unlink(path)

        return probe

    def _fail_tenant(self, name: str, reason: str, cause: Exception) -> None:
        """Record a tenant durability failure and raise typed.

        Unlike :meth:`_reject_degraded` this does not count an ingest
        rejection — it types a failed checkpoint/evict, opening the
        breaker that future ingests and ``/readyz`` consult.
        """
        breaker = self._tenant_breaker(name)
        breaker.record_failure(cause)
        if self.logger.enabled:
            self.logger.error(
                "tenant_degraded", tenant=name, reason=reason, detail=str(cause)
            )
        raise DegradedError(
            name,
            reason,
            f"tenant {name!r} durability path is degraded at {reason}: {cause} "
            f"— reads keep serving; next probe in "
            f"{breaker.retry_after_s():.3f}s",
            retry_after_s=breaker.retry_after_s(),
        ) from cause

    def _reject_degraded(
        self,
        tenant: str | None,
        reason: str,
        retry_after_s: float | None,
        cause=None,
        *,
        counted_tenant: str | None = None,
    ) -> None:
        label = tenant if tenant is not None else "_shared"
        self._degraded_total += 1
        self._degraded_counter.labels(tenant=label, reason=reason).inc()
        if self.logger.enabled:
            self.logger.warning(
                "degraded_rejected",
                tenant=counted_tenant or tenant,
                reason=reason,
                retry_after_s=retry_after_s,
            )
        scope = (
            f"tenant {tenant!r}"
            if tenant is not None
            else "the shared oplog (all tenants)"
        )
        hint = (
            f"retry in {retry_after_s:.3f}s"
            if retry_after_s is not None
            else "no recovery probe is scheduled"
        )
        error = DegradedError(
            tenant,
            reason,
            f"ingest rejected: {scope} is degraded at {reason} "
            f"({cause if cause is not None else 'durability failure'}) — "
            f"reads keep serving; {hint}",
            retry_after_s=retry_after_s,
        )
        if isinstance(cause, BaseException):
            raise error from cause
        raise error

    # ------------------------------------------------------------------
    # Round control / durability
    # ------------------------------------------------------------------
    def flush(self, tenant: str) -> None:
        """Force the tenant's pending partial batch through as one round.

        The boundary is a *tenant-stamped* flush marker in the shared
        log, consumed through ``apply_logged`` — the identical record
        and code path an eviction reload or a tenant replica sees, so
        every consumer cuts this round in the same place.
        """
        entry = self.activate(tenant)
        if not len(entry.service.batcher):
            return
        marker = Operation(FLUSH, 0, tenant=tenant)
        if self.oplog is not None:
            [marker] = self.oplog.append([marker])
        else:
            marker = marker.with_seq(self._next_seq)
            self._next_seq += 1
        entry.service.apply_logged([marker])

    def flush_all(self) -> None:
        for name in self.resident():
            self.flush(name)

    def checkpoint(self, tenant: str):
        """Snapshot one tenant's pool; returns the snapshot path.

        A checkpoint that keeps failing (retry-exhausted transient I/O,
        or non-retryable ENOSPC) opens the tenant's durability breaker
        and raises :class:`~repro.errors.DegradedError` — state remains
        recoverable from the shared log, reads keep serving, and the
        breaker's probe closes it again once the path heals.
        """
        entry = self.activate(tenant)
        try:
            path = entry.service.checkpoint()
        except (OSError, DurabilityError) as exc:
            self._fail_tenant(tenant, "checkpoint.save", exc)
        self._tenant_breaker(tenant).record_success()
        return path

    def checkpoint_all(self) -> list:
        return [self.checkpoint(name) for name in self.resident()]

    def compact(self) -> dict:
        """Truncate the shared log up to the safe multi-tenant floor.

        The floor is the minimum over every *known* tenant's oldest
        retained checkpoint seq (a tenant with no checkpoint pins the
        log at 0) and every replica subscription's shipped cursor — so
        no tenant's reload and no follower's catch-up can ever need a
        truncated record.
        """
        if self.oplog is None:
            return {"truncated_through": 0, "kept_ops": 0, "reclaimed_bytes": 0}
        floors = [self._tenant_floor(name) for name in self.tenants()]
        if self._shipper is not None and len(self._shipper):
            floors.extend(self._shipper.cursors())
        floor = min(floors) if floors else 0
        if floor <= 0:
            return {
                "truncated_through": 0,
                "kept_ops": 0,
                "reclaimed_bytes": 0,
                "log_bytes": self.oplog.size_bytes(),
            }
        with self.telemetry.span("serve.compact", floor=floor):
            return self.oplog.truncate_through(floor)

    def _tenant_floor(self, name: str) -> int:
        entry = self._residents.get(name)
        if entry is not None:
            store = entry.service.checkpoints
            seqs = store.list_seqs() if store is not None else []
        else:
            store = open_checkpoints(
                self.config.tenant_checkpoint_dir(name),
                backend=self.config.checkpoint_backend,
                keep=self.config.keep_checkpoints,
            )
            try:
                seqs = store.list_seqs()
            finally:
                store.close()
        return min(seqs) if seqs else 0

    # ------------------------------------------------------------------
    # Replication
    # ------------------------------------------------------------------
    def add_replica(self, tenant: str, name: str | None = None) -> ReadReplica:
        """Attach a tenant-filtered read replica fed by the shared log.

        The follower bootstraps from the tenant's newest checkpoint (if
        any) and then tails full-log segments, applying only this
        tenant's stamped slice — so its partition converges on exactly
        the tenant's primary state after :meth:`sync`.
        """
        if self._shipper is None:
            raise RuntimeError(
                "replication needs the shared log: set root_dir"
            )
        entry = self.activate(tenant)
        if name is None:
            name = f"{tenant}-replica-{len(self._replicas)}"
        if name in self._replicas:
            raise ValueError(f"replica name {name!r} is already attached")
        snapshot = (
            entry.service.checkpoints.load_latest()
            if entry.service.checkpoints is not None
            else None
        )
        transport = InProcessTransport()
        replica = ReadReplica.bootstrap(
            self._factory,
            self.config.replica_stream_config(name, self.telemetry),
            transport,
            snapshot=snapshot,
            name=name,
            tenant=tenant,
        )
        self._shipper.attach(transport, from_seq=replica.received_seq)
        self._replicas[name] = replica
        if self.logger.enabled:
            self.logger.info(
                "replica_attached",
                tenant=tenant,
                replica=name,
                from_seq=replica.received_seq,
            )
        return replica

    def replica(self, name: str) -> ReadReplica:
        try:
            return self._replicas[name]
        except KeyError:
            raise UnknownTenantError(f"no replica named {name!r}") from None

    def sync(self, heartbeat: bool = False) -> dict:
        """Ship the shared-log suffix and drain every replica."""
        published = (
            self._shipper.ship(heartbeat=heartbeat)
            if self._shipper is not None
            else 0
        )
        applied = {
            name: replica.poll() for name, replica in self._replicas.items()
        }
        return {"published": published, "applied": applied}

    # ------------------------------------------------------------------
    # Stats / health
    # ------------------------------------------------------------------
    def tenant_stats(self, name: str, legacy: bool = True) -> dict:
        """One tenant's stats — without disturbing the LRU order.

        A resident tenant reports its full engine-pool snapshot; an
        evicted one reports only its residency (activating it just to
        count it would defeat the cap).
        """
        self.check_name(name)
        entry = self._residents.get(name)
        if entry is not None:
            snapshot = entry.service.stats(legacy=legacy)
            snapshot["tenant"] = name
            snapshot["resident"] = True
            return snapshot
        if name not in self._known:
            raise UnknownTenantError(f"unknown tenant {name!r}")
        return {"tenant": name, "resident": False}

    def stats(self, legacy: bool = True) -> dict:
        latency = self._ingest_latency.to_dict()
        rejections_total = sum(
            count
            for per_tenant in self._rejections.values()
            for count in per_tenant.values()
        )
        out: dict[str, Any] = {
            "ops_total": self._ops_total,
            "backlog": sum(
                len(entry.service.batcher) for entry in self._residents.values()
            ),
            "p50_s": latency["p50_s"],
            "p95_s": latency["p95_s"],
            "p99_s": latency["p99_s"],
            "ingest_latency": latency,
            "node": self.config.node_name,
            "resident_tenants": len(self._residents),
            "known_tenants": len(self._known | set(self._residents)),
            "max_resident_tenants": self.config.max_resident_tenants,
            "activations_total": self._activations_total,
            "evictions_total": self._evictions_total,
            "quota_rejections_total": rejections_total,
            "quota_rejections": {
                tenant: dict(per_tenant)
                for tenant, per_tenant in sorted(self._rejections.items())
            },
            "degraded_rejections_total": self._degraded_total,
            "durability": {
                "oplog": self._oplog_breaker.status(),
                "tenants": {
                    name: breaker.status()
                    for name, breaker in sorted(self._breakers.items())
                    if breaker.state != "closed"
                },
            },
            "oplog": (
                {
                    "last_seq": self.oplog.last_seq,
                    "bytes": self.oplog.size_bytes(),
                    "reclaimed_bytes": self.oplog.bytes_reclaimed,
                }
                if self.oplog is not None
                else None
            ),
            "tenants": {
                name: self.tenant_stats(name, legacy=legacy)
                for name in self.tenants()
            },
        }
        if self._replicas:
            out["replicas"] = {
                name: replica.lag() for name, replica in self._replicas.items()
            }
        if self._shipper is not None and len(self._shipper):
            out["shipping"] = self._shipper.stats()
        return out

    def _check_residency(self):
        cap = self.config.max_resident_tenants
        data = {"resident": len(self._residents), "cap": cap}
        if cap is not None and len(self._residents) > cap:
            return degraded(
                f"{len(self._residents)} resident tenants exceed cap {cap}",
                **data,
            )
        return ok("within cap" if cap is not None else "uncapped", **data)

    def _tenant_probe(self, name: str):
        def probe():
            entry = self._residents.get(name)
            if entry is None:
                return ok("idle (evicted; reloads lazily)", resident=False)
            pending = len(entry.service.batcher)
            bound = 4 * self.config.batch_max_ops
            if pending > bound:
                return degraded(
                    f"{pending} pending ops exceed bound {bound}",
                    resident=True,
                    pending_ops=pending,
                )
            return ok("resident", resident=True, pending_ops=pending)

        return probe

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Checkpoint resident tenants (when durable) and release storage."""
        for replica in self._replicas.values():
            replica.close()
        self._replicas.clear()
        for entry in self._residents.values():
            if entry.service.checkpoints is not None:
                try:
                    entry.service.checkpoint()
                except (OSError, DurabilityError) as exc:
                    # Shutdown must not wedge on a full disk: the
                    # tenant's state stays recoverable from its last
                    # checkpoint plus the shared-log suffix.
                    if self.logger.enabled:
                        self.logger.error(
                            "close_checkpoint_failed",
                            tenant=entry.name,
                            detail=str(exc),
                        )
            entry.service.close()
        self._residents.clear()
        self._resident_gauge.set(0)
        if self.oplog is not None:
            self.oplog.close()
