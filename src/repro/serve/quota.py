"""Admission control primitives for the multi-tenant front door.

One :class:`TokenBucket` per tenant enforces the ops/s quota: tokens
refill continuously at ``rate`` up to a ``burst`` ceiling, and an
ingest of N operations atomically takes N tokens or is rejected with a
computed retry horizon — the ``retry_after_s`` a
:class:`repro.errors.QuotaExceeded` carries back to the caller. The
clock is injectable (monotonic domain) so quota tests are deterministic
rather than sleep-based.
"""

from __future__ import annotations

import time
from typing import Callable


class TokenBucket:
    """A continuously-refilling token bucket (rate + burst).

    Parameters
    ----------
    rate:
        Sustained tokens (operations) per second.
    burst:
        Bucket capacity: the largest instantaneous spend. Starts full.
    clock:
        Monotonic seconds source; injectable for deterministic tests.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be > 0 tokens/s")
        if burst < 1:
            raise ValueError("burst must be >= 1 token")
        self.rate = float(rate)
        self.burst = float(burst)
        self.clock = clock
        self._tokens = self.burst
        self._refilled_at = clock()

    def _refill(self) -> None:
        now = self.clock()
        elapsed = now - self._refilled_at
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._refilled_at = now

    @property
    def tokens(self) -> float:
        """Tokens available right now (after refill)."""
        self._refill()
        return self._tokens

    def try_acquire(self, n: int = 1) -> float | None:
        """Take ``n`` tokens atomically; all-or-nothing.

        Returns ``None`` on success, or the seconds until ``n`` tokens
        *would* be available. A request larger than ``burst`` can never
        succeed whole — the returned horizon is still finite (time to
        accrue the shortfall at ``rate``), and the caller's remedy is to
        split the batch.
        """
        if n <= 0:
            return None
        self._refill()
        if n <= self._tokens:
            self._tokens -= n
            return None
        return (n - self._tokens) / self.rate
