"""The public front door: ``Service.open(...)`` and tenant handles.

This is the redesigned service API the rest of the stack now fronts
through::

    from repro.serve import Service

    with Service.open(engine_factory=factory, root_dir="state/") as svc:
        acme = svc.tenant("acme")
        acme.ingest([("add", 1, payload), ("add", 2, payload2)])
        acme.flush()
        acme.cluster_of(1)

A :class:`Service` is one process-wide multi-tenant topology: the
shared tenant-stamped log, per-tenant engine pools with LRU activation,
admission quotas, tenant-filtered replicas and a single observability
surface, all configured by one :class:`~repro.serve.ServeConfig`. A
:class:`TenantHandle` is a named, stateless view — cheap to create,
safe to hold across evictions (the pool reloads lazily on the next
touch).

The pre-serve façades (``repro.stream.ClusteringService``,
``repro.replica.ReplicatedClusteringService``) keep working unchanged
this release; constructing them directly emits a
``DeprecationWarning`` pointing here.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.errors import ConfigError
from repro.obs.server import ObsServer
from repro.replica.replica import ReadReplica
from repro.stream.events import Operation

from .config import ServeConfig
from .tenant import TenantManager


class TenantHandle:
    """One tenant's view of the service — ingest, query, control.

    Handles are stateless names: all state lives in the manager, so a
    handle stays valid across LRU evictions and service restarts.
    """

    __slots__ = ("_manager", "name")

    def __init__(self, manager: TenantManager, name: str) -> None:
        self._manager = manager
        self.name = name

    # -- write path ----------------------------------------------------
    def ingest(self, operations: Iterable[Operation | Sequence]) -> int:
        return self._manager.ingest(self.name, operations)

    def flush(self) -> None:
        self._manager.flush(self.name)

    def checkpoint(self):
        return self._manager.checkpoint(self.name)

    def add_replica(self, name: str | None = None) -> ReadReplica:
        return self._manager.add_replica(self.name, name)

    # -- read path -----------------------------------------------------
    def cluster_of(self, obj_id: int) -> str | None:
        return self._manager.activate(self.name).service.cluster_of(obj_id)

    def members(self, gcid: str) -> frozenset[int]:
        return self._manager.activate(self.name).service.members(gcid)

    def clusters(self) -> dict[str, frozenset[int]]:
        return self._manager.activate(self.name).service.clusters()

    def partition(self) -> frozenset[frozenset[int]]:
        return self._manager.activate(self.name).service.partition()

    def num_objects(self) -> int:
        return self._manager.activate(self.name).service.num_objects()

    def stats(self, legacy: bool = True) -> dict:
        return self._manager.tenant_stats(self.name, legacy=legacy)

    @property
    def resident(self) -> bool:
        return self._manager.is_resident(self.name)

    def __repr__(self) -> str:
        return f"TenantHandle({self.name!r}, resident={self.resident})"


class Service:
    """The multi-tenant clustering service (the one public entry point)."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.manager = TenantManager(config)
        self.telemetry = self.manager.telemetry
        self.health = self.manager.health
        self.obs_server = (
            ObsServer(
                config.obs_server,
                telemetry=self.telemetry,
                health=self.health,
                logger=(
                    self.manager.logger
                    if self.manager.logger.enabled
                    else None
                ),
            ).start()
            if config.obs_server is not None
            else None
        )

    @classmethod
    def open(
        cls, config: ServeConfig | None = None, /, **kwargs: Any
    ) -> "Service":
        """Open a service from a :class:`ServeConfig` or keyword options.

        ``Service.open(engine_factory=..., root_dir=...)`` funnels the
        keywords through :meth:`ServeConfig.from_kwargs`, so unknown or
        retired options fail with a typed, actionable
        :class:`~repro.errors.ConfigError` before anything is built.
        """
        if config is not None and kwargs:
            raise ConfigError(
                "pass either a ServeConfig or keyword options, not both "
                "(the config object already carries every option)"
            )
        if config is None:
            if "engine_factory" not in kwargs:
                raise ConfigError(
                    "engine_factory is required: a zero-argument callable "
                    "building one deterministic DynamicC engine"
                )
            factory = kwargs.pop("engine_factory")
            config = ServeConfig.from_kwargs(factory, **kwargs)
        return cls(config)

    @property
    def obs_address(self) -> str | None:
        """Bound ``host:port`` of the obs HTTP server, ``None`` when off."""
        return self.obs_server.address if self.obs_server is not None else None

    # ------------------------------------------------------------------
    def tenant(self, name: str) -> TenantHandle:
        """A handle on the named tenant (created lazily on first touch)."""
        return TenantHandle(self.manager, TenantManager.check_name(name))

    def tenants(self) -> list[dict]:
        """Every known tenant with its residency."""
        return [
            {"tenant": name, "resident": self.manager.is_resident(name)}
            for name in self.manager.tenants()
        ]

    def stats(self, legacy: bool = True) -> dict:
        snapshot = self.manager.stats(legacy=legacy)
        snapshot["obs_address"] = self.obs_address
        snapshot["telemetry"] = self.telemetry.snapshot()
        return snapshot

    def flush(self) -> None:
        """Flush every resident tenant's pending partial batch."""
        self.manager.flush_all()

    def checkpoint(self) -> list:
        """Checkpoint every resident tenant; returns the snapshot paths."""
        return self.manager.checkpoint_all()

    def compact(self) -> dict:
        """Truncate the shared log to the multi-tenant safe floor."""
        return self.manager.compact()

    def sync(self, heartbeat: bool = False) -> dict:
        """Ship the log suffix to every replica and drain them."""
        return self.manager.sync(heartbeat=heartbeat)

    def close(self) -> None:
        if self.obs_server is not None:
            self.obs_server.close()
        self.manager.close()

    def __enter__(self) -> "Service":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
