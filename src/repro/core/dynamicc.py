"""DynamicC — the full dynamic clustering system (Algorithm 3, §6.4).

Life cycle:

1. **Training phase** — :meth:`DynamicC.observe_round` applies each
   round's data operations, runs the underlying *batch* algorithm from
   scratch, derives the cross-round evolution (§4.3) and accumulates
   labelled samples; :meth:`DynamicC.train` fits the Merge/Split models
   and selects θ (§5).
2. **Prediction phase** — :meth:`DynamicC.apply_round` (inherited
   driver) performs initial processing (§6.1), then alternates the
   Merge algorithm (Alg. 1) and Split algorithm (Alg. 2) until neither
   changes anything. Every applied change strictly improves the
   objective, so the loop converges (§6.4 "Algorithm Properties").
3. **Continuous retraining** — serve-time verification outcomes are fed
   back into the training buffer and the models are periodically
   refitted (``config.retrain_every``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

import numpy as np

from repro.clustering.batch.hill_climbing import HillClimbing
from repro.clustering.incremental import IncrementalClusterer
from repro.clustering.objectives.base import ObjectiveFunction
from repro.clustering.state import Clustering
from repro.similarity.graph import SimilarityGraph

from .config import DynamicCConfig
from .merge import merge_algorithm
from .model import DynamicCModel, FitReport
from .split import split_algorithm
from .training import TrainingBuffer, collect_round_samples


@dataclass
class RoundStats:
    """Instrumentation of one prediction round (for benches/ablations)."""

    iterations: int = 0
    merges_applied: int = 0
    splits_applied: int = 0
    merge_predicted: int = 0
    split_predicted: int = 0
    verifications: int = 0
    rejected: int = 0
    candidates_scored: int = 0
    moves_applied: int = 0


@dataclass
class ObservationStats:
    """Instrumentation of one training (observation) round."""

    samples: dict[str, int] = field(default_factory=dict)
    evolution_steps: int = 0


class DynamicC(IncrementalClusterer):
    """ML-augmented dynamic clustering over an arbitrary batch algorithm.

    Parameters
    ----------
    graph:
        The method's similarity graph.
    objective:
        Objective function of the underlying clustering problem; used
        both by the batch algorithm during training and to *verify*
        predicted changes at serve time.
    batch:
        The underlying batch algorithm observed during training.
        Defaults to :class:`HillClimbing` over ``objective`` (§7.1).
    model:
        The classifier bundle; defaults to logistic regression for both
        models (the paper's default).
    config:
        Runtime/training tunables.
    seed:
        RNG seed for negative sampling.
    """

    name = "dynamicc"

    def __init__(
        self,
        graph: SimilarityGraph,
        objective: ObjectiveFunction,
        batch: HillClimbing | None = None,
        model: DynamicCModel | None = None,
        config: DynamicCConfig | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__(graph)
        self.objective = objective
        self.config = config or DynamicCConfig()
        self.batch = batch or HillClimbing(objective)
        self.model = model or DynamicCModel(config=self.config)
        self.buffer = TrainingBuffer(self.config.max_training_samples)
        self.last_round_stats = RoundStats()
        self._rng = np.random.default_rng(seed)
        self._rounds_since_fit = 0

    # ------------------------------------------------------------------
    # Training phase (§4 + §5)
    # ------------------------------------------------------------------
    def observe_round(
        self,
        added: Mapping[int, Any] | None = None,
        removed: Iterable[int] | None = None,
        updated: Mapping[int, Any] | None = None,
    ) -> tuple[Clustering, ObservationStats]:
        """One training round: batch re-clustering + evolution capture."""
        obs = self.obs
        changed = self._ingest(added or {}, removed or (), updated or {})
        old = self.clustering.copy()
        if obs.enabled:
            with obs.span("engine.hillclimb", objects=len(self.graph)):
                new = self.batch.cluster(self.graph)
        else:
            new = self.batch.cluster(self.graph)
        samples = collect_round_samples(
            old,
            new.as_partition(),
            changed,
            self._rng,
            self.config,
        )
        self.buffer.add_round(samples)
        self.clustering = new
        stats = ObservationStats(
            samples=samples.counts(),
            evolution_steps=len(samples.merge_positive) // 2
            + len(samples.split_positive),
        )
        return new, stats

    def train(self) -> FitReport:
        """Fit the Merge/Split models from the accumulated buffer."""
        report = self.model.fit(self.buffer)
        self._rounds_since_fit = 0
        return report

    # ------------------------------------------------------------------
    # Checkpoint / restore (the repro.stream durability hooks)
    # ------------------------------------------------------------------
    def checkpoint_state(self) -> dict:
        """JSON-compatible snapshot of all mutable engine state.

        Covers the clustering partition, the trained model bundle, the
        training buffer and the negative-sampling RNG — everything a
        crash recovery needs to continue with identical memberships and
        predictions — but not the similarity graph, which the caller
        owns (payloads are opaque here; :mod:`repro.stream.checkpoint`
        serialises them). Cluster *ids* are re-minted on restore: only
        the partition, not the id values, survives a roundtrip.
        """
        from repro.ml.persistence import bundle_to_dict

        return {
            # Insertion order is preserved so the restored clustering
            # iterates in the same order as the live one.
            "labels": [
                [obj_id, cid] for obj_id, cid in self.clustering.labels().items()
            ],
            "model": bundle_to_dict(self.model) if self.model.is_trained else None,
            "buffer": self.buffer.state_dict(),
            "rounds_since_fit": self._rounds_since_fit,
            "rng_state": self._rng.bit_generator.state,
        }

    def restore_state(self, state: dict) -> None:
        """Restore a :meth:`checkpoint_state` snapshot.

        The similarity graph must already hold exactly the objects the
        snapshot's clustering refers to.
        """
        from repro.ml.persistence import bundle_from_dict

        self.clustering = Clustering.from_labels(
            self.graph, {int(obj_id): int(cid) for obj_id, cid in state["labels"]}
        )
        # The serialised bundle carries fitted parameters, not the
        # classifier factories — keep this engine's configured factories
        # so post-recovery refits stay in the same model family.
        merge_factory = self.model._merge_factory
        split_factory = self.model._split_factory
        if state["model"] is not None:
            self.model = bundle_from_dict(state["model"], config=self.config)
        else:
            # The snapshot was taken before training; a leftover trained
            # model on this engine must not survive the restore.
            self.model = DynamicCModel(config=self.config)
        self.model._merge_factory = merge_factory
        self.model._split_factory = split_factory
        self.buffer.load_state_dict(state["buffer"])
        self._rounds_since_fit = int(state["rounds_since_fit"])
        self._rng.bit_generator.state = state["rng_state"]

    # ------------------------------------------------------------------
    # Prediction phase (Algorithm 3)
    # ------------------------------------------------------------------
    def _recluster(self, changed: set[int]) -> None:
        if not self.model.is_trained:
            raise RuntimeError(
                "DynamicC is not trained; call observe_round() over the "
                "training workload and then train()"
            )
        obs = self.obs
        stats = RoundStats()
        active_objects: set[int] | None = None
        if self.config.candidate_scope == "affected":
            active_objects = self.graph.component_of(changed)
        elif self.config.candidate_scope == "local":
            active_objects = set(changed)
            for obj_id in changed:
                if obj_id in self.graph:
                    active_objects.update(self.graph.neighbors(obj_id))

        touched: set[int] | None = None  # cluster ids changed last iteration
        for _ in range(self.config.max_full_iterations):
            stats.iterations += 1
            if touched is None:
                candidates = self._candidate_clusters(active_objects)
            else:
                # Convergence argument (§6.4): a cluster untouched by the
                # previous iteration and not adjacent to a touched one
                # cannot have become mergeable/splittable — only re-score
                # the frontier.
                candidates = self._frontier_clusters(touched)
            stats.candidates_scored += len(candidates)

            if obs.enabled:
                with obs.span(
                    "engine.merge",
                    candidates=len(candidates),
                    iteration=stats.iterations,
                ):
                    merge_out = merge_algorithm(
                        self.clustering,
                        self.objective,
                        self.model,
                        candidates,
                        self.config,
                    )
            else:
                merge_out = merge_algorithm(
                    self.clustering, self.objective, self.model, candidates, self.config
                )
            split_candidates = [
                cid for cid in candidates if self.clustering.contains_cluster(cid)
            ]
            split_candidates.extend(
                new_cid
                for _, _, new_cid in merge_out.applied
                if self.clustering.contains_cluster(new_cid)
            )
            if obs.enabled:
                with obs.span(
                    "engine.split",
                    candidates=len(split_candidates),
                    iteration=stats.iterations,
                ):
                    split_out = split_algorithm(
                        self.clustering,
                        self.objective,
                        self.model,
                        split_candidates,
                        self.config,
                    )
            else:
                split_out = split_algorithm(
                    self.clustering,
                    self.objective,
                    self.model,
                    split_candidates,
                    self.config,
                )
            touched = set()
            for _, _, new_cid in merge_out.applied:
                touched.add(new_cid)
            for _, rest_cid, part_cid in split_out.applied:
                touched.add(rest_cid)
                touched.add(part_cid)

            stats.merges_applied += len(merge_out.applied)
            stats.splits_applied += len(split_out.applied)
            stats.merge_predicted += merge_out.predicted
            stats.split_predicted += split_out.predicted
            stats.verifications += merge_out.verifications + split_out.verifications
            stats.rejected += len(merge_out.rejected) + len(split_out.rejected)

            if self.config.record_feedback:
                for feats in merge_out.rejected:
                    self.buffer.add_merge_sample(feats, 0)
                for feats in split_out.rejected:
                    self.buffer.add_split_sample(feats, 0)

            if not merge_out.changed and not split_out.changed:
                break

        if self.config.refine_moves:
            stats.moves_applied += self._move_refinement()

        self.last_round_stats = stats
        self._rounds_since_fit += 1
        if (
            self.config.retrain_every
            and self._rounds_since_fit >= self.config.retrain_every
        ):
            self.train()

    def _move_refinement(self) -> int:
        """Apply objective-proposed moves (each verified by its delta).

        A *move* is a split immediately followed by a merge (§4.1);
        objectives with a hard cluster-count constraint (fixed-k
        k-means) make the intermediate split unverifiable on its own,
        so boundary rebalancing must be proposed as atomic moves. Only
        objectives implementing ``refinement_moves`` participate.
        """
        proposals = self.objective.refinement_moves(self.clustering)
        if not proposals:
            return 0
        applied = 0
        for obj_id, target in proposals:
            if obj_id not in self.clustering or not self.clustering.contains_cluster(
                target
            ):
                continue
            if self.clustering.cluster_of(obj_id) == target:
                continue
            delta = self.objective.delta_move(self.clustering, obj_id, target)
            if self.objective.improves(delta):
                self.objective.apply_move(self.clustering, obj_id, target)
                applied += 1
        return applied

    def _frontier_clusters(self, touched: set[int]) -> list[int]:
        """Clusters changed last iteration plus their graph neighbours."""
        frontier: set[int] = set()
        for cid in touched:
            if not self.clustering.contains_cluster(cid):
                continue
            frontier.add(cid)
            frontier.update(self.clustering.neighbor_clusters(cid))
        return [cid for cid in frontier if self.clustering.contains_cluster(cid)]

    def _candidate_clusters(self, active_objects: set[int] | None) -> list[int]:
        """Clusters the models should score this iteration."""
        if active_objects is None:
            return list(self.clustering.cluster_ids())
        seen: set[int] = set()
        for obj_id in active_objects:
            if obj_id in self.clustering:
                seen.add(self.clustering.cluster_of(obj_id))
        return list(seen)
