"""Cross-round transformation derivation (§4.3).

Given the clustering *before* a round (after the §6.1 initial
processing, so both clusterings cover the same objects) and the batch
algorithm's *new* clustering, derive a small sequence of merge/split
steps transforming the old partition into the new one. These steps —
not the batch algorithm's internal search trace — are the cluster
evolution DynamicC trains on, because they describe only the
*difference* between rounds.

The paper's two-phase scheme (Phase 1: keep batch-log steps touching
changed objects; Phase 2: align remaining clusters by splitting old
clusters into their intersections with each new cluster, then merging
the intersections) is implemented by :func:`two_phase_transformation`.
:func:`derive_transformation` is the self-contained variant used by the
training pipeline: it performs the Phase-2 alignment over *all* new
clusters, which provably yields a complete transformation without
needing the batch log, and — as §4.3 notes — step ordering is
irrelevant for training.
"""

from __future__ import annotations

from typing import Iterable

from .evolution import EvolutionLog, MergeOp, SplitOp

Partition = Iterable[Iterable[int]]


def _as_groups(partition: Partition) -> list[frozenset[int]]:
    groups = [frozenset(group) for group in partition]
    return [group for group in groups if group]


def derive_transformation(old: Partition, new: Partition) -> EvolutionLog:
    """Merge/split steps transforming partition ``old`` into ``new``.

    Both partitions must cover exactly the same objects. The result is
    minimal in the §4.3 sense: each old cluster is split only into its
    non-trivial intersections with new clusters, and each new cluster is
    assembled with n−1 pairwise merges of those intersections.
    """
    old_groups = _as_groups(old)
    new_groups = _as_groups(new)
    old_objects = set().union(*old_groups) if old_groups else set()
    new_objects = set().union(*new_groups) if new_groups else set()
    if old_objects != new_objects:
        raise ValueError(
            "old and new partitions must cover the same objects "
            f"(difference: {sorted((old_objects ^ new_objects))[:10]} ...)"
        )

    log = EvolutionLog()
    # Current working partition, indexed by membership for fast lookup.
    current: dict[int, frozenset[int]] = {}
    group_of: dict[int, int] = {}
    for idx, group in enumerate(old_groups):
        current[idx] = group
        for obj_id in group:
            group_of[obj_id] = idx
    next_idx = len(old_groups)

    # Deterministic order: largest new clusters first, ties by min member.
    for target in sorted(new_groups, key=lambda g: (-len(g), min(g))):
        # Find current groups overlapping the target.
        overlapping: dict[int, frozenset[int]] = {}
        for obj_id in target:
            idx = group_of[obj_id]
            overlapping.setdefault(idx, current[idx])
        pieces: list[frozenset[int]] = []
        piece_ids: list[int] = []
        for idx, group in sorted(overlapping.items(), key=lambda kv: min(kv[1])):
            intersection = group & target
            if intersection < group:
                # Split the group into (intersection, remainder).
                log.append(SplitOp(cluster=group, part=intersection))
                remainder = group - intersection
                current[idx] = remainder
                for obj_id in remainder:
                    group_of[obj_id] = idx
                piece_idx = next_idx
                next_idx += 1
                current[piece_idx] = intersection
                for obj_id in intersection:
                    group_of[obj_id] = piece_idx
                pieces.append(intersection)
                piece_ids.append(piece_idx)
            else:
                pieces.append(group)
                piece_ids.append(idx)
        # Merge the pieces pairwise into the target (n − 1 merges).
        accumulated = pieces[0]
        accumulated_idx = piece_ids[0]
        for piece, piece_idx in zip(pieces[1:], piece_ids[1:]):
            log.append(MergeOp(left=accumulated, right=piece))
            accumulated = accumulated | piece
            del current[piece_idx]
            current[accumulated_idx] = accumulated
            for obj_id in piece:
                group_of[obj_id] = accumulated_idx
    return log


def two_phase_transformation(
    batch_log: EvolutionLog,
    old: Partition,
    new: Partition,
    changed: set[int],
) -> EvolutionLog:
    """The paper's literal two-phase derivation (Example 4.2).

    Phase 1 keeps the batch steps relevant to this round's changed
    objects (latest change per object). Phase 2 inspects each cluster
    appearing in those kept changes: any such cluster that contains old
    objects but does not exist in the old clustering is aligned by
    splitting the overlapping old clusters into intersections and
    merging them.

    Returned steps transform *the relevant portion* of the old
    clustering; the self-contained :func:`derive_transformation` is what
    training uses by default.
    """
    old_groups = _as_groups(old)
    old_partition = set(old_groups)
    log = EvolutionLog()

    # Phase 1 — keep only the latest change touching each changed object.
    seen: set[int] = set()
    kept: list = []
    for op in reversed(list(batch_log)):
        touched = op.touched_objects() & changed
        if touched - seen:
            kept.append(op)
            seen |= touched
    kept.reverse()
    for op in kept:
        log.append(op)

    # Phase 2 — align clusters of kept changes that pre-existed partially.
    handled: set[frozenset[int]] = set()
    for op in kept:
        sides = (
            (op.left, op.right) if isinstance(op, MergeOp) else (op.cluster - op.part, op.part)
        )
        for side in sides:
            old_side = side - changed
            if not old_side or side in handled:
                continue
            handled.add(side)
            if frozenset(old_side) in old_partition or side in old_partition:
                continue
            # Split overlapping old clusters into intersections with `side`.
            pieces: list[frozenset[int]] = []
            for group in old_groups:
                intersection = group & side
                if not intersection:
                    continue
                if intersection < group:
                    log.append(SplitOp(cluster=group, part=intersection))
                pieces.append(intersection)
            accumulated = pieces[0] if pieces else frozenset()
            for piece in pieces[1:]:
                log.append(MergeOp(left=accumulated, right=piece))
                accumulated = accumulated | piece
    return log


def replay_transformation(groups: Partition, log: EvolutionLog) -> frozenset[frozenset[int]]:
    """Apply an evolution log to a partition (validation utility).

    Raises ``ValueError`` when a step does not match the current state
    — the test suite uses this to prove derived transformations are
    well-formed and complete.
    """
    current: set[frozenset[int]] = set(_as_groups(groups))
    for op in log:
        if isinstance(op, MergeOp):
            if op.left not in current or op.right not in current:
                raise ValueError(f"merge sides not present: {op}")
            current.remove(op.left)
            current.remove(op.right)
            current.add(op.left | op.right)
        else:
            if op.cluster not in current:
                raise ValueError(f"split cluster not present: {op}")
            current.remove(op.cluster)
            current.add(op.part)
            current.add(op.cluster - op.part)
    return frozenset(current)
