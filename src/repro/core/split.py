"""Split algorithm — Algorithm 2 (§6.3).

For each cluster the Split model flags, try to split out *one* object:
the member "most different from the other objects in the same cluster"
first. Candidates are ranked by their total similarity to the rest of
the cluster (ascending — the stated prioritisation; the paper's
"decreasing order with their weights" wording conflicts with its own
intent, see DESIGN.md). The first candidate whose removal improves the
objective is split into a fresh singleton cluster.

Splitting one object at a time is deliberate (§6.3): later rounds —
and later iterations of Algorithm 3's alternating loop — re-predict and
continue splitting if the cluster still looks unstable, and observed
splits overwhelmingly shed a small side anyway.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.clustering.objectives.base import ObjectiveFunction
from repro.clustering.state import Clustering

from .config import DynamicCConfig
from .features import ClusterFeatures, cluster_features
from .model import DynamicCModel


@dataclass
class SplitOutcome:
    """What one run of Algorithm 2 did."""

    predicted: int = 0
    applied: list[tuple[int, int, int]] = field(default_factory=list)
    verifications: int = 0
    rejected: list[ClusterFeatures] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return bool(self.applied)


def rank_split_candidates(clustering: Clustering, cid: int) -> list[int]:
    """Members ordered most-different-first (ascending link weight).

    The weight of member r is the inter-similarity between {r} and
    C − {r}: the sum of r's stored edges into the rest of the cluster.
    """
    members = clustering.members_view(cid)
    graph = clustering.graph
    weighted = []
    for obj_id in members:
        weight = sum(
            sim for other, sim in graph.neighbors(obj_id).items() if other in members
        )
        weighted.append((weight, obj_id))
    weighted.sort()
    return [obj_id for _, obj_id in weighted]


def split_algorithm(
    clustering: Clustering,
    objective: ObjectiveFunction,
    model: DynamicCModel,
    candidates: Sequence[int],
    config: DynamicCConfig | None = None,
) -> SplitOutcome:
    """Run Algorithm 2 over the candidate clusters."""
    config = config or DynamicCConfig()
    outcome = SplitOutcome()

    alive = [
        cid
        for cid in candidates
        if clustering.contains_cluster(cid) and clustering.size(cid) > 1
    ]
    features = [cluster_features(clustering, cid) for cid in alive]
    if not features:
        return outcome
    probabilities = model.split_probabilities(features)
    ranked = sorted(
        (
            (prob, cid, feats)
            for prob, cid, feats in zip(probabilities, alive, features)
            if prob >= model.split_theta
        ),
        key=lambda item: -item[0],
    )
    outcome.predicted = len(ranked)

    for _, cid, feats in ranked:
        if not clustering.contains_cluster(cid) or clustering.size(cid) < 2:
            continue
        split_done = False
        ranked_members = rank_split_candidates(clustering, cid)
        if config.split_attempt_limit is not None:
            ranked_members = ranked_members[: config.split_attempt_limit]
        for obj_id in ranked_members:
            part = {obj_id}
            if config.verify_with_objective:
                outcome.verifications += 1
                delta = objective.delta_split(clustering, cid, part)
                if not objective.improves(delta):
                    continue
            rest_cid, part_cid = objective.apply_split(clustering, cid, part)
            outcome.applied.append((cid, rest_cid, part_cid))
            split_done = True
            break
        if not split_done:
            outcome.rejected.append(feats)
    return outcome
