"""Merge algorithm — Algorithm 1 (§6.2).

The Merge model only says *whether* a cluster should merge, not with
whom (the pairwise formulation would be intractable, §5.2). Algorithm 1
recovers the partner with two ideas:

* clusters that ought to merge together are likely *both* predicted
  "merge", so the candidate space is the predicted set ``Cl_merge``
  (restricted here to similarity-graph neighbours — merging clusters
  with zero cross similarity cannot improve any of the paper's
  objectives);
* among candidates, pick the partner whose hypothetical merged cluster
  has the *lowest* predicted merge probability ``P(C_new = 1)`` — the
  most *stable* result (§6.2).

Every selected merge is verified against the objective function before
being applied (§5.4 "Avoiding False Positives"); rejected predictions
are reported so the caller can feed them back as negative samples.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Sequence

from repro.clustering.objectives.base import ObjectiveFunction
from repro.clustering.state import Clustering

from .config import DynamicCConfig
from .features import ClusterFeatures, cluster_features, merged_features
from .model import DynamicCModel


@dataclass
class MergeOutcome:
    """What one run of Algorithm 1 did."""

    predicted: int = 0
    applied: list[tuple[int, int, int]] = field(default_factory=list)
    verifications: int = 0
    rejected: list[ClusterFeatures] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return bool(self.applied)


def merge_algorithm(
    clustering: Clustering,
    objective: ObjectiveFunction,
    model: DynamicCModel,
    candidates: Sequence[int],
    config: DynamicCConfig | None = None,
) -> MergeOutcome:
    """Run Algorithm 1 over the candidate clusters.

    Parameters
    ----------
    clustering:
        Live clustering, mutated in place through the objective's
        mutation gateway.
    candidates:
        Cluster ids the model should score (the runtime passes the
        clusters in the changed similarity components, or all clusters
        under ``candidate_scope="all"``).
    """
    config = config or DynamicCConfig()
    outcome = MergeOutcome()

    # Round-level memo for pairwise merge deltas, keyed on the
    # clustering version: within one version nothing mutates, so the
    # delta of an unordered pair is scored once even though the partner
    # loop visits it from both sides (and revisits survivors in later
    # Algorithm-3 iterations). Any applied change bumps the version and
    # naturally invalidates every cached entry.
    delta_memo: dict[tuple[int, int, int], float] = {}

    def pair_delta(cid_x: int, cid_y: int) -> float:
        if cid_y < cid_x:
            cid_x, cid_y = cid_y, cid_x
        key = (cid_x, cid_y, clustering.version)
        cached = delta_memo.get(key)
        if cached is None:
            cached = objective.delta_merge(clustering, cid_x, cid_y)
            delta_memo[key] = cached
            outcome.verifications += 1
        return cached

    # Line 2: predict, collect Cl_merge.
    alive = [cid for cid in candidates if clustering.contains_cluster(cid)]
    features = [cluster_features(clustering, cid) for cid in alive]
    if not features:
        return outcome
    probabilities = model.merge_probabilities(features)
    ranked = sorted(
        (
            (prob, cid, feats)
            for prob, cid, feats in zip(probabilities, alive, features)
            if prob >= model.merge_theta
        ),
        key=lambda item: -item[0],
    )
    outcome.predicted = len(ranked)
    cl_merge: set[int] = {cid for _, cid, _ in ranked}
    queue: deque[tuple[float, int, ClusterFeatures]] = deque(ranked)

    # Lines 3–13: repeatedly dequeue and try to merge.
    while queue:
        _, cid, feats = queue.popleft()
        if cid not in cl_merge or not clustering.contains_cluster(cid):
            continue
        cl_merge.discard(cid)

        # Partner selection among Cl_merge (§6.2): by default the cluster
        # minimising P(merged = 1) — the most stable outcome; optionally
        # the best objective delta (see DynamicCConfig.partner_selection).
        partner: int | None = None
        partner_score = float("inf")
        neighbour_cross = clustering.neighbor_clusters(cid)
        partner_pool = list(neighbour_cross)
        limit = config.partner_scan_limit
        if limit is not None and len(partner_pool) > limit:
            # Keep the strongest candidates by average cross-similarity;
            # weakly-connected partners essentially never win best-delta
            # and each one costs a full objective evaluation.
            size_cid = clustering.size(cid)
            partner_pool = sorted(
                (
                    o
                    for o in partner_pool
                    if o in cl_merge and clustering.contains_cluster(o)
                ),
                key=lambda o: -neighbour_cross[o] / (size_cid * clustering.size(o)),
            )[:limit]
        extra = objective.merge_candidates(clustering, cid)
        if extra:
            seen_pool = set(partner_pool)
            partner_pool.extend(o for o in extra if o not in seen_pool)
        # Without objective verification (Ablation A) the algorithm must
        # not consult the objective at all, so partner selection falls
        # back to the model-probability heuristic.
        by_delta = (
            config.partner_selection == "best-delta" and config.verify_with_objective
        )
        for other in partner_pool:
            if other not in cl_merge or not clustering.contains_cluster(other):
                continue
            if by_delta:
                score = pair_delta(cid, other)
            else:
                score = model.merge_probability(
                    merged_features(clustering, cid, other)
                )
            if score < partner_score:
                partner_score = score
                partner = other
        if partner is None:
            continue

        # Verify with the objective before applying (§5.4). In best-delta
        # mode the partner's delta was just computed — it *is* the
        # verification.
        if config.verify_with_objective:
            if by_delta:
                delta = partner_score
            else:
                delta = pair_delta(cid, partner)
            if not objective.improves(delta):
                # Pairwise merge uphill: the cluster may still belong to a
                # group whose complete merge improves (assembly barrier).
                group = _chain_group(clustering, cid, cl_merge, config)
                if group is not None:
                    outcome.verifications += 1
                    group_delta = objective.delta_merge_group(clustering, group)
                    if objective.improves(group_delta):
                        new_cid = objective.apply_merge_group(clustering, group)
                        for member in group:
                            cl_merge.discard(member)
                        outcome.applied.append((cid, group[1], new_cid))
                        continue
                outcome.rejected.append(feats)
                continue
        new_cid = objective.apply_merge(clustering, cid, partner)
        cl_merge.discard(partner)
        outcome.applied.append((cid, partner, new_cid))
        # Agglomeration continues within one run: if the merged cluster is
        # itself predicted to merge, it rejoins Cl_merge ("this process
        # continues until Cl_merge is empty", §6.2) — otherwise every
        # chain of merges would cost one full Algorithm-3 iteration each.
        new_feats = cluster_features(clustering, new_cid)
        new_probability = model.merge_probability(new_feats)
        if new_probability >= model.merge_theta:
            cl_merge.add(new_cid)
            queue.append((new_probability, new_cid, new_feats))
    return outcome


def _chain_group(
    clustering: Clustering,
    cid: int,
    cl_merge: set[int],
    config: DynamicCConfig,
) -> list[int] | None:
    """Chain of ``cid`` plus its closest Cl_merge neighbours (≥3 clusters)."""
    if config.merge_chain_depth < 2:
        return None
    chain = [cid]
    while len(chain) <= config.merge_chain_depth:
        best_avg = config.merge_chain_threshold
        best_next: int | None = None
        for member in chain:
            size_m = clustering.size(member)
            for other, cross in clustering.neighbor_clusters(member).items():
                if other in chain or other not in cl_merge:
                    continue
                avg = cross / (size_m * clustering.size(other))
                if avg >= best_avg:
                    best_avg = avg
                    best_next = other
        if best_next is None:
            break
        chain.append(best_next)
    return chain if len(chain) >= 3 else None
