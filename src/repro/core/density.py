"""DynamicC for DBSCAN (§7.2.1).

DBSCAN has no objective function, so predicted changes cannot be
verified by a score delta. The paper instead judges a change "by
checking whether the relevant previous core points are stable". We
express exactly that check as a *density pseudo-objective* so the
generic Algorithms 1–3 run unmodified — demonstrating the paper's claim
that DynamicC augments other clustering methods "with minor changes":

* a **merge** of clusters A and B is justified iff a core point of one
  is an ε-neighbour of a core point of the other (they would be density-
  connected and DBSCAN would have produced one cluster);
* a **split** of object r out of cluster C is justified iff r is not an
  ε-neighbour of any core point of C − {r} (r is no longer density-
  reachable inside C).

The pseudo-objective's full score counts density violations of the
current clustering (0 for an exact DBSCAN result), so quality can still
be tracked over rounds.
"""

from __future__ import annotations

from typing import Iterable

from repro.clustering.batch.dbscan import DBSCAN, eps_neighborhood, is_core
from repro.clustering.objectives.base import ObjectiveFunction
from repro.clustering.state import Clustering
from repro.similarity.graph import SimilarityGraph

from .config import DynamicCConfig
from .dynamicc import DynamicC
from .model import DynamicCModel


class DensityObjective(ObjectiveFunction):
    """Density-violation count standing in for an objective function.

    ``delta_merge`` / ``delta_split`` return −1 when the change is
    density-justified and +1 otherwise, so the generic "apply only when
    the objective improves" verification (§5.4) reduces to the paper's
    core-point-stability check.
    """

    name = "density"

    def __init__(self, sim_eps: float, min_pts: int) -> None:
        self.sim_eps = sim_eps
        self.min_pts = min_pts
        # Core status depends on the graph alone, not the clustering, so
        # it can be memoised per graph version (dynamic ops bump it).
        self._core_cache: dict[int, bool] = {}
        self._core_cache_version: int = -1
        self._core_cache_graph: SimilarityGraph | None = None

    # ------------------------------------------------------------------
    def _is_core(self, graph: SimilarityGraph, obj_id: int) -> bool:
        if (
            self._core_cache_graph is not graph
            or self._core_cache_version != graph.version
        ):
            self._core_cache = {}
            self._core_cache_graph = graph
            self._core_cache_version = graph.version
        cached = self._core_cache.get(obj_id)
        if cached is None:
            cached = is_core(graph, obj_id, self.sim_eps, self.min_pts)
            self._core_cache[obj_id] = cached
        return cached

    def _density_connected(
        self, graph: SimilarityGraph, left: Iterable[int], right: set[int]
    ) -> bool:
        """True when a core of ``left`` ε-neighbours a core of ``right``."""
        left = set(left)
        if len(right) < len(left):  # scan the smaller side
            left, right = right, left
        for obj_id in left:
            if not self._is_core(graph, obj_id):
                continue
            for other, sim in graph.neighbors(obj_id).items():
                if sim >= self.sim_eps and other in right and self._is_core(graph, other):
                    return True
        return False

    def _attached(self, graph: SimilarityGraph, obj_id: int, rest: set[int]) -> bool:
        """True when ``obj_id`` is ε-reachable from a core point in ``rest``."""
        for other, sim in graph.neighbors(obj_id).items():
            if sim >= self.sim_eps and other in rest and self._is_core(graph, other):
                return True
        return False

    # ------------------------------------------------------------------
    def score(self, clustering: Clustering) -> float:
        """Number of density violations (0 for an exact DBSCAN clustering)."""
        graph = clustering.graph
        violations = 0
        # Unattached members within clusters.
        for cid in clustering.cluster_ids():
            members = clustering.members_view(cid)
            if len(members) == 1:
                continue
            for obj_id in members:
                if self._is_core(graph, obj_id):
                    continue
                if not self._attached(graph, obj_id, members - {obj_id}):
                    violations += 1
        # Cross-cluster core-core ε edges (clusters that should be one).
        seen_pairs: set[tuple[int, int]] = set()
        for obj_id in graph.object_ids():
            if obj_id not in clustering or not self._is_core(graph, obj_id):
                continue
            cid = clustering.cluster_of(obj_id)
            for other, sim in graph.neighbors(obj_id).items():
                if sim < self.sim_eps or other not in clustering:
                    continue
                other_cid = clustering.cluster_of(other)
                if other_cid == cid or not self._is_core(graph, other):
                    continue
                pair = (min(cid, other_cid), max(cid, other_cid))
                if pair not in seen_pairs:
                    seen_pairs.add(pair)
                    violations += 1
        return float(violations)

    def delta_merge(self, clustering: Clustering, cid_a: int, cid_b: int) -> float:
        graph = clustering.graph
        members_a = clustering.members_view(cid_a)
        members_b = clustering.members_view(cid_b)
        # Merge singleton new arrivals into clusters they are attached to
        # even when the singleton is not itself core (border points).
        if len(members_a) == 1:
            obj_id = next(iter(members_a))
            if self._attached(graph, obj_id, set(members_b)):
                return -1.0
        if len(members_b) == 1:
            obj_id = next(iter(members_b))
            if self._attached(graph, obj_id, set(members_a)):
                return -1.0
        if self._density_connected(graph, members_a, set(members_b)):
            return -1.0
        return 1.0

    def delta_merge_group(self, clustering: Clustering, cids: list[int]) -> float:
        """Density clustering has no assembly barriers: a justified group
        merge always contains a justified pairwise merge, so group moves
        are never needed (and the generic copy-and-score fallback would
        be expensive). Always reject."""
        return 1.0

    def delta_split(self, clustering: Clustering, cid: int, part: Iterable[int]) -> float:
        graph = clustering.graph
        part_set = set(part)
        members = clustering.members_view(cid)
        rest = members - part_set
        if not rest:
            raise ValueError("part must be a proper subset")
        for obj_id in part_set:
            if self._attached(graph, obj_id, rest):
                return 1.0  # still reachable: split not justified
            if self._is_core(graph, obj_id) and self._density_connected(
                graph, [obj_id], rest
            ):
                return 1.0
        return -1.0


class DBSCANBatchAdapter:
    """Presents batch DBSCAN through the HillClimbing ``cluster()`` interface
    so :class:`~repro.core.dynamicc.DynamicC` can observe it during training."""

    def __init__(self, sim_eps: float, min_pts: int) -> None:
        self._dbscan = DBSCAN(sim_eps, min_pts)

    def cluster(self, graph: SimilarityGraph, initial=None, log=None, restrict_to=None) -> Clustering:
        return self._dbscan.run(graph).clustering


def make_dynamic_dbscan(
    graph: SimilarityGraph,
    sim_eps: float,
    min_pts: int,
    config: DynamicCConfig | None = None,
    model: DynamicCModel | None = None,
    seed: int = 0,
) -> DynamicC:
    """DynamicC instance augmented with DBSCAN (§7.2.1)."""
    objective = DensityObjective(sim_eps, min_pts)
    return DynamicC(
        graph,
        objective,
        batch=DBSCANBatchAdapter(sim_eps, min_pts),
        model=model,
        config=config,
        seed=seed,
    )
