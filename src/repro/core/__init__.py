"""DynamicC core: the paper's primary contribution."""

from .config import DynamicCConfig
from .density import DBSCANBatchAdapter, DensityObjective, make_dynamic_dbscan
from .dynamicc import DynamicC, ObservationStats, RoundStats
from .evolution import EvolutionLog, MergeOp, SplitOp
from .features import (
    MERGE_FEATURE_NAMES,
    SPLIT_FEATURE_NAMES,
    ClusterFeatures,
    cluster_features,
    features_of_members,
    merged_features,
)
from .merge import MergeOutcome, merge_algorithm
from .model import DynamicCModel, FitReport
from .sampling import sample_negatives
from .split import SplitOutcome, rank_split_candidates, split_algorithm
from .training import (
    RoundSamples,
    TrainingBuffer,
    collect_round_samples,
    select_theta,
)
from .transformation import (
    derive_transformation,
    replay_transformation,
    two_phase_transformation,
)

__all__ = [
    "ClusterFeatures",
    "DBSCANBatchAdapter",
    "DensityObjective",
    "DynamicC",
    "DynamicCConfig",
    "DynamicCModel",
    "EvolutionLog",
    "FitReport",
    "MERGE_FEATURE_NAMES",
    "MergeOp",
    "MergeOutcome",
    "ObservationStats",
    "RoundSamples",
    "RoundStats",
    "SPLIT_FEATURE_NAMES",
    "SplitOp",
    "SplitOutcome",
    "TrainingBuffer",
    "cluster_features",
    "collect_round_samples",
    "derive_transformation",
    "features_of_members",
    "make_dynamic_dbscan",
    "merge_algorithm",
    "merged_features",
    "rank_split_candidates",
    "replay_transformation",
    "sample_negatives",
    "select_theta",
    "split_algorithm",
    "two_phase_transformation",
]
