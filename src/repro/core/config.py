"""Configuration for the DynamicC runtime and training pipeline."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class DynamicCConfig:
    """Tunables of DynamicC, defaults following the paper.

    Attributes
    ----------
    negative_active_weight / negative_inactive_weight:
        §5.3 — probability mass given to "active" clusters (clusters in
        the similarity components touched by the round's changes) when
        sampling negatives. The paper uses 0.7 / 0.3.
    negatives_per_positive:
        §5.3 — "the number of negative samples to be equal to that of
        the positive samples".
    max_training_samples:
        §5.3 — "we remove those old samples when the size of training
        data becomes too large"; oldest samples are dropped beyond this.
    theta_quantile:
        §5.4 — θ is set to the minimum predicted probability over the
        positive training samples (quantile 0.0 → exactly the paper's
        rule, 100% training recall). Raising it trades recall for fewer
        verification checks (Fig. 4); the benches sweep it.
    theta_floor:
        Lower bound on θ so a single outlier positive cannot force the
        models to nominate every cluster.
    candidate_scope:
        "affected" (default) — the models score clusters in the
        similarity components touched by this round's changes, which is
        where evolution can occur; "local" restricts further to the
        clusters of changed objects and their direct graph neighbours
        (right for density/spatial workloads whose graphs form one big
        component); "all" scores every cluster (the literal reading of
        §6, used in ablations).
    partner_selection:
        How Algorithm 1 picks the merge partner among Cl_merge:
        "min-probability" is the paper's §6.2 heuristic (the partner
        minimising the merged cluster's predicted merge probability —
        the most stable outcome); "best-delta" (default) picks the
        partner with the best objective improvement. best-delta is the
        robust default in this reproduction: the min-P proxy misfires
        when the model is trained on few samples, and for objectives
        whose verification cannot rank partners at all (the fixed-k
        k-means penalty makes *every* merge pass verification while
        above k) the partner choice must carry the quality. The
        ablation bench compares both.
    partner_scan_limit:
        Cap on how many Cl_merge partners Algorithm 1 scores per
        dequeued cluster, keeping the strongest by average
        cross-similarity (plus every objective-proposed extra
        candidate). Dense cluster adjacencies otherwise make partner
        selection O(degree) objective evaluations per cluster — almost
        all rejected. The applied merge is still verified by its exact
        delta, so the cap bounds scan cost, never correctness.
        ``None`` scans every eligible neighbour (the pre-cap
        behaviour, used by ablations).
    max_full_iterations:
        Cap on the alternating merge/split loop of Algorithm 3 (it
        terminates on its own because every applied change improves the
        objective; the cap is a safety net).
    verify_with_objective:
        §5.4 — verify each predicted change with the objective function
        before applying. Disabling this is Ablation A.
    retrain_every:
        Re-fit the models from the training buffer every N prediction
        rounds, folding in serve-time feedback (0 disables).
    record_feedback:
        Record verification outcomes at serve time (rejected predictions
        become fresh negative samples) for continuous retraining.
    merge_chain_depth / merge_chain_threshold:
        When a nominated pairwise merge fails verification, try a
        *group* merge of the cluster's chain of closest Cl_merge
        neighbours (up to depth clusters, joined at ≥ threshold average
        cross-similarity). Dissolves the pairwise assembly barriers of
        objectives like DB-index; 0 depth disables.
    split_attempt_limit:
        Algorithm 2 tries splitting out the most-different members in
        order until one improves; this caps the attempts per flagged
        cluster (the ranking means later members virtually never
        succeed when the first few fail). ``None`` checks every member,
        the paper's literal loop.
    refine_moves:
        After the merge/split loop converges, apply objective-proposed
        atomic moves (each verified by its delta). A move is split+merge
        (§4.1), but fixed-k objectives make the intermediate split
        unverifiable alone, so rebalancing must be proposed atomically.
        No-op for objectives without ``refinement_moves``.
    """

    negative_active_weight: float = 0.7
    negative_inactive_weight: float = 0.3
    negatives_per_positive: float = 1.0
    max_training_samples: int = 20_000
    theta_quantile: float = 0.0
    theta_floor: float = 0.02
    candidate_scope: str = "affected"
    partner_selection: str = "best-delta"
    partner_scan_limit: int | None = 8
    max_full_iterations: int = 25
    verify_with_objective: bool = True
    retrain_every: int = 0
    record_feedback: bool = True
    merge_chain_depth: int = 4
    merge_chain_threshold: float = 0.3
    split_attempt_limit: int | None = 3
    refine_moves: bool = True

    def __post_init__(self) -> None:
        if self.candidate_scope not in ("affected", "local", "all"):
            raise ValueError(
                "candidate_scope must be 'affected', 'local' or 'all'"
            )
        if self.partner_selection not in ("min-probability", "best-delta"):
            raise ValueError(
                "partner_selection must be 'min-probability' or 'best-delta'"
            )
        total = self.negative_active_weight + self.negative_inactive_weight
        if total <= 0:
            raise ValueError("negative sampling weights must sum to a positive value")
        if not 0.0 <= self.theta_quantile < 1.0:
            raise ValueError("theta_quantile must be in [0, 1)")
