"""Training-data pipeline: sample collection, buffer, θ selection (§5.2–5.4).

One *round* of the training phase works as follows. After the round's
data operations are applied (initial processing, §6.1) DynamicC holds
the old clustering; the batch algorithm then produces the new
clustering. The old→new difference is derived as merge/split evolution
steps (:mod:`repro.core.transformation`), replayed on a copy of the old
clustering so each step's participating clusters can be featurised *in
the state where the decision was made*:

* each merge step yields two positive Merge-model samples (both merged
  clusters),
* each split step yields one positive Split-model sample,
* clusters the round left untouched are the negative pool, sampled with
  the §5.3 active-cluster weighting.

θ (Eq. 2's decision threshold) is chosen per model as the minimum
predicted probability over positive training samples — 100% training
recall (§5.4) — and can be swept for the Fig. 4 trade-off.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.clustering.state import Clustering
from repro.ml.base import BinaryClassifier

from .config import DynamicCConfig
from .evolution import EvolutionLog, MergeOp, SplitOp
from .features import ClusterFeatures, cluster_features
from .sampling import sample_negatives
from .transformation import derive_transformation


@dataclass
class RoundSamples:
    """Labelled feature vectors extracted from one training round."""

    merge_positive: list[ClusterFeatures] = field(default_factory=list)
    split_positive: list[ClusterFeatures] = field(default_factory=list)
    merge_negative: list[ClusterFeatures] = field(default_factory=list)
    split_negative: list[ClusterFeatures] = field(default_factory=list)

    def counts(self) -> dict[str, int]:
        return {
            "merge_positive": len(self.merge_positive),
            "split_positive": len(self.split_positive),
            "merge_negative": len(self.merge_negative),
            "split_negative": len(self.split_negative),
        }


def collect_round_samples(
    old_clustering: Clustering,
    new_partition: frozenset[frozenset[int]],
    changed: set[int],
    rng: np.random.Generator,
    config: DynamicCConfig | None = None,
    log: EvolutionLog | None = None,
) -> RoundSamples:
    """Extract one round's training samples (§5.2 + §5.3).

    Parameters
    ----------
    old_clustering:
        State before the batch re-clustering (after initial processing).
        Not mutated — replay happens on a copy.
    new_partition:
        The batch algorithm's result as a canonical partition.
    changed:
        Object ids added/updated this round ("relevant" objects, §4.3;
        they also seed the active components for negative sampling).
    rng:
        Randomness source for negative sampling.
    log:
        Pre-derived evolution steps; derived from the two partitions
        when omitted.
    """
    config = config or DynamicCConfig()
    if log is None:
        log = derive_transformation(old_clustering.as_partition(), new_partition)

    samples = RoundSamples()
    replay = old_clustering.copy()
    touched: set[int] = set()

    for op in log:
        if isinstance(op, MergeOp):
            cid_left = _resolve_cluster(replay, op.left)
            cid_right = _resolve_cluster(replay, op.right)
            samples.merge_positive.append(cluster_features(replay, cid_left))
            samples.merge_positive.append(cluster_features(replay, cid_right))
            replay.merge(cid_left, cid_right)
            touched |= op.left | op.right
        else:
            cid = _resolve_cluster(replay, op.cluster)
            samples.split_positive.append(cluster_features(replay, cid))
            replay.split(cid, set(op.part))
            touched |= op.cluster

    # Negative pool: old clusters no evolution step touched.
    active_objects = old_clustering.graph.component_of(changed)
    negatives_active: list[ClusterFeatures] = []
    negatives_inactive: list[ClusterFeatures] = []
    for cid in old_clustering.cluster_ids():
        members = old_clustering.members_view(cid)
        if members & touched:
            continue
        features = cluster_features(old_clustering, cid)
        if members & active_objects:
            negatives_active.append(features)
        else:
            negatives_inactive.append(features)

    merge_count = int(round(config.negatives_per_positive * len(samples.merge_positive)))
    split_count = int(round(config.negatives_per_positive * len(samples.split_positive)))
    samples.merge_negative = sample_negatives(
        negatives_active,
        negatives_inactive,
        merge_count,
        rng,
        config.negative_active_weight,
        config.negative_inactive_weight,
    )
    samples.split_negative = sample_negatives(
        negatives_active,
        negatives_inactive,
        split_count,
        rng,
        config.negative_active_weight,
        config.negative_inactive_weight,
    )
    return samples


def _resolve_cluster(clustering: Clustering, members: frozenset[int]) -> int:
    """Find the live cluster equal to ``members`` during replay."""
    cid = clustering.cluster_of(next(iter(members)))
    if clustering.members_view(cid) != members:
        raise ValueError(
            "evolution step does not match replay state "
            f"(expected cluster {sorted(members)[:6]}..., "
            f"found {sorted(clustering.members_view(cid))[:6]}...)"
        )
    return cid


class TrainingBuffer:
    """Bounded FIFO store of labelled samples for the two models (§5.3).

    "We remove those old samples when the size of training data becomes
    too large" — oldest samples fall off when ``max_size`` is exceeded,
    keeping the model focused on recent workload behaviour.
    """

    def __init__(self, max_size: int = 20_000) -> None:
        self.max_size = max_size
        self._merge: deque[tuple[np.ndarray, int]] = deque(maxlen=max_size)
        self._split: deque[tuple[np.ndarray, int]] = deque(maxlen=max_size)

    def add_round(self, samples: RoundSamples) -> None:
        for features in samples.merge_positive:
            self._merge.append((features.merge_vector(), 1))
        for features in samples.merge_negative:
            self._merge.append((features.merge_vector(), 0))
        for features in samples.split_positive:
            self._split.append((features.split_vector(), 1))
        for features in samples.split_negative:
            self._split.append((features.split_vector(), 0))

    def add_merge_sample(self, features: ClusterFeatures, label: int) -> None:
        self._merge.append((features.merge_vector(), int(label)))

    def add_split_sample(self, features: ClusterFeatures, label: int) -> None:
        self._split.append((features.split_vector(), int(label)))

    # ------------------------------------------------------------------
    def merge_matrix(self) -> tuple[np.ndarray, np.ndarray]:
        return self._matrix(self._merge, width=4)

    def split_matrix(self) -> tuple[np.ndarray, np.ndarray]:
        return self._matrix(self._split, width=3)

    @staticmethod
    def _matrix(store, width: int) -> tuple[np.ndarray, np.ndarray]:
        if not store:
            return np.empty((0, width)), np.empty((0,), dtype=int)
        X = np.array([vec for vec, _ in store], dtype=float)
        y = np.array([label for _, label in store], dtype=int)
        return X, y

    # ------------------------------------------------------------------
    # Checkpointing (the buffer is part of DynamicC's durable state: it
    # feeds retraining, so crash recovery must restore it exactly)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-compatible snapshot of the buffer contents."""
        return {
            "max_size": self.max_size,
            "merge": [[vec.tolist(), label] for vec, label in self._merge],
            "split": [[vec.tolist(), label] for vec, label in self._split],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot written by :meth:`state_dict`."""
        self.max_size = int(state["max_size"])
        self._merge = deque(
            ((np.asarray(vec, dtype=float), int(label)) for vec, label in state["merge"]),
            maxlen=self.max_size,
        )
        self._split = deque(
            ((np.asarray(vec, dtype=float), int(label)) for vec, label in state["split"]),
            maxlen=self.max_size,
        )

    @property
    def merge_size(self) -> int:
        return len(self._merge)

    @property
    def split_size(self) -> int:
        return len(self._split)

    def __len__(self) -> int:
        return len(self._merge) + len(self._split)


def select_theta(
    model: BinaryClassifier,
    X: np.ndarray,
    y: np.ndarray,
    quantile: float = 0.0,
    floor: float = 0.02,
) -> float:
    """θ = minimum positive-sample probability (§5.4), 100% training recall.

    ``quantile > 0`` deliberately sacrifices training recall for fewer
    serve-time checks — the Fig. 4 trade-off knob. The floor guards
    against one outlier positive dragging θ to ~0 (which would nominate
    every cluster and destroy the latency advantage).
    """
    positives = X[np.asarray(y) == 1]
    if len(positives) == 0:
        return 0.5
    probabilities = model.predict_proba(positives)
    theta = float(np.quantile(probabilities, quantile))
    return float(min(max(theta, floor), 0.999))
