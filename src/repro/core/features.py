"""Per-cluster feature extraction (§5.1 / §5.2).

The Merge model sees a 4-feature vector about a cluster C:

* ``f1`` — average intra-similarity of C (cohesion), in [0, 1];
* ``f2`` — maximal average inter-similarity between C and any other
  cluster, in [0, 1];
* ``f3`` — |C|;
* ``f4`` — size of the cluster C' attaining the maximum in f2.

The Split model sees ``(f1, f2, f3)`` — f4 is meaningless for a split,
which involves a single cluster (§5.2).

These features are deliberately *global characteristics of the
clustering*, independent of the underlying batch algorithm, which is
what lets DynamicC augment arbitrary batch methods.

Singletons have no intra pairs; their cohesion is defined as 1.0
(trivially cohesive — see DESIGN.md). A cluster with no neighbouring
cluster has ``f2 = 0`` and ``f4 = 0``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering.state import Clustering

MERGE_FEATURE_NAMES = ("intra", "max_inter", "size", "partner_size")
SPLIT_FEATURE_NAMES = ("intra", "max_inter", "size")


@dataclass(frozen=True)
class ClusterFeatures:
    """The §5.1 feature values of one cluster at one point in time."""

    intra: float
    max_inter: float
    size: int
    partner_size: int
    partner_cid: int | None = None

    def merge_vector(self) -> np.ndarray:
        """(f1, f2, f3, f4) for the Merge model."""
        return np.array(
            [self.intra, self.max_inter, float(self.size), float(self.partner_size)]
        )

    def split_vector(self) -> np.ndarray:
        """(f1, f2, f3) for the Split model."""
        return np.array([self.intra, self.max_inter, float(self.size)])


def cluster_features(clustering: Clustering, cid: int) -> ClusterFeatures:
    """Extract the feature vector of cluster ``cid`` from live state."""
    intra = clustering.average_intra_similarity(cid)
    size = clustering.size(cid)
    max_inter = 0.0
    partner_cid: int | None = None
    partner_size = 0
    for other, cross in clustering.neighbor_clusters(cid).items():
        other_size = clustering.size(other)
        avg = cross / (size * other_size)
        if avg > max_inter:
            max_inter = avg
            partner_cid = other
            partner_size = other_size
    return ClusterFeatures(
        intra=intra,
        max_inter=max_inter,
        size=size,
        partner_size=partner_size,
        partner_cid=partner_cid,
    )


def features_of_members(clustering: Clustering, members: frozenset[int]) -> ClusterFeatures:
    """Features of a *hypothetical* cluster given by a member set.

    Used when replaying evolution logs: the member set may not exist as
    a live cluster, so statistics are computed from the graph directly,
    and neighbour clusters are read from the clustering for the rest of
    the objects.
    """
    graph = clustering.graph
    n = len(members)
    pairs = n * (n - 1) // 2
    intra = graph.intra_weight(members) / pairs if pairs else 1.0

    cross: dict[int, float] = {}
    for obj_id in members:
        for other, sim in graph.neighbors(obj_id).items():
            if other in members or other not in clustering:
                continue
            other_cid = clustering.cluster_of(other)
            cross[other_cid] = cross.get(other_cid, 0.0) + sim
    max_inter = 0.0
    partner_cid: int | None = None
    partner_size = 0
    for other_cid, weight in cross.items():
        other_members = clustering.members_view(other_cid) - members
        if not other_members:
            continue
        avg = weight / (n * len(other_members))
        if avg > max_inter:
            max_inter = avg
            partner_cid = other_cid
            partner_size = len(other_members)
    return ClusterFeatures(
        intra=intra,
        max_inter=max_inter,
        size=n,
        partner_size=partner_size,
        partner_cid=partner_cid,
    )


def merged_features(clustering: Clustering, cid_a: int, cid_b: int) -> ClusterFeatures:
    """Features of the hypothetical merge of two live clusters.

    Algorithm 1 picks the merge partner that *minimises* the merged
    cluster's predicted merge probability ("the most stable clustering",
    §6.2); this computes the feature vector that prediction needs.
    """
    size_a = clustering.size(cid_a)
    size_b = clustering.size(cid_b)
    size_m = size_a + size_b
    pairs_m = size_m * (size_m - 1) // 2
    intra_m = (
        clustering.intra_weight(cid_a)
        + clustering.intra_weight(cid_b)
        + clustering.cross_weight(cid_a, cid_b)
    )
    intra = intra_m / pairs_m if pairs_m else 1.0

    combined: dict[int, float] = {}
    for source in (cid_a, cid_b):
        for other, cross in clustering.neighbor_clusters(source).items():
            if other in (cid_a, cid_b):
                continue
            combined[other] = combined.get(other, 0.0) + cross
    max_inter = 0.0
    partner_cid: int | None = None
    partner_size = 0
    for other, cross in combined.items():
        other_size = clustering.size(other)
        avg = cross / (size_m * other_size)
        if avg > max_inter:
            max_inter = avg
            partner_cid = other
            partner_size = other_size
    return ClusterFeatures(
        intra=intra,
        max_inter=max_inter,
        size=size_m,
        partner_size=partner_size,
        partner_cid=partner_cid,
    )
