"""Negative sampling with active-cluster weighting (§5.3).

Positive samples are the clusters involved in evolution operations;
negatives are clusters the batch algorithm left unchanged. Unchanged
clusters vastly outnumber changed ones, so we sample as many negatives
as there are positives — uniformly, but with higher probability mass on
"active" clusters: clusters inside the similarity-graph connected
components touched by the round's changes, which the batch algorithm
inspects repeatedly and which are therefore the informative negatives.
The paper's weights are 0.7 (active) / 0.3 (non-active).
"""

from __future__ import annotations

from typing import Sequence, TypeVar

import numpy as np

T = TypeVar("T")


def sample_negatives(
    active: Sequence[T],
    inactive: Sequence[T],
    count: int,
    rng: np.random.Generator,
    active_weight: float = 0.7,
    inactive_weight: float = 0.3,
) -> list[T]:
    """Sample up to ``count`` negatives without replacement.

    Each draw first picks the *group* (active vs inactive) with the
    configured probability mass, then an item uniformly within the
    group; exhausted groups cede their mass to the other. The result
    order is the draw order.
    """
    if count <= 0:
        return []
    total_weight = active_weight + inactive_weight
    if total_weight <= 0:
        raise ValueError("weights must sum to a positive value")
    p_active = active_weight / total_weight

    active_pool = list(active)
    inactive_pool = list(inactive)
    rng.shuffle(active_pool)
    rng.shuffle(inactive_pool)

    chosen: list[T] = []
    while len(chosen) < count and (active_pool or inactive_pool):
        take_active = bool(active_pool) and (
            not inactive_pool or rng.random() < p_active
        )
        pool = active_pool if take_active else inactive_pool
        chosen.append(pool.pop())
    return chosen
