"""The DynamicC model bundle: Merge model + Split model + θ thresholds (§5).

Each model is a binary classifier over the §5.1 cluster features. The
bundle owns the θ decision thresholds of Eq. (2), set after fitting via
the recall-first rule of §5.4, and exposes batched probability queries
the runtime algorithms use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.ml.base import BinaryClassifier, ConstantClassifier
from repro.ml.logistic import LogisticRegressionClassifier
from repro.ml.metrics import accuracy, recall

from .config import DynamicCConfig
from .features import ClusterFeatures
from .training import TrainingBuffer, select_theta

ModelFactory = Callable[[], BinaryClassifier]


@dataclass
class FitReport:
    """Training-set diagnostics produced by :meth:`DynamicCModel.fit`."""

    merge_samples: int
    split_samples: int
    merge_accuracy: float
    merge_recall: float
    split_accuracy: float
    split_recall: float
    merge_theta: float
    split_theta: float


class DynamicCModel:
    """Merge + Split classifiers with θ thresholds.

    Parameters
    ----------
    merge_factory / split_factory:
        Zero-argument callables building fresh classifiers (default:
        logistic regression, the paper's default model).
    config:
        θ-selection settings.
    """

    def __init__(
        self,
        merge_factory: ModelFactory | None = None,
        split_factory: ModelFactory | None = None,
        config: DynamicCConfig | None = None,
    ) -> None:
        self._merge_factory = merge_factory or LogisticRegressionClassifier
        self._split_factory = split_factory or (split_factory or self._merge_factory)
        self.config = config or DynamicCConfig()
        self.merge_model: BinaryClassifier | None = None
        self.split_model: BinaryClassifier | None = None
        self.merge_theta: float = 0.5
        self.split_theta: float = 0.5

    @property
    def is_trained(self) -> bool:
        return self.merge_model is not None and self.split_model is not None

    # ------------------------------------------------------------------
    def fit(self, buffer: TrainingBuffer) -> FitReport:
        """Fit both models from the buffer and select θs (§5.4)."""
        merge_X, merge_y = buffer.merge_matrix()
        split_X, split_y = buffer.split_matrix()
        if len(merge_y) == 0 and len(split_y) == 0:
            raise ValueError("training buffer is empty")
        # A side with no samples at all (e.g. a workload whose batch
        # evolution never split a cluster) gets a constant "no change"
        # model — the correct prediction until such evolution is seen.
        if len(merge_y):
            self.merge_model = self._merge_factory().fit(merge_X, merge_y)
            self.merge_theta = select_theta(
                self.merge_model,
                merge_X,
                merge_y,
                quantile=self.config.theta_quantile,
                floor=self.config.theta_floor,
            )
        else:
            self.merge_model = ConstantClassifier(0.0)
            self.merge_theta = 0.5
        if len(split_y):
            self.split_model = self._split_factory().fit(split_X, split_y)
            self.split_theta = select_theta(
                self.split_model,
                split_X,
                split_y,
                quantile=self.config.theta_quantile,
                floor=self.config.theta_floor,
            )
        else:
            self.split_model = ConstantClassifier(0.0)
            self.split_theta = 0.5
        return FitReport(
            merge_samples=len(merge_y),
            split_samples=len(split_y),
            merge_accuracy=(
                accuracy(merge_y, self.merge_model.predict(merge_X))
                if len(merge_y)
                else 1.0
            ),
            merge_recall=(
                recall(merge_y, self.merge_model.predict(merge_X))
                if len(merge_y)
                else 1.0
            ),
            split_accuracy=(
                accuracy(split_y, self.split_model.predict(split_X))
                if len(split_y)
                else 1.0
            ),
            split_recall=(
                recall(split_y, self.split_model.predict(split_X))
                if len(split_y)
                else 1.0
            ),
            merge_theta=self.merge_theta,
            split_theta=self.split_theta,
        )

    def _require_trained(self) -> None:
        if not self.is_trained:
            raise RuntimeError(
                "DynamicC model is not trained; run the training phase first"
            )

    # ------------------------------------------------------------------
    # Probability queries
    # ------------------------------------------------------------------
    def merge_probabilities(self, features: Sequence[ClusterFeatures]) -> np.ndarray:
        """Batched ``P(merge = 1)`` for a list of clusters."""
        self._require_trained()
        if not features:
            return np.empty(0)
        X = np.vstack([f.merge_vector() for f in features])
        return self.merge_model.predict_proba(X)

    def split_probabilities(self, features: Sequence[ClusterFeatures]) -> np.ndarray:
        self._require_trained()
        if not features:
            return np.empty(0)
        X = np.vstack([f.split_vector() for f in features])
        return self.split_model.predict_proba(X)

    def merge_probability(self, features: ClusterFeatures) -> float:
        return float(self.merge_probabilities([features])[0])

    def split_probability(self, features: ClusterFeatures) -> float:
        return float(self.split_probabilities([features])[0])

    def predicts_merge(self, features: ClusterFeatures) -> bool:
        """Eq. (2): label 1 iff ``P ≥ θ``."""
        return self.merge_probability(features) >= self.merge_theta

    def predicts_split(self, features: ClusterFeatures) -> bool:
        return self.split_probability(features) >= self.split_theta

    # ------------------------------------------------------------------
    # Persistence ("train once, serve" — the models survive restarts)
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Write the trained bundle (both models + θs) to a JSON file."""
        import json
        import pathlib

        from repro.ml.persistence import bundle_to_dict

        self._require_trained()
        pathlib.Path(path).write_text(json.dumps(bundle_to_dict(self)))

    @classmethod
    def load(cls, path, config: DynamicCConfig | None = None) -> "DynamicCModel":
        """Load a bundle written by :meth:`save`."""
        import json
        import pathlib

        from repro.ml.persistence import bundle_from_dict

        return bundle_from_dict(json.loads(pathlib.Path(path).read_text()), config=config)

    def with_thetas(self, merge_theta: float, split_theta: float) -> "DynamicCModel":
        """Shallow copy with different θs (the Fig. 4 trade-off sweep)."""
        clone = DynamicCModel(self._merge_factory, self._split_factory, self.config)
        clone.merge_model = self.merge_model
        clone.split_model = self.split_model
        clone.merge_theta = merge_theta
        clone.split_theta = split_theta
        return clone
