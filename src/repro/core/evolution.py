"""Cluster-evolution operations (§4) — canonical home: :mod:`repro.evolution`.

The op dataclasses live in a top-level leaf module so that substrate
packages (e.g. the batch algorithms, which *log* evolution) can import
them without pulling in the whole DynamicC core; this module re-exports
them under the conceptually-right location.
"""

from repro.evolution import EvolutionLog, EvolutionOp, MergeOp, SplitOp

__all__ = ["EvolutionLog", "EvolutionOp", "MergeOp", "SplitOp"]
