"""Dynamic workload driver (§7.2 "To mimic the dynamic process…").

A workload is an initial record set followed by *snapshots* (rounds) of
Add / Remove / Update operations, the mix of which follows Fig. 5(a):
each snapshot adds a percentage of new objects and removes/updates a
smaller percentage of live ones. Additions consume the dataset's record
stream front-to-back (so a dataset's "# of initial objects" and "# of
final objects" — Table 1 — fall out of the workload parameters).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from .records import Dataset


@dataclass
class Snapshot:
    """One round of data operations."""

    added: dict[int, Any] = field(default_factory=dict)
    removed: list[int] = field(default_factory=list)
    updated: dict[int, Any] = field(default_factory=dict)

    def counts(self) -> tuple[int, int, int]:
        return len(self.added), len(self.removed), len(self.updated)

    def changed_ids(self) -> set[int]:
        return set(self.added) | set(self.removed) | set(self.updated)

    def as_operations(self) -> list:
        """This snapshot as a flat list of stream operations.

        Order follows the §6.1 application order the offline drivers
        use (removals, then updates, then additions), so replaying the
        operations through :class:`repro.stream.ClusteringService`
        reproduces the snapshot's effect.
        """
        from repro.stream import events  # deferred: stream sits above data

        ops = [events.remove(obj_id) for obj_id in self.removed]
        ops.extend(events.update(obj_id, payload) for obj_id, payload in self.updated.items())
        ops.extend(events.add(obj_id, payload) for obj_id, payload in self.added.items())
        return ops


@dataclass
class OperationMix:
    """Per-snapshot operation percentages (of the current live size)."""

    add: float = 0.15
    remove: float = 0.03
    update: float = 0.03


@dataclass
class DynamicWorkload:
    """An initial state plus a sequence of snapshots over one dataset."""

    dataset: Dataset
    initial: dict[int, Any]
    snapshots: list[Snapshot]

    def final_object_count(self) -> int:
        count = len(self.initial)
        for snapshot in self.snapshots:
            count += len(snapshot.added) - len(snapshot.removed)
        return count

    def live_ids_after(self, round_index: int) -> set[int]:
        """Object ids alive after ``round_index`` snapshots (0 = initial)."""
        live = set(self.initial)
        for snapshot in self.snapshots[:round_index]:
            live |= set(snapshot.added)
            live -= set(snapshot.removed)
        return live

    def event_stream(self, include_initial: bool = True) -> list:
        """The whole workload as one flat operation stream.

        The adapter from the offline snapshot representation to the
        :mod:`repro.stream` ingestion format: initial records become Add
        operations (unless ``include_initial`` is false), followed by
        each snapshot's operations in round order. Micro-batching at the
        service then re-cuts the stream into rounds.
        """
        from repro.stream import events  # deferred: stream sits above data

        ops: list = []
        if include_initial:
            ops.extend(
                events.add(obj_id, payload) for obj_id, payload in self.initial.items()
            )
        for snapshot in self.snapshots:
            ops.extend(snapshot.as_operations())
        return ops

    def operation_table(self) -> list[tuple[int, float, float, float]]:
        """Per-snapshot (index, add%, remove%, update%) — Fig. 5(a)'s data."""
        rows = []
        live = len(self.initial)
        for index, snapshot in enumerate(self.snapshots, start=1):
            n_add, n_remove, n_update = snapshot.counts()
            base = max(live, 1)
            rows.append(
                (index, 100.0 * n_add / base, 100.0 * n_remove / base, 100.0 * n_update / base)
            )
            live += n_add - n_remove
        return rows


def build_workload(
    dataset: Dataset,
    initial_count: int,
    n_snapshots: int,
    mixes: OperationMix | Sequence[OperationMix] | None = None,
    seed: int = 0,
) -> DynamicWorkload:
    """Slice a dataset's record stream into a dynamic workload.

    Parameters
    ----------
    dataset:
        Source of records (arrival order) and the ``corrupt`` function
        used to synthesise Update payloads.
    initial_count:
        Records loaded before the first snapshot.
    n_snapshots:
        Number of rounds.
    mixes:
        One :class:`OperationMix` for all rounds, or one per round
        (mirroring Fig. 5(a)'s per-snapshot variation). Defaults to the
        Fig. 5(a)-style mix (≈15% adds, small remove/update rates).
    """
    if initial_count < 1:
        raise ValueError("initial_count must be >= 1")
    if initial_count > len(dataset.records):
        raise ValueError("initial_count exceeds the dataset size")
    if mixes is None:
        mixes = OperationMix()
    if isinstance(mixes, OperationMix):
        mixes = [mixes] * n_snapshots
    if len(mixes) != n_snapshots:
        raise ValueError("need one OperationMix per snapshot")

    rng = np.random.default_rng(seed)
    stream = list(dataset.records)
    cursor = initial_count
    initial = {record.id: record.payload for record in stream[:initial_count]}
    live: dict[int, Any] = dict(initial)
    # Updates corrupt the *original* payload of a record (Febrl semantics:
    # a modification of the source attributes), never the already-updated
    # value — otherwise repeated updates compound into unbounded drift.
    originals = {record.id: record.payload for record in stream}

    snapshots: list[Snapshot] = []
    for mix in mixes:
        base = len(live)
        n_add = min(int(round(mix.add * base)), len(stream) - cursor)
        n_remove = min(int(round(mix.remove * base)), max(len(live) - 1, 0))
        n_update = min(int(round(mix.update * base)), max(len(live) - n_remove, 0))

        added = {
            record.id: record.payload for record in stream[cursor : cursor + n_add]
        }
        cursor += n_add

        removable = sorted(live.keys())
        removed_ids = (
            [int(i) for i in rng.choice(removable, size=n_remove, replace=False)]
            if n_remove
            else []
        )
        for obj_id in removed_ids:
            del live[obj_id]

        updatable = sorted(live.keys())
        updated_ids = (
            [int(i) for i in rng.choice(updatable, size=n_update, replace=False)]
            if n_update
            else []
        )
        updated = {
            obj_id: dataset.corrupt(originals[obj_id], rng) for obj_id in updated_ids
        }
        live.update(updated)
        live.update(added)

        snapshots.append(
            Snapshot(added=added, removed=removed_ids, updated=updated)
        )
    return DynamicWorkload(dataset=dataset, initial=initial, snapshots=snapshots)


# ---------------------------------------------------------------------------
# Multi-tenant workloads (repro.serve)
# ---------------------------------------------------------------------------
def zipf_weights(n: int, skew: float) -> np.ndarray:
    """Normalised Zipf(s=``skew``) rank probabilities over ``n`` items.

    ``skew=0`` is uniform; realistic tenant/key popularity sits around
    1.0–1.3. Computed as an explicit pmf (not ``rng.zipf``, whose
    support is unbounded) so draws index a finite rank table.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if skew < 0:
        raise ValueError("skew must be >= 0")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks**-skew
    return weights / weights.sum()


def tenant_stream(
    dataset: Dataset,
    n_tenants: int,
    n_ops: int,
    *,
    tenant_skew: float = 1.1,
    key_skew: float = 1.1,
    mix: OperationMix | None = None,
    seed: int = 0,
) -> list[tuple[str, Any]]:
    """An interleaved multi-tenant operation stream with Zipfian skew.

    The workload shape :mod:`repro.serve` is built for: a few hot
    tenants dominate traffic (rank-Zipf with exponent ``tenant_skew``),
    each tenant hammers a few hot keys (``key_skew`` over a
    tenant-specific preference order, so hot keys *differ* per tenant),
    and per-tenant churn follows ``mix`` — removes and updates hit live
    objects, adds consume unseen records. Returns ``(tenant_name,
    operation)`` pairs in arrival order; tenants reuse the same record
    ids freely because the serve layer namespaces them.

    Deterministic for a given ``seed`` — the property multi-tenant
    isolation tests rely on (the same stream filtered to one tenant
    must equal that tenant run alone).
    """
    from repro.stream import events  # deferred: stream sits above data

    if n_tenants < 1:
        raise ValueError("n_tenants must be >= 1")
    if n_ops < 0:
        raise ValueError("n_ops must be >= 0")
    if not dataset.records:
        raise ValueError("dataset has no records to draw from")
    if mix is None:
        mix = OperationMix()
    total = mix.add + mix.remove + mix.update
    if total <= 0:
        raise ValueError("OperationMix percentages must sum to > 0")
    p_remove = mix.remove / total
    p_update = mix.update / total

    rng = np.random.default_rng(seed)
    tenants = [f"tenant-{index:03d}" for index in range(n_tenants)]
    tenant_p = zipf_weights(n_tenants, tenant_skew)
    records = list(dataset.records)
    key_p = zipf_weights(len(records), key_skew)
    # Each tenant ranks the keyspace in its own order: rank r of the
    # key-Zipf maps to a different record per tenant.
    orders = {
        name: rng.permutation(len(records)) for name in tenants
    }
    live: dict[str, set[int]] = {name: set() for name in tenants}
    originals = {record.id: record.payload for record in records}

    out: list[tuple[str, Any]] = []
    for _ in range(n_ops):
        name = tenants[int(rng.choice(n_tenants, p=tenant_p))]
        order = orders[name]
        alive = live[name]
        roll = float(rng.random())
        if alive and roll < p_remove:
            obj_id = _pick_live(rng, records, order, key_p, alive)
            alive.discard(obj_id)
            out.append((name, events.remove(obj_id)))
        elif alive and roll < p_remove + p_update:
            obj_id = _pick_live(rng, records, order, key_p, alive)
            out.append(
                (name, events.update(obj_id, dataset.corrupt(originals[obj_id], rng)))
            )
        else:
            record = _pick_unseen(rng, records, order, key_p, alive)
            if record is None:
                # Keyspace exhausted for this tenant: degrade to churn.
                obj_id = _pick_live(rng, records, order, key_p, alive)
                out.append(
                    (name, events.update(obj_id, dataset.corrupt(originals[obj_id], rng)))
                )
            else:
                alive.add(record.id)
                out.append((name, events.add(record.id, record.payload)))
    return out


def _pick_live(rng, records, order, key_p, alive) -> int:
    """A live object id, hot-key biased (falls back to any live id)."""
    for _ in range(8):
        record = records[order[int(rng.choice(len(records), p=key_p))]]
        if record.id in alive:
            return record.id
    return sorted(alive)[int(rng.integers(len(alive)))]


def _pick_unseen(rng, records, order, key_p, alive):
    """An unseen record, hot-key biased; ``None`` when all are live."""
    if len(alive) >= len(records):
        return None
    for _ in range(8):
        record = records[order[int(rng.choice(len(records), p=key_p))]]
        if record.id not in alive:
            return record
    for index in order:
        if records[index].id not in alive:
            return records[index]
    return None
