"""Dynamic workload driver (§7.2 "To mimic the dynamic process…").

A workload is an initial record set followed by *snapshots* (rounds) of
Add / Remove / Update operations, the mix of which follows Fig. 5(a):
each snapshot adds a percentage of new objects and removes/updates a
smaller percentage of live ones. Additions consume the dataset's record
stream front-to-back (so a dataset's "# of initial objects" and "# of
final objects" — Table 1 — fall out of the workload parameters).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from .records import Dataset


@dataclass
class Snapshot:
    """One round of data operations."""

    added: dict[int, Any] = field(default_factory=dict)
    removed: list[int] = field(default_factory=list)
    updated: dict[int, Any] = field(default_factory=dict)

    def counts(self) -> tuple[int, int, int]:
        return len(self.added), len(self.removed), len(self.updated)

    def changed_ids(self) -> set[int]:
        return set(self.added) | set(self.removed) | set(self.updated)

    def as_operations(self) -> list:
        """This snapshot as a flat list of stream operations.

        Order follows the §6.1 application order the offline drivers
        use (removals, then updates, then additions), so replaying the
        operations through :class:`repro.stream.ClusteringService`
        reproduces the snapshot's effect.
        """
        from repro.stream import events  # deferred: stream sits above data

        ops = [events.remove(obj_id) for obj_id in self.removed]
        ops.extend(events.update(obj_id, payload) for obj_id, payload in self.updated.items())
        ops.extend(events.add(obj_id, payload) for obj_id, payload in self.added.items())
        return ops


@dataclass
class OperationMix:
    """Per-snapshot operation percentages (of the current live size)."""

    add: float = 0.15
    remove: float = 0.03
    update: float = 0.03


@dataclass
class DynamicWorkload:
    """An initial state plus a sequence of snapshots over one dataset."""

    dataset: Dataset
    initial: dict[int, Any]
    snapshots: list[Snapshot]

    def final_object_count(self) -> int:
        count = len(self.initial)
        for snapshot in self.snapshots:
            count += len(snapshot.added) - len(snapshot.removed)
        return count

    def live_ids_after(self, round_index: int) -> set[int]:
        """Object ids alive after ``round_index`` snapshots (0 = initial)."""
        live = set(self.initial)
        for snapshot in self.snapshots[:round_index]:
            live |= set(snapshot.added)
            live -= set(snapshot.removed)
        return live

    def event_stream(self, include_initial: bool = True) -> list:
        """The whole workload as one flat operation stream.

        The adapter from the offline snapshot representation to the
        :mod:`repro.stream` ingestion format: initial records become Add
        operations (unless ``include_initial`` is false), followed by
        each snapshot's operations in round order. Micro-batching at the
        service then re-cuts the stream into rounds.
        """
        from repro.stream import events  # deferred: stream sits above data

        ops: list = []
        if include_initial:
            ops.extend(
                events.add(obj_id, payload) for obj_id, payload in self.initial.items()
            )
        for snapshot in self.snapshots:
            ops.extend(snapshot.as_operations())
        return ops

    def operation_table(self) -> list[tuple[int, float, float, float]]:
        """Per-snapshot (index, add%, remove%, update%) — Fig. 5(a)'s data."""
        rows = []
        live = len(self.initial)
        for index, snapshot in enumerate(self.snapshots, start=1):
            n_add, n_remove, n_update = snapshot.counts()
            base = max(live, 1)
            rows.append(
                (index, 100.0 * n_add / base, 100.0 * n_remove / base, 100.0 * n_update / base)
            )
            live += n_add - n_remove
        return rows


def build_workload(
    dataset: Dataset,
    initial_count: int,
    n_snapshots: int,
    mixes: OperationMix | Sequence[OperationMix] | None = None,
    seed: int = 0,
) -> DynamicWorkload:
    """Slice a dataset's record stream into a dynamic workload.

    Parameters
    ----------
    dataset:
        Source of records (arrival order) and the ``corrupt`` function
        used to synthesise Update payloads.
    initial_count:
        Records loaded before the first snapshot.
    n_snapshots:
        Number of rounds.
    mixes:
        One :class:`OperationMix` for all rounds, or one per round
        (mirroring Fig. 5(a)'s per-snapshot variation). Defaults to the
        Fig. 5(a)-style mix (≈15% adds, small remove/update rates).
    """
    if initial_count < 1:
        raise ValueError("initial_count must be >= 1")
    if initial_count > len(dataset.records):
        raise ValueError("initial_count exceeds the dataset size")
    if mixes is None:
        mixes = OperationMix()
    if isinstance(mixes, OperationMix):
        mixes = [mixes] * n_snapshots
    if len(mixes) != n_snapshots:
        raise ValueError("need one OperationMix per snapshot")

    rng = np.random.default_rng(seed)
    stream = list(dataset.records)
    cursor = initial_count
    initial = {record.id: record.payload for record in stream[:initial_count]}
    live: dict[int, Any] = dict(initial)
    # Updates corrupt the *original* payload of a record (Febrl semantics:
    # a modification of the source attributes), never the already-updated
    # value — otherwise repeated updates compound into unbounded drift.
    originals = {record.id: record.payload for record in stream}

    snapshots: list[Snapshot] = []
    for mix in mixes:
        base = len(live)
        n_add = min(int(round(mix.add * base)), len(stream) - cursor)
        n_remove = min(int(round(mix.remove * base)), max(len(live) - 1, 0))
        n_update = min(int(round(mix.update * base)), max(len(live) - n_remove, 0))

        added = {
            record.id: record.payload for record in stream[cursor : cursor + n_add]
        }
        cursor += n_add

        removable = sorted(live.keys())
        removed_ids = (
            [int(i) for i in rng.choice(removable, size=n_remove, replace=False)]
            if n_remove
            else []
        )
        for obj_id in removed_ids:
            del live[obj_id]

        updatable = sorted(live.keys())
        updated_ids = (
            [int(i) for i in rng.choice(updatable, size=n_update, replace=False)]
            if n_update
            else []
        )
        updated = {
            obj_id: dataset.corrupt(originals[obj_id], rng) for obj_id in updated_ids
        }
        live.update(updated)
        live.update(added)

        snapshots.append(
            Snapshot(added=added, removed=removed_ids, updated=updated)
        )
    return DynamicWorkload(dataset=dataset, initial=initial, snapshots=snapshots)
