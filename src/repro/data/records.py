"""Record and dataset descriptors shared by all generators.

A :class:`Record` couples an object id with a similarity-ready payload
and a ground-truth entity id (the generator knows which records are
duplicates/members of the same entity). A :class:`Dataset` bundles the
records with everything needed to build the dynamic similarity graph —
the Table 1 row of the workload, effectively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.similarity.base import SimilarityFunction
from repro.similarity.blocking import BruteForceIndex, CandidateIndex
from repro.similarity.graph import SimilarityGraph

Corruptor = Callable[[Any, np.random.Generator], Any]


@dataclass(frozen=True)
class Record:
    """One database object."""

    id: int
    payload: Any
    truth: int


@dataclass
class Dataset:
    """A generated dataset plus its similarity configuration (Table 1).

    Attributes
    ----------
    name:
        Dataset identifier used in reports.
    similarity:
        The dataset's pairwise measure.
    records:
        All records in arrival order (the dynamic workload consumes them
        front to back).
    index_factory:
        Builds a fresh candidate index per similarity graph.
    corrupt:
        Payload perturbation used by Update operations.
    store_threshold:
        Similarity-graph storage cut-off for this dataset.
    data_type:
        "textual", "numerical", or "textual and numerical" (Table 1).
    """

    name: str
    similarity: SimilarityFunction
    records: list[Record]
    index_factory: Callable[[], CandidateIndex] = BruteForceIndex
    corrupt: Corruptor = field(default=lambda payload, rng: payload)
    store_threshold: float = 0.2
    data_type: str = "textual"

    def graph(self) -> SimilarityGraph:
        """A fresh, empty similarity graph configured for this dataset."""
        return SimilarityGraph(
            self.similarity,
            index=self.index_factory(),
            store_threshold=self.store_threshold,
        )

    def truth_labels(self) -> dict[int, int]:
        """Ground-truth entity id per record id."""
        return {record.id: record.truth for record in self.records}

    def payloads(self) -> dict[int, Any]:
        return {record.id: record.payload for record in self.records}

    def __len__(self) -> int:
        return len(self.records)
