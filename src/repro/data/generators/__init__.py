"""Dataset generators reproducing the Table 1 workloads offline."""

from .access import generate_access
from .cora import generate_cora
from .febrl import FebrlSimilarity, generate_febrl
from .musicbrainz import generate_musicbrainz
from .road import generate_road

__all__ = [
    "FebrlSimilarity",
    "generate_access",
    "generate_cora",
    "generate_febrl",
    "generate_musicbrainz",
    "generate_road",
]
