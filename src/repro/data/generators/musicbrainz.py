"""MusicBrainz-like song dataset (Table 1 substitution; see DESIGN.md §4).

The real MusicBrainz benchmark holds ~19K song records compared with a
cosine trigram similarity [39]. We generate song records ("title /
artist / album" strings) with typo and token-reordering corruption —
the error model trigram cosine is robust to, which is why the paper
uses it for this dataset.
"""

from __future__ import annotations

import numpy as np

from repro.data.records import Dataset, Record
from repro.similarity.blocking import TokenBlockingIndex
from repro.similarity.trigram import CosineTrigramSimilarity

from .base import corrupt_words, duplicate_counts, pick, pick_many

_TITLE_WORDS = [
    "love", "night", "dream", "heart", "fire", "river", "dance", "shadow",
    "light", "storm", "summer", "winter", "golden", "broken", "silent",
    "electric", "midnight", "forever", "crazy", "wild", "blue", "neon",
    "velvet", "thunder", "echo", "gravity", "horizon", "paradise",
]

_ARTISTS = [
    "the wandering suns", "nova hart", "delta ridge", "miles carter",
    "luna vale", "the paper kites", "ivory coastline", "red canyon",
    "sofia reyes", "the night owls", "glass harbor", "atlas grey",
    "ember and oak", "silver pines", "the low tides", "maya flores",
]

_ALBUMS = [
    "first light", "city echoes", "wild roads", "paper moons",
    "northern skies", "afterglow", "long shadows", "open water",
    "neon gardens", "quiet storms", "falling upward", "homecoming",
]


def _make_song(rng: np.random.Generator) -> str:
    title = " ".join(pick_many(_TITLE_WORDS, int(rng.integers(2, 5)), rng))
    artist = pick(_ARTISTS, rng)
    album = pick(_ALBUMS, rng)
    return f"{title} {artist} {album}"


def _corrupt_song(payload: str, rng: np.random.Generator) -> str:
    words = corrupt_words(payload.split(), rng, edits=int(rng.integers(1, 3)))
    if rng.random() < 0.3 and len(words) > 2:  # reorder two tokens
        i, j = rng.choice(len(words), size=2, replace=False)
        words[i], words[j] = words[j], words[i]
    if rng.random() < 0.2:  # decorate, as catalogue variants do
        words.append(pick(["remastered", "live", "radio", "edit"], rng))
    return " ".join(words)


def generate_musicbrainz(
    n_entities: int = 200,
    n_duplicates: int = 600,
    distribution: str = "poisson",
    seed: int = 0,
) -> Dataset:
    """Generate a MusicBrainz-like dataset."""
    rng = np.random.default_rng(seed)
    songs = [_make_song(rng) for _ in range(n_entities)]
    counts = duplicate_counts(n_entities, n_duplicates, distribution, rng)

    records: list[Record] = []
    next_id = 0
    for truth, (song, count) in enumerate(zip(songs, counts)):
        records.append(Record(id=next_id, payload=song, truth=truth))
        next_id += 1
        for _ in range(int(count)):
            records.append(
                Record(id=next_id, payload=_corrupt_song(song, rng), truth=truth)
            )
            next_id += 1

    order = rng.permutation(len(records))
    records = [records[i] for i in order]
    return Dataset(
        name="music",
        similarity=CosineTrigramSimilarity(),
        records=records,
        index_factory=TokenBlockingIndex,
        corrupt=_corrupt_song,
        store_threshold=0.3,
        data_type="textual",
    )
