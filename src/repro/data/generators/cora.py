"""Cora-like citation dataset (Table 1 substitution; see DESIGN.md §4).

The real Cora benchmark holds 1,879 citation records of ~130 papers —
textual records with heavily skewed duplicate-cluster sizes, compared
with Jaccard similarity. This generator reproduces those structural
properties: citation-style records (authors, title, venue, year)
duplicated with token-level corruption, duplicate counts drawn from a
Zipf-like distribution.

Payloads are frozen token sets (the Jaccard fast path).
"""

from __future__ import annotations

import numpy as np

from repro.data.records import Dataset, Record
from repro.similarity.blocking import TokenBlockingIndex
from repro.similarity.jaccard import JaccardSimilarity

from .base import corrupt_words, duplicate_counts, pick, pick_many

_AUTHORS = [
    "smith", "johnson", "lee", "garcia", "chen", "mueller", "patel", "kim",
    "nguyen", "brown", "davis", "wilson", "martin", "anderson", "taylor",
    "thomas", "moore", "jackson", "white", "harris", "sanchez", "clark",
    "lewis", "robinson", "walker", "young", "allen", "king", "wright",
    "lopez", "hill", "scott", "green", "adams", "baker", "nelson",
]

_TITLE_WORDS = [
    "learning", "dynamic", "clustering", "distributed", "database", "graph",
    "neural", "query", "optimization", "parallel", "index", "stream",
    "transaction", "storage", "memory", "cache", "scalable", "adaptive",
    "incremental", "approximate", "probabilistic", "efficient", "robust",
    "secure", "consistent", "replication", "partition", "sampling",
    "estimation", "inference", "embedding", "representation", "evolution",
    "temporal", "spatial", "entity", "resolution", "linkage", "similarity",
]

_VENUES = [
    "sigmod", "vldb", "icde", "edbt", "kdd", "icml", "nips", "cidr",
    "socc", "icdm", "cikm", "wsdm",
]


def _make_paper(rng: np.random.Generator, year_base: int = 1990) -> list[str]:
    authors = pick_many(_AUTHORS, int(rng.integers(2, 5)), rng)
    title = pick_many(_TITLE_WORDS, int(rng.integers(6, 11)), rng)
    venue = pick(_VENUES, rng)
    year = str(year_base + int(rng.integers(0, 30)))
    return authors + title + [venue, year]


def _corrupt_payload(payload: frozenset, rng: np.random.Generator) -> frozenset:
    words = corrupt_words(sorted(payload), rng, edits=int(rng.integers(1, 3)))
    return frozenset(words)


def generate_cora(
    n_entities: int = 120,
    n_duplicates: int = 480,
    distribution: str = "zipf",
    seed: int = 0,
) -> Dataset:
    """Generate a Cora-like dataset of ``n_entities + n_duplicates`` records."""
    rng = np.random.default_rng(seed)
    papers = [_make_paper(rng) for _ in range(n_entities)]
    counts = duplicate_counts(n_entities, n_duplicates, distribution, rng)

    records: list[Record] = []
    next_id = 0
    for truth, (paper, count) in enumerate(zip(papers, counts)):
        records.append(Record(id=next_id, payload=frozenset(paper), truth=truth))
        next_id += 1
        for _ in range(int(count)):
            # Real Cora contains verbatim re-citations plus near-identical
            # variants; token Jaccard between duplicates sits around 0.8.
            roll = rng.random()
            if roll < 0.25:
                corrupted = list(paper)
            else:
                corrupted = corrupt_words(paper, rng, edits=1 if roll < 0.8 else 2)
            records.append(
                Record(id=next_id, payload=frozenset(corrupted), truth=truth)
            )
            next_id += 1

    order = rng.permutation(len(records))
    records = [records[i] for i in order]
    return Dataset(
        name="cora",
        similarity=JaccardSimilarity(),
        records=records,
        index_factory=lambda: TokenBlockingIndex(key=lambda payload: payload),
        corrupt=_corrupt_payload,
        store_threshold=0.25,
        data_type="textual and numerical",
    )
