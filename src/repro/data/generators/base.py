"""Shared generator utilities: corruption, duplicate-count distributions.

The Febrl tool the paper uses (its synthetic dataset, §7.1) produces
*original* records plus *duplicates* derived by typographic corruption,
with a user-chosen distribution of duplicates per original (uniform,
Poisson, Zipf). These helpers reproduce those mechanics for all the
textual generators.
"""

from __future__ import annotations

import numpy as np

_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


def typo(word: str, rng: np.random.Generator) -> str:
    """Apply one random character-level edit (insert/delete/substitute/swap)."""
    if not word:
        return word
    op = rng.integers(4)
    pos = int(rng.integers(len(word)))
    letter = _ALPHABET[int(rng.integers(len(_ALPHABET)))]
    if op == 0:  # substitute
        return word[:pos] + letter + word[pos + 1 :]
    if op == 1:  # delete
        return word[:pos] + word[pos + 1 :]
    if op == 2:  # insert
        return word[:pos] + letter + word[pos:]
    # swap adjacent
    if len(word) < 2:
        return word
    pos = min(pos, len(word) - 2)
    return word[:pos] + word[pos + 1] + word[pos] + word[pos + 2 :]


def corrupt_words(words: list[str], rng: np.random.Generator, edits: int = 1) -> list[str]:
    """Corrupt a token list: typos on random tokens, occasional drops."""
    result = list(words)
    for _ in range(edits):
        if not result:
            break
        action = rng.random()
        idx = int(rng.integers(len(result)))
        if action < 0.75:
            result[idx] = typo(result[idx], rng)
        elif len(result) > 2:
            del result[idx]
        else:
            result[idx] = typo(result[idx], rng)
    return [w for w in result if w]


def duplicate_counts(
    n_originals: int,
    total_duplicates: int,
    distribution: str,
    rng: np.random.Generator,
) -> np.ndarray:
    """Duplicates per original under the Febrl distributions (§7.1).

    ``distribution`` is "uniform", "poisson" or "zipf"; counts are
    scaled so their sum is ``total_duplicates``.
    """
    if n_originals < 1:
        raise ValueError("need at least one original")
    if distribution == "uniform":
        raw = rng.uniform(0.5, 1.5, size=n_originals)
    elif distribution == "poisson":
        raw = rng.poisson(2.0, size=n_originals).astype(float) + 0.1
    elif distribution == "zipf":
        raw = rng.zipf(2.0, size=n_originals).astype(float)
        raw = np.minimum(raw, 50.0)  # cap the heavy tail
    else:
        raise ValueError(f"unknown duplicate distribution {distribution!r}")
    scaled = raw / raw.sum() * total_duplicates
    counts = np.floor(scaled).astype(int)
    # Distribute the rounding remainder to the largest fractional parts.
    deficit = total_duplicates - int(counts.sum())
    if deficit > 0:
        order = np.argsort(-(scaled - counts))
        counts[order[:deficit]] += 1
    return counts


def pick(vocab: list[str], rng: np.random.Generator) -> str:
    return vocab[int(rng.integers(len(vocab)))]


def pick_many(vocab: list[str], count: int, rng: np.random.Generator) -> list[str]:
    return [pick(vocab, rng) for _ in range(count)]
