"""Febrl-like synthetic person dataset (Table 1 substitution; DESIGN.md §4).

The Febrl data generator the paper uses produces person records
(names, addresses) with typographic corruption; the user controls the
number of originals, the number of duplicates, and the distribution of
duplicates per original — the paper generates uniform, Poisson and Zipf
variants. Similarity is a mixture of normalized Levenshtein (on the
full record string) and Jaccard (on its tokens), per Table 1.
"""

from __future__ import annotations

import numpy as np

from repro.data.records import Dataset, Record
from repro.similarity.base import SimilarityFunction, clamp01
from repro.similarity.blocking import TokenBlockingIndex
from repro.similarity.jaccard import jaccard, tokenize
from repro.similarity.levenshtein import normalized_levenshtein

from .base import corrupt_words, duplicate_counts, pick

_GIVEN = [
    "james", "mary", "robert", "patricia", "john", "jennifer", "michael",
    "linda", "david", "elizabeth", "william", "barbara", "richard", "susan",
    "joseph", "jessica", "thomas", "sarah", "charles", "karen", "oliver",
    "amelia", "lucas", "sofia", "ethan", "chloe", "noah", "grace",
]

_SURNAME = [
    "anderson", "baker", "carter", "dixon", "edwards", "foster", "griffin",
    "hayes", "irwin", "jenkins", "keller", "lawson", "mitchell", "norris",
    "osborne", "parker", "quinn", "reeves", "sanders", "turner", "vaughn",
    "watson", "york", "zimmerman",
]

_STREET = [
    "maple street", "oak avenue", "cedar lane", "pine road", "elm drive",
    "birch court", "willow way", "ash boulevard", "chestnut place",
    "sycamore terrace", "poplar crescent", "hawthorn close",
]

_CITY = [
    "springfield", "riverton", "lakeside", "fairview", "brookhaven",
    "hillcrest", "meadowbrook", "stonebridge", "westfield", "northgate",
]


class FebrlSimilarity(SimilarityFunction):
    """0.5 · normalized-Levenshtein + 0.5 · Jaccard (Table 1: "Levenshtein
    and Jaccard")."""

    name = "levenshtein+jaccard"

    def similarity(self, a: str, b: str) -> float:
        lev = normalized_levenshtein(a, b)
        jac = jaccard(tokenize(a), tokenize(b))
        return clamp01(0.5 * lev + 0.5 * jac)


def _make_person(rng: np.random.Generator) -> str:
    given = pick(_GIVEN, rng)
    surname = pick(_SURNAME, rng)
    number = str(int(rng.integers(1, 400)))
    street = pick(_STREET, rng)
    city = pick(_CITY, rng)
    return f"{given} {surname} {number} {street} {city}"


def _corrupt_person(payload: str, rng: np.random.Generator) -> str:
    # Febrl's default corruption is light — most duplicates carry a single
    # typo, some are exact re-entries of the source record.
    roll = rng.random()
    if roll < 0.2:
        return payload
    words = corrupt_words(payload.split(), rng, edits=1 if roll < 0.75 else 2)
    return " ".join(words)


def generate_febrl(
    n_originals: int = 300,
    n_duplicates: int = 500,
    distribution: str = "uniform",
    seed: int = 0,
) -> Dataset:
    """Generate a Febrl-like person dataset.

    ``distribution`` ∈ {"uniform", "poisson", "zipf"} matches the three
    synthetic variants the paper generates (§7.1).
    """
    rng = np.random.default_rng(seed)
    people = [_make_person(rng) for _ in range(n_originals)]
    counts = duplicate_counts(n_originals, n_duplicates, distribution, rng)

    records: list[Record] = []
    next_id = 0
    for truth, (person, count) in enumerate(zip(people, counts)):
        records.append(Record(id=next_id, payload=person, truth=truth))
        next_id += 1
        for _ in range(int(count)):
            records.append(
                Record(id=next_id, payload=_corrupt_person(person, rng), truth=truth)
            )
            next_id += 1

    order = rng.permutation(len(records))
    records = [records[i] for i in order]
    return Dataset(
        name=f"synthetic-{distribution}",
        similarity=FebrlSimilarity(),
        records=records,
        index_factory=TokenBlockingIndex,
        corrupt=_corrupt_person,
        store_threshold=0.35,
        data_type="textual and numerical",
    )
