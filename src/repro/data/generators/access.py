"""Amazon-Access-like numeric dataset (Table 1 substitution; DESIGN.md §4).

The real Amazon Access Samples dataset is 30K anonymised numeric
access-provisioning records compared with Euclidean distance. We
generate a Gaussian mixture of "access profiles": each cluster is a
profile (a centre in resource/role space), records are noisy draws from
it. Updates relocate a record towards a different profile with some
probability — the structural change that triggers merges/splits.
"""

from __future__ import annotations

import numpy as np

from repro.data.records import Dataset, Record
from repro.similarity.euclidean import EuclideanSimilarity
from repro.similarity.grid_index import GridIndex


def generate_access(
    n_profiles: int = 25,
    n_records: int = 1500,
    dims: int = 6,
    spread: float = 1.0,
    separation: float = 9.0,
    seed: int = 0,
) -> Dataset:
    """Generate an Access-like Gaussian-mixture dataset.

    Parameters
    ----------
    n_profiles:
        Number of mixture components (ground-truth clusters).
    n_records:
        Total records, split across profiles with lognormal skew.
    spread:
        Within-profile standard deviation.
    separation:
        Edge length of the box profile centres are drawn from, per
        ``n_profiles^(1/3)`` cell — larger means better separated.
    """
    rng = np.random.default_rng(seed)
    box = separation * max(n_profiles, 2) ** (1.0 / 3.0)
    centers = rng.uniform(0.0, box, size=(n_profiles, dims))

    weights = rng.lognormal(mean=0.0, sigma=0.6, size=n_profiles)
    weights /= weights.sum()
    assignment = rng.choice(n_profiles, size=n_records, p=weights)

    records: list[Record] = []
    for obj_id, profile in enumerate(assignment):
        point = centers[profile] + rng.normal(0.0, spread, size=dims)
        records.append(Record(id=obj_id, payload=point, truth=int(profile)))

    # Two draws from the same profile sit at distance ≈ spread·√(2·dims),
    # so the kernel scale must match that, not the raw spread.
    similarity = EuclideanSimilarity(scale=spread * float(np.sqrt(2.0 * dims)))
    store_threshold = 0.15
    cutoff = similarity.distance_for_similarity(store_threshold)

    def corrupt(payload: np.ndarray, rng_: np.random.Generator) -> np.ndarray:
        if rng_.random() < 0.35:
            # Relocate near another profile — a structural change.
            target = centers[int(rng_.integers(n_profiles))]
            return target + rng_.normal(0.0, spread, size=dims)
        return payload + rng_.normal(0.0, 0.5 * spread, size=dims)

    return Dataset(
        name="access",
        similarity=similarity,
        records=records,
        # Blocking projects onto the first 3 dimensions; candidates are
        # filtered by the true all-dims similarity afterwards.
        index_factory=lambda: GridIndex(cell_size=cutoff, dims=3),
        corrupt=corrupt,
        store_threshold=store_threshold,
        data_type="numerical",
    )
