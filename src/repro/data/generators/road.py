"""3D-Road-Network-like dataset (Table 1 substitution; DESIGN.md §4).

The real dataset has 434,874 (longitude, latitude, elevation) points of
the North Jutland road network. We synthesise roads as smooth random
polylines in a 2-D box with a slowly-varying elevation, and sample
jittered points along them. Clusters (ground truth) are the roads —
spatially contiguous strands, which is the regime DBSCAN and the grid
index are built for. Size is configurable; the benches scale it up to
study latency growth (Figs. 5(c)–(e)).
"""

from __future__ import annotations

import numpy as np

from repro.data.records import Dataset, Record
from repro.similarity.euclidean import EuclideanSimilarity
from repro.similarity.grid_index import GridIndex


def generate_road(
    n_roads: int = 30,
    points_per_road: int = 50,
    box: float = 120.0,
    step: float = 1.0,
    jitter: float = 0.08,
    seed: int = 0,
) -> Dataset:
    """Generate a Road-like dataset of ``n_roads * points_per_road`` points."""
    rng = np.random.default_rng(seed)
    records: list[Record] = []
    obj_id = 0
    for road in range(n_roads):
        position = rng.uniform(0.0, box, size=2)
        heading = rng.uniform(0.0, 2.0 * np.pi)
        elevation = rng.uniform(0.0, 20.0)
        for _ in range(points_per_road):
            heading += rng.normal(0.0, 0.15)
            position = position + step * np.array([np.cos(heading), np.sin(heading)])
            elevation += rng.normal(0.0, 0.05)
            point = np.array(
                [
                    position[0] + rng.normal(0.0, jitter),
                    position[1] + rng.normal(0.0, jitter),
                    elevation + rng.normal(0.0, jitter),
                ]
            )
            records.append(Record(id=obj_id, payload=point, truth=road))
            obj_id += 1

    order = rng.permutation(len(records))
    records = [records[i] for i in order]

    similarity = EuclideanSimilarity(scale=1.5 * step)
    store_threshold = 0.2
    cutoff = similarity.distance_for_similarity(store_threshold)

    def corrupt(payload: np.ndarray, rng_: np.random.Generator) -> np.ndarray:
        # GPS-style re-measurement: jitter around the original point.
        return payload + rng_.normal(0.0, 3.0 * jitter, size=3)

    return Dataset(
        name="road",
        similarity=similarity,
        records=records,
        index_factory=lambda: GridIndex(cell_size=cutoff),
        corrupt=corrupt,
        store_threshold=store_threshold,
        data_type="numerical",
    )
