"""Datasets, records, and dynamic workloads (Table 1 + §7.2)."""

from .records import Dataset, Record
from .workload import (
    DynamicWorkload,
    OperationMix,
    Snapshot,
    build_workload,
    tenant_stream,
    zipf_weights,
)

__all__ = [
    "Dataset",
    "DynamicWorkload",
    "OperationMix",
    "Record",
    "Snapshot",
    "build_workload",
    "tenant_stream",
    "zipf_weights",
]
