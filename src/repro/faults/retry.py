"""RetryPolicy: bounded retries with exponential backoff and full jitter.

One policy object covers every retried boundary (shipping, checkpoint
save, follower poll): it classifies errors as retryable or not, spaces
attempts with full-jitter exponential backoff, and gives up against a
deadline or an attempt cap. Exhaustion is *typed* — a
:class:`~repro.errors.DurabilityError` chained from the last failure —
so callers one layer up can transition to degraded mode instead of
seeing a bare ``OSError`` bubble out of the middle of a batch.

Classification defaults are deliberately conservative:

* transient-looking ``OSError`` errnos (``EIO``, ``EAGAIN``, ``EINTR``,
  ``EBUSY``, ``ETIMEDOUT``) plus ``ConnectionError``/``TimeoutError``
  are retryable — a flaky disk or link heals under backoff;
* ``ENOSPC`` is NOT retryable: a full disk does not drain in three
  sleeps, and retrying it only delays the degraded-mode transition the
  caller should make immediately.

:class:`~repro.faults.inject.InjectedCrash` derives from
``BaseException`` and therefore sails through ``run`` untouched: a
simulated process death must never be "healed" by a retry loop, or
crash sweeps would silently stop testing recovery.

Instrumented on the shared obs substrate: every call records one
``retry_attempts_total{boundary,outcome}`` increment per attempt
(outcomes ``ok`` / ``retried`` / ``exhausted`` / ``fatal``) and each
backoff sleep lands in the ``retry_backoff_seconds{boundary}``
histogram.
"""

from __future__ import annotations

import errno as _errno
import random
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import DurabilityError
from repro.obs import NULL_TELEMETRY

#: OSError errnos worth retrying: transient by nature.
TRANSIENT_ERRNOS = frozenset(
    {_errno.EIO, _errno.EAGAIN, _errno.EINTR, _errno.EBUSY, _errno.ETIMEDOUT}
)


def default_classifier(error: Exception) -> bool:
    """Is this error worth retrying? (ENOSPC deliberately is not.)"""
    if isinstance(error, (ConnectionError, TimeoutError)):
        return True
    if isinstance(error, OSError):
        return error.errno in TRANSIENT_ERRNOS
    return False


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and full jitter.

    Attributes
    ----------
    max_attempts:
        Total tries including the first; ``1`` means "no retries, but
        still classify and type the failure".
    base_delay_s / max_delay_s:
        Backoff envelope: attempt ``n`` sleeps a uniform draw from
        ``[0, min(max_delay_s, base_delay_s * 2**(n-1))]`` (full
        jitter — decorrelates retry storms better than equal steps).
    deadline_s:
        Wall budget across all attempts; when the next sleep would
        cross it, the policy gives up immediately instead.
    retryable:
        Error classifier; non-retryable errors re-raise unchanged on
        the spot (outcome ``fatal``).
    seed:
        Seeds the jitter RNG for deterministic tests; ``None`` draws
        from the process RNG.
    sleep / clock:
        Injectable for tests (``clock`` must be monotonic).
    """

    max_attempts: int = 3
    base_delay_s: float = 0.01
    max_delay_s: float = 0.25
    deadline_s: float | None = None
    retryable: Callable[[Exception], bool] = default_classifier
    seed: int | None = None
    sleep: Callable[[float], None] = time.sleep
    clock: Callable[[], float] = time.monotonic

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("backoff delays must be >= 0")

    def backoff_s(self, attempt: int, rng: random.Random) -> float:
        """The sleep before retry ``attempt + 1`` (full jitter)."""
        cap = min(self.max_delay_s, self.base_delay_s * (2 ** (attempt - 1)))
        return rng.uniform(0.0, cap)

    def run(self, fn: Callable[[], Any], *, boundary: str, obs=NULL_TELEMETRY) -> Any:
        """Call ``fn`` under this policy; returns its value.

        Raises the original error unchanged when it is non-retryable,
        and :class:`~repro.errors.DurabilityError` (chained from the
        last error) when retries or the deadline exhaust.
        """
        rng = random.Random(self.seed)
        started = self.clock()
        attempts = self._counter(obs)
        last_error: Exception | None = None
        for attempt in range(1, self.max_attempts + 1):
            try:
                result = fn()
            except Exception as error:  # InjectedCrash (BaseException) passes
                last_error = error
                if not self.retryable(error):
                    self._record(attempts, boundary, "fatal")
                    raise
                if attempt == self.max_attempts:
                    break
                delay = self.backoff_s(attempt, rng)
                if (
                    self.deadline_s is not None
                    and self.clock() - started + delay > self.deadline_s
                ):
                    break
                self._record(attempts, boundary, "retried")
                if obs.enabled:
                    obs.histogram(
                        "retry_backoff_seconds", labels=("boundary",)
                    ).labels(boundary=boundary).record(delay)
                if delay > 0:
                    self.sleep(delay)
            else:
                self._record(attempts, boundary, "ok")
                return result
        self._record(attempts, boundary, "exhausted")
        raise DurabilityError(
            boundary,
            attempt,
            f"{boundary} still failing after {attempt} attempt(s): {last_error}",
        ) from last_error

    def _counter(self, obs):
        if not obs.enabled:
            return None
        return obs.counter("retry_attempts_total", labels=("boundary", "outcome"))

    @staticmethod
    def _record(counter, boundary: str, outcome: str) -> None:
        if counter is not None:
            counter.labels(boundary=boundary, outcome=outcome).inc()


#: Policy used where retrying would double work better handled above
#: (or not at all): one attempt, typed exhaustion.
NO_RETRY = RetryPolicy(max_attempts=1)

__all__ = ["NO_RETRY", "RetryPolicy", "TRANSIENT_ERRNOS", "default_classifier"]
