"""CircuitBreaker: typed degraded mode for durability boundaries.

When retries exhaust on a durability path, crashing the service throws
away every read it could still serve; retrying forever turns one full
disk into an ingest hot loop. The breaker is the third option — a
small, explicit state machine per protected boundary:

* **closed** — healthy; writes flow, failures below notice.
* **open** — a durability failure was recorded; ingest on this path is
  rejected up front with a typed error carrying ``retry_after_s``
  (the next probe time), while reads keep serving.
* **half-open** — the backoff elapsed; the next :meth:`allow` admits
  one trial write. Success closes the breaker, failure re-opens it
  with a doubled backoff (capped).

Recovery is probe-driven rather than thread-driven: the breaker holds
an optional ``probe`` callable (e.g. "write+fsync+remove a marker file
in the tenant's checkpoint directory") and runs it from
:meth:`maybe_probe` — which the owning service calls on ingest attempts
and from the breaker's registered health check. Every ``/readyz``
scrape therefore doubles as the background re-test, with the breaker's
own backoff keeping probe frequency bounded no matter how hot the
scrape loop is.

Health integration: :meth:`health_check` returns a probe callable for
:class:`repro.obs.HealthRegistry` that first gives the breaker a
recovery chance, then reports ``ok`` or the configured severity — a
per-tenant breaker reports ``degraded`` (one tenant's full disk must
not flip the whole node's ``/readyz`` to 503), the shared-oplog breaker
reports ``failing`` (nothing can ingest, load balancers should know).
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.obs import NULL_TELEMETRY, CheckResult, degraded, failing, ok

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Closed/open/half-open breaker guarding one durability boundary.

    Parameters
    ----------
    name:
        Label on the ``breaker_transitions_total{name,state}`` counter
        and in health details.
    probe:
        Optional zero-argument callable that re-tests the boundary
        cheaply (raising on failure). Run by :meth:`maybe_probe` when
        the backoff has elapsed.
    base_backoff_s / max_backoff_s:
        Probe spacing: first re-test after ``base_backoff_s``, doubling
        per consecutive failure up to ``max_backoff_s``.
    clock:
        Monotonic clock, injectable for tests.
    obs:
        Telemetry recorder for transition counters.
    """

    def __init__(
        self,
        name: str,
        *,
        probe: Callable[[], Any] | None = None,
        base_backoff_s: float = 1.0,
        max_backoff_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        obs=NULL_TELEMETRY,
    ) -> None:
        self.name = name
        self.probe = probe
        self.base_backoff_s = base_backoff_s
        self.max_backoff_s = max_backoff_s
        self.clock = clock
        self.obs = obs
        self.state = CLOSED
        self.failures = 0  # consecutive, resets on success
        self.last_error: str | None = None
        self.opened_at: float | None = None
        self.next_probe_at: float | None = None

    # ------------------------------------------------------------------
    # State transitions
    # ------------------------------------------------------------------
    def record_failure(self, error: BaseException | str) -> None:
        """A durability attempt failed: open (or re-open, backing off)."""
        self.failures += 1
        self.last_error = str(error)
        now = self.clock()
        if self.state != OPEN:
            self.opened_at = now
            self._transition(OPEN)
        backoff = min(
            self.max_backoff_s, self.base_backoff_s * (2 ** (self.failures - 1))
        )
        self.next_probe_at = now + backoff

    def record_success(self) -> None:
        """A durability attempt (trial or probe) succeeded: close."""
        self.failures = 0
        self.last_error = None
        self.opened_at = None
        self.next_probe_at = None
        if self.state != CLOSED:
            self._transition(CLOSED)

    def allow(self) -> bool:
        """May a write proceed now?

        Closed: yes. Open: only once the backoff elapsed — that call
        moves the breaker to half-open and admits the single trial
        write whose outcome the caller must report back via
        :meth:`record_success` / :meth:`record_failure`.
        """
        if self.state == CLOSED:
            return True
        if self.next_probe_at is not None and self.clock() >= self.next_probe_at:
            if self.state != HALF_OPEN:
                self._transition(HALF_OPEN)
            return True
        return False

    def retry_after_s(self) -> float | None:
        """Seconds until the next trial is admitted (``None`` if closed)."""
        if self.state == CLOSED or self.next_probe_at is None:
            return None
        return max(0.0, self.next_probe_at - self.clock())

    def maybe_probe(self) -> bool:
        """Run the configured probe if the backoff elapsed; returns healthy.

        The "background probe" without a thread: called from ingest
        attempts and health-check evaluation, it re-tests the boundary
        at most once per backoff window and records the outcome.
        """
        if self.state == CLOSED:
            return True
        if self.probe is None or not self.allow():
            return False
        try:
            self.probe()
        except Exception as error:  # InjectedCrash passes through
            self.record_failure(error)
            return False
        self.record_success()
        return True

    # ------------------------------------------------------------------
    # Surfaces
    # ------------------------------------------------------------------
    def health_check(self, severity: str = "failing") -> Callable[[], CheckResult]:
        """A :class:`~repro.obs.HealthRegistry` probe for this breaker.

        ``severity`` chooses what an open breaker reports: ``"failing"``
        (gates ``/readyz``) for shared-path breakers, ``"degraded"``
        (visible but still ready) for per-tenant ones.
        """
        verdict = failing if severity == "failing" else degraded

        def check() -> CheckResult:
            self.maybe_probe()  # every scrape doubles as the re-test
            if self.state == CLOSED:
                return ok("closed", failures=0)
            return verdict(
                f"{self.state}: {self.last_error or 'durability failure'}",
                failures=self.failures,
                retry_after_s=self.retry_after_s(),
            )

        return check

    def status(self) -> dict:
        return {
            "name": self.name,
            "state": self.state,
            "failures": self.failures,
            "last_error": self.last_error,
            "retry_after_s": self.retry_after_s(),
        }

    def _transition(self, state: str) -> None:
        self.state = state
        if self.obs.enabled:
            self.obs.counter(
                "breaker_transitions_total", labels=("name", "state")
            ).labels(name=self.name, state=state).inc()


__all__ = ["CLOSED", "CircuitBreaker", "HALF_OPEN", "OPEN"]
