"""Deterministic fault injection for the durability and shipping paths.

The crash-consistency claims in :mod:`repro.stream` / :mod:`repro.replica`
(torn-tail healing, temp+rename-atomic publication, directory fsync)
all reduce to "a process may die between any two filesystem operations
and nothing partially-written may ever become visible". This module
makes that sweepable instead of anecdotal, and extends the sweep from
*crashes* to *errors*:

* :class:`FaultInjector` intercepts the *durability boundaries* —
  ``os.replace`` / ``os.rename`` (publication) and ``os.fsync``
  (persistence) — counts them, and raises :class:`InjectedCrash`
  *before* the N-th one executes. A dry run (``crash_at=None``)
  enumerates a scenario's crash points; a sweep then re-runs it
  crashing at every point in turn. The op trace is a pure function of
  the code under test, so sweeps are deterministic by construction —
  no timing, no real signals.
* :class:`ErrorInjector` targets the *named boundaries* the production
  code declares with :func:`fire` (``oplog.fsync``, ``ship.publish``,
  ...) and injects I/O errors (``ENOSPC``, ``EIO``), transient-then-ok
  flakiness with seeded schedules, latency, or crashes. Unlike the
  ``os``-level injector it reaches boundaries whose I/O happens below
  Python (the sqlite backend fsyncs inside the C library and never
  crosses ``os.fsync``).
* :func:`tear_file` deterministically truncates a file (seeded),
  simulating the torn in-progress *write* half: a ``write(2)`` that
  died mid-buffer, media damage, or a non-atomic copy.
* :func:`sample_crash_points` draws a seeded subset when a sweep is
  too large to run exhaustively.

:class:`InjectedCrash` derives from ``BaseException`` on purpose: the
code under test must behave as if the process died, so no
``except Exception`` / ``except OSError`` recovery path may swallow
the crash and keep going. Injected *errors* are plain :class:`OSError`
instances — they are exactly what the retry and degradation machinery
is expected to see and handle.

The :func:`fire` hook is zero-cost when no injector is active: one
truthiness check on a module-level list. Production code calls it
unconditionally at each named boundary.
"""

from __future__ import annotations

import errno as _errno
import os
import random
import time
from dataclasses import dataclass, field

#: Every boundary the production code declares with :func:`fire`.
#: Registered by name so a sweep can target ``oplog.fsync`` or
#: ``ship.publish`` specifically — an injector given a name outside
#: this set fails fast instead of silently never matching.
BOUNDARIES = frozenset(
    {
        "oplog.append",  # op batch write (JSONL write / sqlite INSERT)
        "oplog.fsync",  # durability point (fsync / sqlite COMMIT)
        "oplog.compact",  # prefix truncation (rewrite / DELETE+VACUUM)
        "checkpoint.save",  # snapshot persistence
        "checkpoint.load",  # snapshot recovery read
        "ship.publish",  # transport artifact publication
        "ship.poll",  # transport artifact consumption
        "replica.bootstrap",  # follower snapshot-led start
    }
)


class InjectedCrash(BaseException):
    """The simulated process death raised at a crash point."""


class FaultInjector:
    """Context manager that crashes at the N-th intercepted fs op.

    Parameters
    ----------
    crash_at:
        1-based index of the intercepted operation that does NOT
        execute (the "process died just before it" semantics; crashing
        before op N equals crashing after op N-1, so sweeping
        ``1..total`` plus the no-crash run covers every boundary).
        ``None`` intercepts and records without crashing — the dry run
        that enumerates a scenario's crash points.

    obs:
        Optional :class:`repro.obs.Telemetry` recorder. When given,
        every intercepted op increments a
        ``faultinject_ops_total{kind=...}`` counter and an injected
        crash increments ``faultinject_crashes_total{kind=...}`` — so a
        fault-harness run's telemetry snapshot shows which durability
        boundaries the sweep actually exercised.

    Attributes
    ----------
    trace:
        ``(kind, path)`` of every intercepted op, in order — including,
        last, the op a crash suppressed.
    """

    _TARGETS = ("replace", "rename", "fsync")

    def __init__(self, crash_at: int | None = None, obs=None) -> None:
        self.crash_at = crash_at
        self.obs = obs
        self.trace: list[tuple[str, str]] = []
        self._originals: dict = {}

    def __enter__(self) -> "FaultInjector":
        for kind in self._TARGETS:
            self._originals[kind] = getattr(os, kind)
            setattr(os, kind, self._wrap(kind, self._originals[kind]))
        return self

    def __exit__(self, *exc) -> None:
        for kind, original in self._originals.items():
            setattr(os, kind, original)
        self._originals.clear()

    def _wrap(self, kind: str, original):
        def intercepted(*args, **kwargs):
            self.trace.append((kind, str(args[0]) if args else ""))
            if self.obs is not None and self.obs.enabled:
                self.obs.counter("faultinject_ops_total", labels=("kind",)).labels(
                    kind=kind
                ).inc()
            if self.crash_at is not None and len(self.trace) == self.crash_at:
                if self.obs is not None and self.obs.enabled:
                    self.obs.counter(
                        "faultinject_crashes_total", labels=("kind",)
                    ).labels(kind=kind).inc()
                raise InjectedCrash(
                    f"injected crash before {kind} #{len(self.trace)} "
                    f"({self.trace[-1][1]})"
                )
            return original(*args, **kwargs)

        return intercepted

    def __len__(self) -> int:
        return len(self.trace)


# ----------------------------------------------------------------------
# Named-boundary error injection
# ----------------------------------------------------------------------

#: Stack of active :class:`ErrorInjector` instances. Kept as a plain
#: module list so :func:`fire` costs one truthiness check when empty.
_ACTIVE: list["ErrorInjector"] = []


def fire(boundary: str, path=None) -> None:
    """Production-side hook: declare that ``boundary`` is being crossed.

    Called unconditionally at every named durability/shipping boundary.
    With no injector active this is one list truthiness check; with one
    active, the innermost injector decides whether to delay, error, or
    crash here. ``path`` (when the boundary touches a file) lets specs
    target a subtree — e.g. one tenant's checkpoint directory.
    """
    if _ACTIVE:
        _ACTIVE[-1]._hit(boundary, "" if path is None else str(path))


@dataclass
class FaultSpec:
    """One injected fault at one named boundary.

    Attributes
    ----------
    boundary:
        The :data:`BOUNDARIES` name this spec matches.
    error:
        ``errno`` value to raise as :class:`OSError` on a matched hit
        (e.g. ``errno.ENOSPC``); ``None`` injects no error.
    latency_s:
        Sleep this long (via the injector's ``sleep``) on every matched
        hit, before any error decision — models a slow disk or link.
    fail_times:
        Inject the error only this many times, then let hits through
        (transient-then-ok). ``None`` = persistent: every matched hit
        fails until the injector exits or :meth:`ErrorInjector.lift`.
    after:
        Skip the first ``after`` matched hits before injecting.
    probability:
        With ``p < 1``, each otherwise-matching hit fails only if the
        injector's seeded RNG draws below ``p`` — a reproducible flaky
        schedule, not a real coin.
    path_substring:
        Only hits whose path contains this substring match — how a
        sweep confines ENOSPC to one tenant's checkpoint directory.
    crash_at:
        Raise :class:`InjectedCrash` on the N-th (1-based) matched hit
        instead of an error — crash sweeps for boundaries the
        ``os``-level :class:`FaultInjector` cannot see (sqlite commits).
    """

    boundary: str
    error: int | None = None
    latency_s: float = 0.0
    fail_times: int | None = None
    after: int = 0
    probability: float = 1.0
    path_substring: str | None = None
    crash_at: int | None = None
    # Mutable per-run bookkeeping (not part of the spec identity).
    matched: int = field(default=0, compare=False)
    injected: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.boundary not in BOUNDARIES:
            known = ", ".join(sorted(BOUNDARIES))
            raise ValueError(
                f"unknown fault boundary {self.boundary!r} (known: {known})"
            )
        if self.error is None and self.crash_at is None and self.latency_s <= 0:
            raise ValueError(
                "FaultSpec injects nothing: set error=, crash_at= or latency_s="
            )
        if not 0.0 < self.probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")


def enospc(boundary: str, **kwargs) -> FaultSpec:
    """Persistent out-of-space at ``boundary`` (non-retryable by policy)."""
    return FaultSpec(boundary, error=_errno.ENOSPC, **kwargs)


def eio(boundary: str, *, fail_times: int | None = None, **kwargs) -> FaultSpec:
    """I/O error at ``boundary``; ``fail_times`` makes it transient."""
    return FaultSpec(boundary, error=_errno.EIO, fail_times=fail_times, **kwargs)


def flaky(boundary: str, probability: float, *, error: int = _errno.EIO, **kwargs) -> FaultSpec:
    """Seeded-coin transient errors: each hit fails with ``probability``."""
    return FaultSpec(boundary, error=error, probability=probability, **kwargs)


def slow(boundary: str, latency_s: float, **kwargs) -> FaultSpec:
    """Pure latency injection at ``boundary`` (no error)."""
    return FaultSpec(boundary, latency_s=latency_s, **kwargs)


class ErrorInjector:
    """Context manager injecting :class:`FaultSpec` faults at named boundaries.

    Parameters
    ----------
    *specs:
        The faults to arm. Several specs may name the same boundary;
        the first one whose filters match a hit decides it.
    seed:
        Seeds the RNG behind ``probability`` schedules — the same seed
        over the same code path injects at the same hits.
    sleep:
        Clock used for ``latency_s`` (injectable for fast tests).
    obs:
        Optional :class:`repro.obs.Telemetry`; matched injections
        increment ``faultinject_errors_total{boundary=...}``.

    Attributes
    ----------
    hits:
        ``boundary -> total fire() crossings seen`` while active
        (matched or not) — the dry-run census that sizes a sweep.
    trace:
        ``(boundary, path, action)`` per crossing, where ``action`` is
        ``"ok"``, ``"error"`` or ``"crash"``.
    """

    def __init__(self, *specs: FaultSpec, seed: int = 0, sleep=time.sleep, obs=None) -> None:
        self.specs = list(specs)
        self.rng = random.Random(seed)
        self.sleep = sleep
        self.obs = obs
        self.hits: dict[str, int] = {}
        self.trace: list[tuple[str, str, str]] = []
        self._lifted: list[FaultSpec] = []

    def __enter__(self) -> "ErrorInjector":
        _ACTIVE.append(self)
        return self

    def __exit__(self, *exc) -> None:
        _ACTIVE.remove(self)

    def lift(self, boundary: str | None = None) -> None:
        """Disarm specs (all, or those at ``boundary``) without exiting.

        Models "the operator freed disk space": the injector stays
        active for bookkeeping but stops injecting — the recovery
        probes the degraded-mode machinery runs will now succeed.
        """
        kept = []
        for spec in self.specs:
            if boundary is None or spec.boundary == boundary:
                self._lifted.append(spec)  # retire; keep its counts
            else:
                kept.append(spec)
        self.specs = kept

    def _hit(self, boundary: str, path: str) -> None:
        self.hits[boundary] = self.hits.get(boundary, 0) + 1
        for spec in self.specs:
            if spec.boundary != boundary:
                continue
            if spec.path_substring is not None and spec.path_substring not in path:
                continue
            spec.matched += 1
            if spec.latency_s > 0:
                self.sleep(spec.latency_s)
            if spec.crash_at is not None:
                if spec.matched == spec.crash_at:
                    spec.injected += 1
                    self.trace.append((boundary, path, "crash"))
                    self._count(boundary)
                    raise InjectedCrash(
                        f"injected crash at {boundary} hit #{spec.matched} ({path})"
                    )
                continue
            if spec.error is None:
                continue  # latency-only spec
            if spec.matched <= spec.after:
                continue
            if spec.fail_times is not None and spec.injected >= spec.fail_times:
                continue
            if spec.probability < 1.0 and self.rng.random() >= spec.probability:
                continue
            spec.injected += 1
            self.trace.append((boundary, path, "error"))
            self._count(boundary)
            raise OSError(
                spec.error,
                f"injected {_errno.errorcode.get(spec.error, spec.error)} "
                f"at {boundary} hit #{spec.matched}",
                path or None,
            )
        self.trace.append((boundary, path, "ok"))

    def _count(self, boundary: str) -> None:
        if self.obs is not None and self.obs.enabled:
            self.obs.counter(
                "faultinject_errors_total", labels=("boundary",)
            ).labels(boundary=boundary).inc()

    def injected_total(self) -> int:
        return sum(spec.injected for spec in self.specs + self._lifted)


def tear_file(path, seed: int, min_keep: int = 1) -> int:
    """Truncate ``path`` to a seeded, deterministic prefix; returns kept bytes.

    Simulates the write-side fault :class:`FaultInjector` cannot reach
    (buffered writes never cross an interceptable os boundary): the
    file exists but only a prefix of its bytes made it to the medium.
    """
    data = path.read_bytes()
    if len(data) <= min_keep:
        raise ValueError(f"{path} too small to tear ({len(data)} bytes)")
    keep = random.Random(seed).randrange(min_keep, len(data))
    path.write_bytes(data[:keep])
    return keep


def sample_crash_points(total: int, k: int, seed: int) -> list[int]:
    """A seeded, sorted subset of ``1..total`` for non-exhaustive sweeps."""
    if total < 1:
        return []
    k = min(k, total)
    return sorted(random.Random(seed).sample(range(1, total + 1), k))


__all__ = [
    "BOUNDARIES",
    "ErrorInjector",
    "FaultInjector",
    "FaultSpec",
    "InjectedCrash",
    "enospc",
    "eio",
    "fire",
    "flaky",
    "sample_crash_points",
    "slow",
    "tear_file",
]
