"""repro.faults — fault injection, retry policies, and degraded mode.

Three pieces, one failure story:

* :mod:`repro.faults.inject` — deterministic fault injection:
  ``os``-level crash sweeps (:class:`FaultInjector`), named-boundary
  error/latency/crash injection (:class:`ErrorInjector` against the
  :func:`fire` hooks the production code declares), torn-tail
  simulation (:func:`tear_file`) and seeded sweep sampling.
* :mod:`repro.faults.retry` — :class:`RetryPolicy`: bounded attempts,
  exponential backoff with full jitter, deadline, retryable-error
  classification; exhaustion raises the typed
  :class:`~repro.errors.DurabilityError`.
* :mod:`repro.faults.breaker` — :class:`CircuitBreaker`: the
  closed/open/half-open state machine behind degraded-mode serving,
  with probe-driven recovery and health-registry integration.

The injection hooks cost one list-truthiness check when inactive, the
retry policies catch only :class:`Exception` (so injected crashes still
kill the "process"), and every piece records onto the shared obs
substrate — the drill in ``tests/test_chaos.py`` is the end-to-end
consumer.
"""

from .breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from .inject import (
    BOUNDARIES,
    ErrorInjector,
    FaultInjector,
    FaultSpec,
    InjectedCrash,
    enospc,
    eio,
    fire,
    flaky,
    sample_crash_points,
    slow,
    tear_file,
)
from .retry import NO_RETRY, RetryPolicy, TRANSIENT_ERRNOS, default_classifier

__all__ = [
    "BOUNDARIES",
    "CLOSED",
    "CircuitBreaker",
    "ErrorInjector",
    "FaultInjector",
    "FaultSpec",
    "HALF_OPEN",
    "InjectedCrash",
    "NO_RETRY",
    "OPEN",
    "RetryPolicy",
    "TRANSIENT_ERRNOS",
    "default_classifier",
    "enospc",
    "eio",
    "fire",
    "flaky",
    "sample_crash_points",
    "slow",
    "tear_file",
]
