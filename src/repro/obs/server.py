"""The observability HTTP server: scrape, probe, and trace over plain HTTP.

:class:`ObsServer` is a stdlib-only (``http.server``) sidecar thread a
service starts when ``StreamConfig.obs_server`` is set. It exposes:

``GET /metrics``
    Prometheus text exposition (``text/plain; version=0.0.4``) from the
    attached telemetry — counters, gauges, histogram quantiles, with
    ``# HELP`` / ``# TYPE`` headers and escaped label values.
``GET /metrics.json``
    The full :meth:`Telemetry.snapshot` as JSON (metrics + trace ring).
``GET /traces``
    The span ring buffer in Chrome ``chrome://tracing`` / Perfetto
    JSON format.
``GET /healthz``
    Liveness: 200 with ``{"status": "alive"}`` whenever the process can
    answer at all. No component checks run.
``GET /readyz``
    Readiness: runs every :class:`~repro.obs.health.HealthRegistry`
    check; 200 while the aggregate is ``ok``/``degraded`` and any
    bootstrap gate has opened, 503 otherwise. The body is the full
    report either way, so an operator sees *which* check tripped.

Anything else is 404; a provider that raises is a 500 whose body names
the exception — the server never dies with the component it watches.

The server binds before :meth:`start` returns, so ``port 0`` (ephemeral
pick, the right choice in tests) works: read the real port back from
:attr:`address`. Requests are handled on daemon threads
(``ThreadingHTTPServer``), so a slow scrape never blocks a probe.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from .health import HealthRegistry
from .telemetry import NULL_TELEMETRY


def parse_listen(spec: str) -> tuple[str, int]:
    """``"host:port"`` → ``(host, port)``; bare ``"port"`` binds loopback."""
    text = spec.strip()
    if ":" in text:
        host, _, port_text = text.rpartition(":")
    else:
        host, port_text = "127.0.0.1", text
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"obs_server must look like 'host:port' or 'port', got {spec!r}"
        ) from None
    if not 0 <= port <= 65535:
        raise ValueError(f"obs_server port out of range: {port}")
    return host or "127.0.0.1", port


class ObsServer:
    """Serve one telemetry recorder + health registry over HTTP.

    Parameters
    ----------
    listen:
        ``"host:port"`` (or just ``"port"``); port 0 asks the OS for a
        free port — read it back from :attr:`address` after
        :meth:`start`.
    telemetry:
        Recorder behind ``/metrics``, ``/metrics.json`` and ``/traces``.
        The null recorder is fine: scrapes return empty-but-valid
        bodies, probes still work.
    health:
        Registry behind ``/readyz``; ``None`` builds an empty one
        (always ready).
    logger:
        Optional :class:`~repro.obs.logging.StructuredLogger`; request
        lines land there (debug level) instead of stderr.
    """

    def __init__(
        self,
        listen: str,
        telemetry=NULL_TELEMETRY,
        health: HealthRegistry | None = None,
        logger=None,
        prefix: str = "repro",
    ) -> None:
        self.telemetry = telemetry
        self.health = health if health is not None else HealthRegistry()
        self.logger = logger
        self.prefix = prefix
        host, port = parse_listen(listen)
        self._httpd = ThreadingHTTPServer((host, port), _make_handler(self))
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> str:
        """The bound ``host:port`` — the real port even when asked for 0."""
        host, port = self._httpd.server_address[:2]
        return f"{host}:{port}"

    @property
    def url(self) -> str:
        return f"http://{self.address}"

    def start(self) -> "ObsServer":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"obs-server-{self.address}",
            daemon=True,
        )
        self._thread.start()
        if self.logger is not None:
            self.logger.info("obs_server_started", address=self.address)
        return self

    def close(self) -> None:
        """Stop serving and release the port; idempotent."""
        thread, self._thread = self._thread, None
        if thread is not None:
            self._httpd.shutdown()
            thread.join(timeout=5.0)
        self._httpd.server_close()

    def __enter__(self) -> "ObsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Endpoint bodies, separated from HTTP plumbing for direct testing.
    # ------------------------------------------------------------------
    def render_metrics(self) -> str:
        return self.telemetry.to_prometheus(prefix=self.prefix)

    def render_metrics_json(self) -> dict:
        return self.telemetry.snapshot()

    def render_traces(self) -> dict:
        return self.telemetry.tracer.to_chrome_trace()

    def render_readyz(self) -> tuple[int, dict]:
        report = self.health.report()
        return (200 if report["ready"] else 503), report


def _make_handler(server: ObsServer):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def do_GET(self) -> None:  # noqa: N802 (http.server contract)
            path = self.path.split("?", 1)[0]
            try:
                if path == "/metrics":
                    self._send(200, server.render_metrics(),
                               "text/plain; version=0.0.4; charset=utf-8")
                elif path == "/metrics.json":
                    self._send_json(200, server.render_metrics_json())
                elif path == "/traces":
                    self._send_json(200, server.render_traces())
                elif path == "/healthz":
                    self._send_json(200, {"status": "alive"})
                elif path == "/readyz":
                    status, report = server.render_readyz()
                    self._send_json(status, report)
                else:
                    self._send_json(404, {"error": f"no such endpoint: {path}"})
            except Exception as exc:  # provider bug ≠ dead endpoint
                try:
                    self._send_json(
                        500, {"error": f"{type(exc).__name__}: {exc}"}
                    )
                except OSError:
                    pass  # client hung up mid-error; nothing left to say

        def _send(self, status: int, body: str, content_type: str) -> None:
            payload = body.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def _send_json(self, status: int, obj: dict) -> None:
            self._send(status, json.dumps(obj, indent=2) + "\n",
                       "application/json; charset=utf-8")

        def log_message(self, format: str, *args) -> None:
            if server.logger is not None:
                server.logger.debug(
                    "http_request",
                    client=self.address_string(),
                    line=format % args,
                )

    return Handler
