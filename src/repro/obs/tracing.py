"""Pipeline tracing: lightweight spans with a Chrome-trace exporter.

A :class:`Tracer` records *spans* — named, timed sections with optional
labels — via ``with tracer.span("shard.apply", shard=i):``. Spans nest
naturally (the tracer keeps a stack, so every completed span knows its
depth and parent), land in a bounded ring buffer of recent spans, and
export as Chrome trace-event JSON (`chrome://tracing` / Perfetto
"traceEvents" with complete ``ph: "X"`` events), giving a zoomable
timeline of one service run: ingest → route → batch → shard rounds →
oplog fsync → checkpoint → shipping → replica catch-up.

The tracer is single-process and synchronous by design — exactly the
shape of the serving stack it instruments; the ``tid`` field in the
export is the span's nesting depth's owner ("component" label when
given), so primary and replica activity separate into rows.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from collections import deque
from typing import Any, Callable

#: Process-wide tracer id allocator: every Tracer gets a distinct
#: ``trace_id`` so logs from two services in one process correlate to
#: the right recorder.
_TRACER_IDS = itertools.count(1)


class Span:
    """One completed (or in-flight) timed section."""

    __slots__ = ("name", "args", "start", "end", "depth", "parent", "span_id")

    def __init__(self, name: str, args: dict[str, Any]) -> None:
        self.name = name
        self.args = args
        self.start = 0.0
        self.end = 0.0
        self.depth = 0
        self.parent: str | None = None
        #: Assigned by the tracer at entry; 0 until then. Structured log
        #: lines emitted inside the span carry it as their correlation id.
        self.span_id = 0

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "start_s": self.start,
            "duration_s": self.duration,
            "depth": self.depth,
            "parent": self.parent,
            "args": dict(self.args),
        }


class _SpanContext:
    """The ``with`` handle: times the section and reports to the tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        tracer = self._tracer
        span = self._span
        span.depth = len(tracer._stack)
        span.parent = tracer._stack[-1].name if tracer._stack else None
        span.span_id = tracer._next_span_id
        tracer._next_span_id += 1
        tracer._stack.append(span)
        span.start = tracer.clock()
        return span

    def __exit__(self, *exc) -> bool:
        span = self._span
        span.end = self._tracer.clock()
        tracer = self._tracer
        # Pop by identity: a crash (or a caller re-raising through
        # several contexts) unwinds in reverse entry order, so the top
        # of the stack is always this span.
        if tracer._stack and tracer._stack[-1] is span:
            tracer._stack.pop()
        tracer._record(span)
        return False


class Tracer:
    """Span recorder with a bounded ring buffer of completed spans.

    Parameters
    ----------
    max_spans:
        Ring-buffer capacity; the oldest completed spans are dropped
        (and counted) once exceeded, so a long-running service traces
        its recent past at bounded memory.
    clock:
        Monotonic time source (``time.perf_counter`` domain).
    on_drop:
        Called once per completed span evicted from the full ring
        buffer — how :class:`~repro.obs.telemetry.Telemetry` keeps its
        ``obs_dropped_spans_total`` counter honest, so backpressure on
        the observability path is itself observable.
    """

    enabled = True

    def __init__(
        self,
        max_spans: int = 8192,
        clock: Callable[[], float] = time.perf_counter,
        on_complete: Callable[[Span], None] | None = None,
        on_drop: Callable[[], None] | None = None,
    ) -> None:
        self.clock = clock
        self.epoch = clock()
        self.max_spans = max_spans
        self.spans: deque[Span] = deque(maxlen=max_spans)
        self.spans_recorded = 0
        #: Stable correlation id for this recorder (process id + tracer
        #: ordinal) — stamped into structured log lines as ``trace``.
        self.trace_id = f"{os.getpid():x}-{next(_TRACER_IDS)}"
        self._stack: list[Span] = []
        self._next_span_id = 1
        self._on_complete = on_complete
        self._on_drop = on_drop

    def span(self, name: str, **args: Any) -> _SpanContext:
        return _SpanContext(self, Span(name, args))

    def current(self) -> Span | None:
        """The innermost open span, or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    def _record(self, span: Span) -> None:
        self.spans_recorded += 1
        if len(self.spans) == self.max_spans and self._on_drop is not None:
            self._on_drop()
        self.spans.append(span)
        if self._on_complete is not None:
            self._on_complete(span)

    @property
    def spans_dropped(self) -> int:
        return max(0, self.spans_recorded - len(self.spans))

    # ------------------------------------------------------------------
    def recent(self, n: int = 50) -> list[dict]:
        """The newest ``n`` completed spans, oldest first (for stats())."""
        spans = list(self.spans)[-n:]
        return [span.to_dict() for span in spans]

    def to_chrome_trace(self) -> dict:
        """The ring buffer as a Chrome trace-event JSON object.

        Load the written file at ``chrome://tracing`` (or ui.perfetto.dev)
        for a zoomable timeline. Timestamps are microseconds since the
        tracer's epoch; nesting shows as stacked slices because complete
        ("X") events on one track nest by time containment.
        """
        events = []
        for span in sorted(self.spans, key=lambda s: s.start):
            args = {key: _json_safe(value) for key, value in span.args.items()}
            component = args.pop("component", "service")
            events.append(
                {
                    "name": span.name,
                    "cat": span.name.split(".", 1)[0],
                    "ph": "X",
                    "ts": (span.start - self.epoch) * 1e6,
                    "dur": span.duration * 1e6,
                    "pid": 0,
                    "tid": component,
                    "args": args,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome_trace(), handle)
            handle.write("\n")

    def snapshot(self) -> dict:
        return {
            "spans_recorded": self.spans_recorded,
            "spans_dropped": self.spans_dropped,
            "open_spans": [span.name for span in self._stack],
            "recent_spans": self.recent(20),
        }


def _json_safe(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


class _NullSpanContext:
    """Shared, allocation-free ``with`` target when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullSpanContext()


class NullTracer:
    """No-op recorder: every call is a constant-time shrug."""

    enabled = False
    trace_id = "0-0"

    def span(self, name: str, **args: Any) -> _NullSpanContext:
        return NULL_SPAN

    def current(self) -> None:
        return None

    def recent(self, n: int = 50) -> list[dict]:
        return []

    def to_chrome_trace(self) -> dict:
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    def snapshot(self) -> dict:
        return {"spans_recorded": 0, "spans_dropped": 0, "open_spans": [], "recent_spans": []}
