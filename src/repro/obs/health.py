"""Health checks: named component probes aggregated to one verdict.

The operational contract a load balancer (or an operator's ``curl``)
probes: a :class:`HealthRegistry` owns named checks — each a callable
returning a :class:`CheckResult` — and :meth:`HealthRegistry.report`
runs them all, aggregating to ``ok`` / ``degraded`` / ``failing`` with
per-check detail. A probe that *raises* is itself a ``failing`` result
(the error message becomes the detail): a health endpoint must never be
taken down by the thing it is reporting on.

Two endpoint semantics are derived from one registry (see
:class:`~repro.obs.server.ObsServer`):

* **liveness** (``/healthz``) — "is the process up and serving?";
  always 200 while the server answers, no checks consulted.
* **readiness** (``/readyz``) — "should traffic be routed here?";
  200 while the aggregate is ``ok`` or ``degraded`` (stale-but-serving
  beats flapping out of the pool), 503 once any check reports
  ``failing`` — or while a *gate* (e.g. follower bootstrap) has not
  opened yet.

The standard service checks (oplog appendable, checkpoint store
writable, shard backlog bounded, replica lag bounded) are built by the
``check_*`` factories below and wired up by
:class:`~repro.stream.service.ClusteringService` /
:class:`~repro.replica.service.ReplicatedClusteringService` when
``StreamConfig.obs_server`` is set.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable

OK = "ok"
DEGRADED = "degraded"
FAILING = "failing"
_SEVERITY = {OK: 0, DEGRADED: 1, FAILING: 2}


@dataclass(frozen=True)
class CheckResult:
    """One probe's verdict: a status, a human detail line, and data."""

    status: str
    detail: str = ""
    data: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.status not in _SEVERITY:
            raise ValueError(
                f"status must be one of {tuple(_SEVERITY)}, got {self.status!r}"
            )

    def to_dict(self) -> dict:
        out: dict[str, Any] = {"status": self.status, "detail": self.detail}
        if self.data:
            out["data"] = dict(self.data)
        return out


def ok(detail: str = "", **data: Any) -> CheckResult:
    return CheckResult(OK, detail, data)


def degraded(detail: str = "", **data: Any) -> CheckResult:
    return CheckResult(DEGRADED, detail, data)


def failing(detail: str = "", **data: Any) -> CheckResult:
    return CheckResult(FAILING, detail, data)


class HealthRegistry:
    """Named probes plus an optional readiness gate.

    ``ready_when`` is the bootstrap gate: a zero-argument callable that
    must return ``True`` before :meth:`report` may call the component
    ready, independent of check results — how a follower stays out of
    the read pool until its first successful poll even though every
    individual probe is green.
    """

    def __init__(self, ready_when: Callable[[], bool] | None = None) -> None:
        self._checks: dict[str, Callable[[], CheckResult]] = {}
        self.ready_when = ready_when

    def register(self, name: str, probe: Callable[[], CheckResult]) -> None:
        """Add or replace the named probe."""
        self._checks[name] = probe

    def unregister(self, name: str) -> None:
        self._checks.pop(name, None)

    def names(self) -> list[str]:
        return sorted(self._checks)

    # ------------------------------------------------------------------
    def report(self) -> dict:
        """Run every probe; aggregate worst-wins with per-check detail."""
        checks: dict[str, dict] = {}
        worst = OK
        for name in sorted(self._checks):
            try:
                result = self._checks[name]()
            except Exception as exc:  # a broken probe is a failing check
                result = failing(f"probe raised {type(exc).__name__}: {exc}")
            checks[name] = result.to_dict()
            if _SEVERITY[result.status] > _SEVERITY[worst]:
                worst = result.status
        gated = self.ready_when is not None and not self.ready_when()
        return {
            "status": worst,
            "ready": worst != FAILING and not gated,
            "gated": gated,
            "checks": checks,
        }


# ---------------------------------------------------------------------------
# Standard probe factories for the serving stack
# ---------------------------------------------------------------------------
def check_oplog(log) -> Callable[[], CheckResult]:
    """Oplog appendable: the backing medium is open and statable."""

    def probe() -> CheckResult:
        if log is None:
            return ok("ephemeral service (no oplog configured)")
        try:
            size = log.size_bytes()
        except Exception as exc:
            return failing(f"oplog unusable: {type(exc).__name__}: {exc}")
        handle = getattr(log, "_handle", None)
        if handle is not None and handle.closed:
            return failing("oplog file handle is closed")
        return ok("appendable", last_seq=log.last_seq, bytes=size)

    return probe


def check_checkpoints(store) -> Callable[[], CheckResult]:
    """Checkpoint store writable: listable, and its directory accepts writes."""

    def probe() -> CheckResult:
        if store is None:
            return ok("checkpointing disabled")
        try:
            seqs = store.list_seqs()
        except Exception as exc:
            return failing(f"checkpoint store unreadable: {type(exc).__name__}: {exc}")
        path = getattr(store, "directory", None) or getattr(store, "path", None)
        if path is not None:
            target = path if os.path.isdir(path) else os.path.dirname(str(path)) or "."
            if not os.access(target, os.W_OK):
                return failing(f"checkpoint location not writable: {target}")
        return ok("writable", snapshots=len(seqs))

    return probe


def check_backlog(service, max_pending: int) -> Callable[[], CheckResult]:
    """Shard backlog bounded: pending (unapplied) operations below bound."""

    def probe() -> CheckResult:
        pending = len(service.batcher)
        data = {"pending_ops": pending, "bound": max_pending}
        if pending > max_pending:
            return degraded(
                f"{pending} pending ops exceed bound {max_pending}", **data
            )
        return ok("backlog within bound", **data)

    return probe


def check_replica_lag(
    lag_fn: Callable[[], dict],
    *,
    max_seq_delta: int,
    max_staleness_s: float,
) -> Callable[[], CheckResult]:
    """Per-replica lag bounded: seq delta and staleness below thresholds.

    ``lag_fn`` is one replica's :meth:`~repro.replica.replica.ReadReplica.lag`.
    A replica that has never heard from its primary is ``degraded`` (it
    cannot vouch for its answers), not failing — it may simply be first
    in line after attach.
    """

    def probe() -> CheckResult:
        lag = lag_fn()
        data = {
            "seq_delta": lag["seq_delta"],
            "staleness_s": lag["staleness_s"],
            "visibility_lag_s": lag.get("visibility_lag_s"),
        }
        if lag["staleness_s"] is None:
            return degraded("never heard from primary", **data)
        if lag["seq_delta"] > max_seq_delta:
            return degraded(
                f"seq delta {lag['seq_delta']} exceeds bound {max_seq_delta}",
                **data,
            )
        if lag["staleness_s"] > max_staleness_s:
            return degraded(
                f"staleness {lag['staleness_s']:.1f}s exceeds bound "
                f"{max_staleness_s:.1f}s",
                **data,
            )
        return ok("within lag bounds", **data)

    return probe
