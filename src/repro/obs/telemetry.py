"""The Telemetry bundle: one object a service threads through its layers.

A :class:`Telemetry` owns a :class:`~repro.obs.metrics.MetricsRegistry`
and a :class:`~repro.obs.tracing.Tracer`, and fuses them at the one
primitive everything instruments with: :meth:`span`. Every completed
span is both a trace event (timeline) *and* a sample in the
``span_seconds{name=...}`` histogram family (streaming p50/p95/p99) —
so instrumenting a code path once yields latency percentiles and a
Chrome-trace timeline together.

:data:`NULL_TELEMETRY` is the zero-cost-when-off recorder: a shared
singleton whose ``enabled`` is ``False`` and whose every method is a
constant-time no-op. Hot paths guard with ``if obs.enabled:`` so the
disabled cost is one attribute lookup; warm paths may simply
``with obs.span(...):`` — on the null recorder that returns a shared,
allocation-free context manager.

Pass ``StreamConfig(telemetry="on")`` (or a shared :class:`Telemetry`
instance — how :class:`~repro.replica.ReplicatedClusteringService`
merges primary, shipper and replica telemetry into one snapshot) to
enable collection.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from .metrics import MetricsRegistry
from .tracing import NULL_SPAN, NullTracer, Tracer, _NullSpanContext


class Telemetry:
    """Metrics registry + tracer, fused at the ``span`` primitive."""

    enabled = True

    def __init__(
        self,
        max_spans: int = 8192,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.registry = MetricsRegistry()
        self._dropped_spans = self.registry.counter(
            "obs_dropped_spans_total",
            help="Completed spans evicted from the full trace ring buffer",
        )
        self.tracer = Tracer(
            max_spans=max_spans,
            clock=clock,
            on_complete=self._span_done,
            on_drop=self._dropped_spans.inc,
        )
        self._span_seconds = self.registry.histogram(
            "span_seconds",
            labels=("name",),
            help="Latency of instrumented sections, per span name",
        )

    def _span_done(self, span) -> None:
        self._span_seconds.labels(name=span.name).record(span.duration)

    # ------------------------------------------------------------------
    def span(self, name: str, **args: Any):
        """Time a section: trace event + ``span_seconds`` histogram sample."""
        return self.tracer.span(name, **args)

    def current_span(self):
        """The innermost open span (log correlation), ``None`` outside."""
        return self.tracer.current()

    @property
    def trace_id(self) -> str:
        return self.tracer.trace_id

    def counter(self, name: str, labels: tuple[str, ...] = (), help: str | None = None):
        return self.registry.counter(name, labels, help=help)

    def gauge(self, name: str, labels: tuple[str, ...] = (), help: str | None = None):
        return self.registry.gauge(name, labels, help=help)

    def histogram(self, name: str, labels: tuple[str, ...] = (), help: str | None = None):
        return self.registry.histogram(name, labels, help=help)

    def component(self, name: str) -> MetricsRegistry:
        """Per-component child registry (oplog, shipper, replica-N, …)."""
        return self.registry.child(name)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """One merged, JSON-compatible dict of everything collected."""
        return {
            "enabled": True,
            "metrics": self.registry.snapshot(),
            "trace": self.tracer.snapshot(),
        }

    def to_prometheus(self, prefix: str = "repro") -> str:
        return self.registry.to_prometheus(prefix=prefix)

    def write_chrome_trace(self, path) -> None:
        self.tracer.write_chrome_trace(path)


class _NullMetric:
    """Accepts every record/inc/set and stores nothing."""

    __slots__ = ()

    def inc(self, amount: Any = 1) -> None:
        pass

    def dec(self, amount: Any = 1) -> None:
        pass

    def set(self, value: Any) -> None:
        pass

    def record(self, value: Any) -> None:
        pass

    def labels(self, **labels: Any) -> "_NullMetric":
        return self

    def snapshot(self) -> dict:
        return {}


_NULL_METRIC = _NullMetric()


class _NullRegistry:
    __slots__ = ()

    def counter(
        self, name: str, labels: tuple[str, ...] = (), help: str | None = None
    ) -> _NullMetric:
        return _NULL_METRIC

    gauge = counter
    histogram = counter

    def child(self, name: str) -> "_NullRegistry":
        return self

    def snapshot(self) -> dict:
        return {}

    def to_prometheus(self, prefix: str = "repro") -> str:
        return ""


class NullTelemetry:
    """The disabled recorder: constant-time no-ops everywhere.

    A process-wide singleton (:data:`NULL_TELEMETRY`); components hold
    it by default so instrumented code never branches on ``None``.
    """

    enabled = False

    def __init__(self) -> None:
        self.registry = _NullRegistry()
        self.tracer = NullTracer()

    def span(self, name: str, **args: Any) -> _NullSpanContext:
        return NULL_SPAN

    def current_span(self) -> None:
        return None

    trace_id = "0-0"

    def counter(
        self, name: str, labels: tuple[str, ...] = (), help: str | None = None
    ) -> _NullMetric:
        return _NULL_METRIC

    gauge = counter
    histogram = counter

    def component(self, name: str) -> _NullRegistry:
        return self.registry

    def snapshot(self) -> dict:
        return {"enabled": False}

    def to_prometheus(self, prefix: str = "repro") -> str:
        return ""

    def write_chrome_trace(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"traceEvents": [], "displayTimeUnit": "ms"}\n')


NULL_TELEMETRY = NullTelemetry()

#: Accepted values for ``StreamConfig.telemetry`` besides an instance.
TELEMETRY_SETTINGS = (None, False, True, "off", "on")


def make_telemetry(setting: Any) -> Telemetry | NullTelemetry:
    """Resolve a config value into a recorder.

    ``None``/``False``/``"off"`` → the shared :data:`NULL_TELEMETRY`;
    ``True``/``"on"`` → a fresh :class:`Telemetry`; an existing
    recorder instance (anything with an ``enabled`` attribute) passes
    through, which is how several services share one collection point.
    """
    if setting is None or setting is False or setting == "off":
        return NULL_TELEMETRY
    if setting is True or setting == "on":
        return Telemetry()
    if hasattr(setting, "enabled") and hasattr(setting, "span"):
        return setting
    raise ValueError(
        f"telemetry must be one of {TELEMETRY_SETTINGS} or a Telemetry "
        f"instance, got {setting!r}"
    )
