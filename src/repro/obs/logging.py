"""Structured logging: one JSON object per line, rate-limited, correlated.

A :class:`StructuredLogger` is the service-side answer to "what was the
system doing when the metric spiked?": every emitted line is a single
JSON object carrying the component, the event name, a level, monotonic
elapsed seconds since the logger started, the wall-clock timestamp, and
— when the call happens inside an open :class:`~repro.obs.tracing.Span`
— the recorder's ``trace`` id plus the active ``span``/``span_id``, so
log lines join against the Chrome trace and the ``span_seconds``
histograms without any side table.

Hot paths may log unconditionally because every logger sits behind a
token-bucket :class:`LogRateLimiter`: once the budget is exhausted,
lines are *counted* instead of written (``obs_dropped_logs_total`` on
the attached telemetry, plus a local counter), and the next line that
does get through carries ``dropped_since_last`` — suppression is
visible in-band, never silent.

A logger constructed with ``stream=None`` is disabled: ``log()`` is a
constant-time no-op returning ``False``, so components can hold a
logger unconditionally the same way they hold ``NULL_TELEMETRY``.

Clock domains: see :mod:`repro.obs` — ``ts`` is ``time.time()`` (wall,
cross-process), ``elapsed_s`` is ``time.monotonic()`` (never goes
backwards, meaningless across processes).
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, TextIO

from .telemetry import NULL_TELEMETRY

LEVELS = ("debug", "info", "warning", "error")


class LogRateLimiter:
    """Token bucket: ``rate`` lines/second sustained, ``burst`` at once.

    ``allow()`` consumes one token when available. A non-positive rate
    disables limiting entirely (every call allowed) — the right setting
    for tests that assert on exact line counts.
    """

    def __init__(
        self,
        rate: float = 200.0,
        burst: int = 50,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = rate
        self.burst = max(1, burst)
        self.clock = clock
        self._tokens = float(self.burst)
        self._last = clock()

    def allow(self) -> bool:
        if self.rate <= 0:
            return True
        now = self.clock()
        self._tokens = min(
            float(self.burst), self._tokens + (now - self._last) * self.rate
        )
        self._last = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


class StructuredLogger:
    """Rate-limited JSON-lines logger for one named component.

    Parameters
    ----------
    component:
        Stamped into every line; one logger per pipeline stage
        (``"stream"``, ``"replica-0"``, ``"obs.server"``…).
    stream:
        Writable text stream (``sys.stderr``, an open file…); ``None``
        disables the logger (constant-time no-op).
    telemetry:
        Recorder the drop counter lands in, and the source of span/trace
        correlation ids. Defaults to the no-op singleton (lines still
        emit; they just carry no correlation ids).
    limiter:
        Token bucket shared across levels; ``None`` builds the default
        (200 lines/s, burst 50). ``error``-level lines bypass it —
        failures must never be the thing rate limiting hides.
    """

    def __init__(
        self,
        component: str,
        stream: TextIO | None = None,
        *,
        telemetry=NULL_TELEMETRY,
        limiter: LogRateLimiter | None = None,
        clock: Callable[[], float] = time.time,
        mono: Callable[[], float] = time.monotonic,
    ) -> None:
        self.component = component
        self.stream = stream
        self.telemetry = telemetry
        self.limiter = limiter if limiter is not None else LogRateLimiter()
        self.clock = clock
        self.mono = mono
        self.epoch = mono()
        self.lines_emitted = 0
        self.lines_dropped = 0
        self._dropped_since_last = 0
        self._dropped_counter = telemetry.counter(
            "obs_dropped_logs_total",
            labels=("component",),
            help="Structured log lines suppressed by the rate limiter",
        )

    @property
    def enabled(self) -> bool:
        return self.stream is not None

    # ------------------------------------------------------------------
    def log(self, event: str, level: str = "info", **fields: Any) -> bool:
        """Emit one JSON line; returns whether it was written.

        ``fields`` are merged into the object as-is (values must be
        JSON-encodable; anything else is stringified). Dropped lines are
        counted, and the next emitted line reports the count.
        """
        if self.stream is None:
            return False
        if level not in LEVELS:
            raise ValueError(f"level must be one of {LEVELS}, got {level!r}")
        if level != "error" and not self.limiter.allow():
            self.lines_dropped += 1
            self._dropped_since_last += 1
            self._dropped_counter.labels(component=self.component).inc()
            return False
        record: dict[str, Any] = {
            "ts": self.clock(),
            "elapsed_s": self.mono() - self.epoch,
            "level": level,
            "component": self.component,
            "event": event,
        }
        span = self.telemetry.current_span()
        if span is not None:
            record["trace"] = self.telemetry.trace_id
            record["span"] = span.name
            record["span_id"] = span.span_id
        if self._dropped_since_last:
            record["dropped_since_last"] = self._dropped_since_last
            self._dropped_since_last = 0
        for key, value in fields.items():
            record[key] = value if _json_encodable(value) else str(value)
        try:
            self.stream.write(json.dumps(record) + "\n")
        except (ValueError, OSError):
            # A closed/broken stream must never take the service down;
            # the line is lost, which the drop counter records.
            self.lines_dropped += 1
            self._dropped_counter.labels(component=self.component).inc()
            return False
        self.lines_emitted += 1
        return True

    def debug(self, event: str, **fields: Any) -> bool:
        return self.log(event, level="debug", **fields)

    def info(self, event: str, **fields: Any) -> bool:
        return self.log(event, level="info", **fields)

    def warning(self, event: str, **fields: Any) -> bool:
        return self.log(event, level="warning", **fields)

    def error(self, event: str, **fields: Any) -> bool:
        return self.log(event, level="error", **fields)

    def child(self, component: str) -> "StructuredLogger":
        """A logger for a sub-component sharing this stream and limiter."""
        return StructuredLogger(
            component,
            self.stream,
            telemetry=self.telemetry,
            limiter=self.limiter,
            clock=self.clock,
            mono=self.mono,
        )


def _json_encodable(value: Any) -> bool:
    if value is None or isinstance(value, (bool, int, float, str)):
        return True
    if isinstance(value, (list, tuple)):
        return all(_json_encodable(item) for item in value)
    if isinstance(value, dict):
        return all(
            isinstance(key, str) and _json_encodable(item)
            for key, item in value.items()
        )
    return False


#: Disabled logger components hold by default (mirrors NULL_TELEMETRY).
NULL_LOGGER = StructuredLogger("null", stream=None)
