"""repro.obs — unified, dependency-free observability.

Five layers, one import:

* :mod:`repro.obs.metrics` — labeled :class:`Counter` / :class:`Gauge` /
  log-bucketed :class:`Histogram` (streaming p50/p95/p99) primitives in
  a composable :class:`MetricsRegistry`, with a Prometheus-style text
  exposition (``# HELP``/``# TYPE`` headers, escaped label values), a
  generic snapshot→exposition flattener, and JSON artifact writers;
* :mod:`repro.obs.tracing` — the span API (``with tracer.span(...)``),
  a bounded ring buffer of recent spans with an eviction counter, and a
  Chrome-trace-event (`chrome://tracing`) JSON exporter;
* :mod:`repro.obs.telemetry` — the :class:`Telemetry` bundle services
  thread through their layers (every span is a trace event *and* a
  latency-histogram sample), plus the zero-cost :data:`NULL_TELEMETRY`
  recorder selected when telemetry is off;
* :mod:`repro.obs.logging` — :class:`StructuredLogger`: one JSON object
  per line, span/trace correlation ids, token-bucket rate limiting with
  in-band drop accounting;
* :mod:`repro.obs.health` + :mod:`repro.obs.server` — the operational
  surface: a :class:`HealthRegistry` of named component checks
  aggregated to ok/degraded/failing, served with metrics and traces by
  :class:`ObsServer` (stdlib ``ThreadingHTTPServer``) at ``/metrics``,
  ``/metrics.json``, ``/traces``, ``/healthz`` and ``/readyz``.

Enable on a service with ``StreamConfig(telemetry="on")`` and expose it
with ``StreamConfig(obs_server="127.0.0.1:0")``; share one collection
point across a primary/replica topology by passing the same
:class:`Telemetry` instance to every config.

Clock domains
-------------

Three clocks appear across the observability surface; each field uses
exactly one, chosen by what it must survive:

* ``time.time()`` — wall clock, the only clock meaningful **across
  processes**. Used for ``Operation.ingest_ts``, segment/heartbeat
  ``shipped_at`` and the watermark fields derived from them
  (``staleness_s``, ``visibility_lag_s``, ``e2e_visibility_seconds``),
  and the ``ts`` field of structured log lines. Subject to NTP steps
  and host skew, so every consumer clamps derived deltas at ``>= 0``
  rather than reporting time running backwards.
* ``time.monotonic()`` — never goes backwards, **meaningless across
  processes**. Used where skew must not produce nonsense: a replica's
  ``applied_age_s`` ("how long since *this process* applied
  something"), the log rate limiter's token bucket, and a logger's
  ``elapsed_s``.
* ``time.perf_counter()`` — highest-resolution monotonic clock, used
  only inside the tracer for span durations; exported trace timestamps
  are offsets from the tracer's own epoch, never absolute times.

Rule of thumb: if a number crosses a process boundary it is wall time
and readers clamp; if it only compares a process with its own past it
is monotonic.
"""

from .health import (
    CheckResult,
    HealthRegistry,
    check_backlog,
    check_checkpoints,
    check_oplog,
    check_replica_lag,
    degraded,
    failing,
    ok,
)
from .logging import NULL_LOGGER, LogRateLimiter, StructuredLogger
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    snapshot_to_prometheus,
    write_metrics_json,
    write_metrics_prometheus,
)
from .server import ObsServer, parse_listen
from .telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    TELEMETRY_SETTINGS,
    make_telemetry,
)
from .tracing import NullTracer, Span, Tracer

__all__ = [
    "CheckResult",
    "Counter",
    "Gauge",
    "HealthRegistry",
    "Histogram",
    "LogRateLimiter",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_LOGGER",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "NullTracer",
    "ObsServer",
    "Span",
    "StructuredLogger",
    "TELEMETRY_SETTINGS",
    "Telemetry",
    "Tracer",
    "check_backlog",
    "check_checkpoints",
    "check_oplog",
    "check_replica_lag",
    "degraded",
    "failing",
    "make_telemetry",
    "ok",
    "parse_listen",
    "snapshot_to_prometheus",
    "write_metrics_json",
    "write_metrics_prometheus",
]
