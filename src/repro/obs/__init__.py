"""repro.obs — unified, dependency-free observability.

Three layers, one import:

* :mod:`repro.obs.metrics` — labeled :class:`Counter` / :class:`Gauge` /
  log-bucketed :class:`Histogram` (streaming p50/p95/p99) primitives in
  a composable :class:`MetricsRegistry`, with a Prometheus-style text
  exposition, a generic snapshot→exposition flattener, and JSON
  artifact writers;
* :mod:`repro.obs.tracing` — the span API (``with tracer.span(...)``),
  a bounded ring buffer of recent spans, and a Chrome-trace-event
  (`chrome://tracing`) JSON exporter;
* :mod:`repro.obs.telemetry` — the :class:`Telemetry` bundle services
  thread through their layers (every span is a trace event *and* a
  latency-histogram sample), plus the zero-cost :data:`NULL_TELEMETRY`
  recorder selected when telemetry is off.

Enable on a service with ``StreamConfig(telemetry="on")``; share one
collection point across a primary/replica topology by passing the same
:class:`Telemetry` instance to every config.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    snapshot_to_prometheus,
    write_metrics_json,
    write_metrics_prometheus,
)
from .telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    TELEMETRY_SETTINGS,
    make_telemetry,
)
from .tracing import NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "NullTracer",
    "Span",
    "TELEMETRY_SETTINGS",
    "Telemetry",
    "Tracer",
    "make_telemetry",
    "snapshot_to_prometheus",
    "write_metrics_json",
    "write_metrics_prometheus",
]
