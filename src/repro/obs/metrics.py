"""Metric primitives: counters, gauges, log-bucketed histograms, labels.

Dependency-free building blocks for service telemetry. The design
follows the Prometheus data model — a *metric* is a named series with
optional labels; a *registry* owns metrics and composes child
registries — but everything here is plain in-process Python: recording
is a dict update, snapshots are JSON-compatible dicts, and the text
exposition is generated on demand.

Histograms are log-bucketed (geometric bucket bounds), so streaming
p50/p95/p99 estimates are available at O(1) record cost with a bounded
relative error of ``growth - 1`` (≈5% at the default growth of 1.05),
independent of the value range — the right trade for latency series
that span nanoseconds to minutes.
"""

from __future__ import annotations

import json
import math
import re
from typing import Any, Callable, Iterator


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount

    def snapshot(self) -> int | float:
        return self.value


class Gauge:
    """A value that goes up and down (last write wins)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Streaming distribution summary over geometric (log) buckets.

    ``record(v)`` increments the bucket whose geometric bound covers
    ``v``; :meth:`percentile` walks the cumulative bucket counts and
    answers with the bucket's geometric midpoint, clamped to the exact
    observed ``[min, max]``. Values at or below ``floor`` share the
    underflow bucket (sub-nanosecond latencies are noise, not signal).
    """

    __slots__ = ("growth", "floor", "_log_growth", "_buckets",
                 "count", "total", "minimum", "maximum", "last")
    kind = "histogram"

    def __init__(self, growth: float = 1.05, floor: float = 1e-9) -> None:
        if growth <= 1.0:
            raise ValueError("growth must be > 1")
        self.growth = growth
        self.floor = floor
        self._log_growth = math.log(growth)
        self._buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = 0.0
        self.last = 0.0

    # ------------------------------------------------------------------
    def _index(self, value: float) -> int:
        if value <= self.floor:
            return 0
        return 1 + math.floor(math.log(value / self.floor) / self._log_growth)

    def _midpoint(self, index: int) -> float:
        if index == 0:
            return self.floor
        # Geometric midpoint of [floor·g^(i-1), floor·g^i].
        return self.floor * self.growth ** (index - 0.5)

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        self.last = value
        index = self._index(value)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``q`` in [0, 1]) of the series."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        # Nearest-rank over the cumulative bucket counts.
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                estimate = self._midpoint(index)
                return min(max(estimate, self.minimum), self.maximum)
        return self.maximum

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum,
            "last": self.last,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }


_METRIC_KINDS: dict[str, Callable[[], Any]] = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": Histogram,
}


class MetricFamily:
    """A named metric with label dimensions; one child per label set.

    ``family.labels(shard="0").inc()`` — children are created on first
    touch and keyed by the label *values* in declaration order, so the
    same label set always addresses the same child.
    """

    def __init__(self, name: str, kind: str, label_names: tuple[str, ...]) -> None:
        self.name = name
        self.kind = kind
        self.label_names = label_names
        self._factory = _METRIC_KINDS[kind]
        self._children: dict[tuple[str, ...], Any] = {}

    def labels(self, **labels: Any):
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name} takes labels {self.label_names}, got {tuple(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._factory()
        return child

    def series(self) -> Iterator[tuple[dict[str, str], Any]]:
        for key, child in self._children.items():
            yield dict(zip(self.label_names, key)), child

    def snapshot(self) -> dict:
        return {
            ",".join(f"{n}={v}" for n, v in zip(self.label_names, key)): child.snapshot()
            for key, child in sorted(self._children.items())
        }


class MetricsRegistry:
    """Named metrics plus child registries, snapshotted as one dict.

    Per-component registries (stream, oplog, shipper, one per replica…)
    register under a parent via :meth:`child`; ``snapshot()`` nests
    them, and :meth:`to_prometheus` flattens the whole tree into a
    Prometheus-style text exposition with the component path as a
    metric-name prefix.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Any] = {}
        self._children: dict[str, "MetricsRegistry"] = {}
        self._help: dict[str, str] = {}

    # ------------------------------------------------------------------
    def _named(self, name: str, kind: str, labels: tuple[str, ...], help: str | None):
        if help is not None:
            self._help.setdefault(name, help)
        metric = self._metrics.get(name)
        if metric is None:
            if labels:
                metric = MetricFamily(name, kind, tuple(labels))
            else:
                metric = _METRIC_KINDS[kind]()
            self._metrics[name] = metric
            return metric
        want_family = bool(labels)
        is_family = isinstance(metric, MetricFamily)
        if metric.kind != kind or want_family != is_family or (
            is_family and metric.label_names != tuple(labels)
        ):
            raise ValueError(f"metric {name!r} already registered with a different shape")
        return metric

    def counter(self, name: str, labels: tuple[str, ...] = (), help: str | None = None):
        return self._named(name, "counter", labels, help)

    def gauge(self, name: str, labels: tuple[str, ...] = (), help: str | None = None):
        return self._named(name, "gauge", labels, help)

    def histogram(self, name: str, labels: tuple[str, ...] = (), help: str | None = None):
        return self._named(name, "histogram", labels, help)

    def child(self, name: str) -> "MetricsRegistry":
        """Get-or-create the named component sub-registry."""
        registry = self._children.get(name)
        if registry is None:
            registry = self._children[name] = MetricsRegistry()
        return registry

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        out: dict[str, Any] = {
            name: metric.snapshot() for name, metric in sorted(self._metrics.items())
        }
        for name, registry in sorted(self._children.items()):
            out[name] = registry.snapshot()
        return out

    def to_prometheus(self, prefix: str = "repro") -> str:
        """Prometheus text exposition of every metric in the tree."""
        lines: list[str] = []
        self._expose(prefix, lines)
        return "\n".join(lines) + "\n" if lines else ""

    def _expose(self, prefix: str, lines: list[str]) -> None:
        for name, metric in sorted(self._metrics.items()):
            full = f"{prefix}_{_sanitize(name)}"
            help_text = self._help.get(name, name.replace("_", " "))
            lines.append(f"# HELP {full} {_escape_help(help_text)}")
            lines.append(f"# TYPE {full} {_prom_type(metric.kind)}")
            if isinstance(metric, MetricFamily):
                for labels, child in sorted(
                    metric.series(), key=lambda pair: sorted(pair[0].items())
                ):
                    _expose_metric(full, labels, child, lines)
            else:
                _expose_metric(full, {}, metric, lines)
        for name, registry in sorted(self._children.items()):
            registry._expose(f"{prefix}_{_sanitize(name)}", lines)


def _prom_type(kind: str) -> str:
    return "summary" if kind == "histogram" else kind


def _escape_label(value: str) -> str:
    """Escape a label value per the Prometheus text-format spec.

    Backslash first — escaping it last would re-escape the escapes the
    other two rules just introduced.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    """HELP lines escape backslash and newline (but not quotes)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _label_str(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{_sanitize(k)}="{_escape_label(str(v))}"' for k, v in sorted(labels.items())
    )
    return "{" + body + "}"


def _expose_metric(full: str, labels: dict[str, str], metric, lines: list[str]) -> None:
    if isinstance(metric, Histogram):
        for q in (0.5, 0.95, 0.99):
            quantile_labels = dict(labels, quantile=str(q))
            lines.append(f"{full}{_label_str(quantile_labels)} {metric.percentile(q)}")
        lines.append(f"{full}_sum{_label_str(labels)} {metric.total}")
        lines.append(f"{full}_count{_label_str(labels)} {metric.count}")
    else:
        lines.append(f"{full}{_label_str(labels)} {metric.value}")


_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")


def _sanitize(name: str) -> str:
    return _SANITIZE.sub("_", name)


# ---------------------------------------------------------------------------
# Snapshot flattener: any stats() dict → Prometheus-style exposition
# ---------------------------------------------------------------------------
def snapshot_to_prometheus(snapshot: dict, prefix: str = "repro") -> str:
    """Flatten an arbitrary nested stats()/snapshot() dict to text metrics.

    Every numeric leaf becomes one ``path_to_leaf value`` sample (bools
    as 0/1); list elements get an ``index`` label; strings and ``None``
    are skipped. Samples sharing a flattened name are grouped under one
    ``# HELP`` / ``# TYPE <name> untyped`` header pair (the text format
    requires all samples of a metric to be contiguous below its
    metadata). This is the bridge that exports the *existing* service
    snapshots — not just obs-native registries — to a scrape endpoint or
    a ``metrics.prom`` artifact.
    """
    samples: dict[str, list[str]] = {}
    _flatten(prefix, {}, snapshot, samples)
    lines: list[str] = []
    for name, entries in samples.items():
        lines.append(f"# HELP {name} {_escape_help(name.replace('_', ' '))}")
        lines.append(f"# TYPE {name} untyped")
        lines.extend(entries)
    return "\n".join(lines) + "\n" if lines else ""


def _flatten(
    path: str, labels: dict[str, str], node: Any, samples: dict[str, list[str]]
) -> None:
    if isinstance(node, bool):
        samples.setdefault(path, []).append(f"{path}{_label_str(labels)} {int(node)}")
    elif isinstance(node, (int, float)):
        samples.setdefault(path, []).append(f"{path}{_label_str(labels)} {node}")
    elif isinstance(node, dict):
        for key, value in node.items():
            _flatten(f"{path}_{_sanitize(str(key))}", labels, value, samples)
    elif isinstance(node, (list, tuple)):
        for index, value in enumerate(node):
            _flatten(path, dict(labels, index=str(index)), value, samples)
    # strings / None: not a metric


def write_metrics_json(path, snapshot: dict) -> None:
    """Write a snapshot dict as a JSON artifact (benchmark/CI uploads)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")


def write_metrics_prometheus(path, snapshot: dict, prefix: str = "repro") -> None:
    """Write a snapshot dict as a ``.prom`` text-exposition artifact."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(snapshot_to_prometheus(snapshot, prefix=prefix))
