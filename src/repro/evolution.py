"""Cluster-evolution operations and the evolution log (§4).

The paper represents *all* clustering change as sequences of two
primitive operations over at most two clusters each:

* **merge evolution** — two clusters become one (n-way merges decompose
  into n−1 pairwise merges, §4.1);
* **split evolution** — one cluster becomes two (a *move* is a split
  followed by a merge).

Steps are recorded by member sets, not by cluster ids, because ids are
local to one clustering instance while the evolution history must stay
meaningful across rounds and replays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union


@dataclass(frozen=True)
class MergeOp:
    """Two clusters merged into one."""

    left: frozenset[int]
    right: frozenset[int]

    def __post_init__(self) -> None:
        if not self.left or not self.right:
            raise ValueError("merge sides must be non-empty")
        if self.left & self.right:
            raise ValueError("merge sides must be disjoint")

    @property
    def result(self) -> frozenset[int]:
        return self.left | self.right

    def touched_objects(self) -> frozenset[int]:
        return self.result

    def involves(self, objects: set[int]) -> bool:
        """True when the op touches any of the given objects."""
        return bool(self.left & objects) or bool(self.right & objects)


@dataclass(frozen=True)
class SplitOp:
    """One cluster split into ``part`` and the remainder."""

    cluster: frozenset[int]
    part: frozenset[int]

    def __post_init__(self) -> None:
        if not self.part or not self.part < self.cluster:
            raise ValueError("part must be a non-empty proper subset of cluster")

    @property
    def remainder(self) -> frozenset[int]:
        return self.cluster - self.part

    def touched_objects(self) -> frozenset[int]:
        return self.cluster

    def involves(self, objects: set[int]) -> bool:
        return bool(self.cluster & objects)


EvolutionOp = Union[MergeOp, SplitOp]


@dataclass
class EvolutionLog:
    """Ordered record of evolution operations from one clustering run.

    From-scratch batch runs append every applied step (§4.2); the
    cross-round transformation algorithm (§4.3) produces one of these
    describing only the old→new difference.
    """

    steps: list[EvolutionOp] = field(default_factory=list)

    def append(self, op: EvolutionOp) -> None:
        self.steps.append(op)

    def record_merge(self, left: frozenset[int] | set[int], right: frozenset[int] | set[int]) -> MergeOp:
        op = MergeOp(frozenset(left), frozenset(right))
        self.steps.append(op)
        return op

    def record_split(self, cluster: frozenset[int] | set[int], part: frozenset[int] | set[int]) -> SplitOp:
        op = SplitOp(frozenset(cluster), frozenset(part))
        self.steps.append(op)
        return op

    def merges(self) -> Iterator[MergeOp]:
        return (op for op in self.steps if isinstance(op, MergeOp))

    def splits(self) -> Iterator[SplitOp]:
        return (op for op in self.steps if isinstance(op, SplitOp))

    def touching(self, objects: set[int]) -> "EvolutionLog":
        """Sub-log of steps that touch any of the given objects (Phase 1, §4.3)."""
        return EvolutionLog([op for op in self.steps if op.involves(objects)])

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self) -> Iterator[EvolutionOp]:
        return iter(self.steps)

    def __bool__(self) -> bool:
        return bool(self.steps)
