"""repro — a full reproduction of DynamicC (EDBT 2022).

DynamicC ("Efficient Dynamic Clustering: Capturing Patterns from
Historical Cluster Evolution", Gu, Kargar & Nawab) augments an
arbitrary batch clustering algorithm with two small classifiers that
learn, from historical cluster evolution, which clusters are about to
merge or split — so high-velocity add/remove/update workloads can be
re-clustered without re-running the batch algorithm.

Public API tour
---------------
* :class:`repro.core.DynamicC` — the system (training + prediction).
* :mod:`repro.clustering` — clustering state, objectives (correlation,
  k-means, DB-index), batch algorithms (Hill-climbing, DBSCAN, Lloyd)
  and the Naive/Greedy baselines.
* :mod:`repro.similarity` — similarity measures, blocking indexes, and
  the dynamic similarity graph.
* :mod:`repro.ml` — from-scratch logistic regression / SVM / decision
  tree (the Table 4 model families).
* :mod:`repro.data` — the five Table 1 dataset generators and the
  dynamic workload driver (with the ``event_stream()`` adapter feeding
  the service layer).
* :mod:`repro.eval` — pair-counting F1, purity metrics, and the
  experiment harness.
* :mod:`repro.stream` — the durable, sharded streaming service layer:
  operation log (WAL, JSONL or sqlite backed), micro-batcher,
  hash-routed engine pool, checkpoint/recovery, metrics, and the
  :class:`~repro.stream.ClusteringService` façade.
* :mod:`repro.replica` — replication on top of the log: oplog shipping
  over pluggable transports, read replicas with explicit lag, and the
  :class:`~repro.replica.ReplicatedClusteringService` primary/replica
  façade with follower→primary failover.
* :mod:`repro.serve` — **the public front door**: multi-tenant
  namespaces behind one :class:`~repro.serve.Service` — per-tenant
  engine pools over a shared tenant-stamped log, admission quotas,
  LRU activation, tenant-filtered replicas, and one consolidated
  :class:`~repro.serve.ServeConfig`. The older per-layer façades keep
  working with a ``DeprecationWarning``.
"""

from repro.clustering import Clustering
from repro.clustering.baselines import GreedyIncremental, NaiveIncremental
from repro.clustering.batch import DBSCAN, HillClimbing, LloydKMeans
from repro.clustering.objectives import (
    CorrelationObjective,
    DBIndexObjective,
    KMeansObjective,
    ObjectiveFunction,
)
from repro.core import (
    DynamicC,
    DynamicCConfig,
    DynamicCModel,
    make_dynamic_dbscan,
)
from repro.data import build_workload
from repro.errors import (
    ConfigError,
    DegradedError,
    DurabilityError,
    QuotaExceeded,
    ServeError,
    UnknownTenantError,
)
from repro.faults import CircuitBreaker, ErrorInjector, FaultInjector, RetryPolicy
from repro.replica import ReadReplica, ReplicatedClusteringService
from repro.serve import ServeConfig, Service, TenantHandle, TenantManager
from repro.similarity import SimilarityGraph
from repro.stream import ClusteringService, Operation, StreamConfig

__version__ = "1.4.0"

__all__ = [
    "DBSCAN",
    "Clustering",
    "CircuitBreaker",
    "ClusteringService",
    "ConfigError",
    "CorrelationObjective",
    "DBIndexObjective",
    "DegradedError",
    "DurabilityError",
    "DynamicC",
    "DynamicCConfig",
    "DynamicCModel",
    "ErrorInjector",
    "FaultInjector",
    "GreedyIncremental",
    "HillClimbing",
    "KMeansObjective",
    "LloydKMeans",
    "NaiveIncremental",
    "ObjectiveFunction",
    "Operation",
    "QuotaExceeded",
    "ReadReplica",
    "ReplicatedClusteringService",
    "RetryPolicy",
    "ServeConfig",
    "ServeError",
    "Service",
    "SimilarityGraph",
    "StreamConfig",
    "TenantHandle",
    "TenantManager",
    "UnknownTenantError",
    "build_workload",
    "make_dynamic_dbscan",
    "__version__",
]
