"""Classification metrics (§5.4: accuracy, precision, recall)."""

from __future__ import annotations

import numpy as np


def confusion_matrix(y_true, y_pred) -> np.ndarray:
    """2×2 matrix ``M[actual][predicted]`` for binary labels.

    The layout matches Figure 3 of the paper: rows are actual classes,
    columns are predicted classes.
    """
    true = np.asarray(y_true, dtype=int)
    pred = np.asarray(y_pred, dtype=int)
    if true.shape != pred.shape:
        raise ValueError("y_true and y_pred length mismatch")
    matrix = np.zeros((2, 2), dtype=int)
    for actual, predicted in zip(true, pred):
        matrix[actual][predicted] += 1
    return matrix


def accuracy(y_true, y_pred) -> float:
    """Fraction of correct predictions."""
    matrix = confusion_matrix(y_true, y_pred)
    total = matrix.sum()
    return float(matrix.trace() / total) if total else 0.0


def precision(y_true, y_pred) -> float:
    """TP / (TP + FP); 0 when nothing is predicted positive."""
    matrix = confusion_matrix(y_true, y_pred)
    predicted_positive = matrix[0][1] + matrix[1][1]
    return float(matrix[1][1] / predicted_positive) if predicted_positive else 0.0


def recall(y_true, y_pred) -> float:
    """TP / (TP + FN); 1 when there are no actual positives.

    §5.4 argues recall is *the* metric for DynamicC: missed positives
    are unrecoverable while false positives are filtered by the
    objective-function verification. With no actual positives nothing
    can be missed, hence 1.
    """
    matrix = confusion_matrix(y_true, y_pred)
    actual_positive = matrix[1][0] + matrix[1][1]
    return float(matrix[1][1] / actual_positive) if actual_positive else 1.0


def f1_score(y_true, y_pred) -> float:
    """Harmonic mean of precision and recall."""
    p = precision(y_true, y_pred)
    r = recall(y_true, y_pred)
    return 2 * p * r / (p + r) if (p + r) else 0.0
