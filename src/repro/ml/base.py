"""Binary classifier interface for DynamicC's merge/split models.

scikit-learn is the paper's model library (§7.1) but is not available
offline, so :mod:`repro.ml` implements the three evaluated model
families (logistic regression, SVM, decision tree — Table 4) from
scratch on numpy. The interface mirrors the sklearn conventions the
rest of the system expects: ``fit(X, y)``, ``predict_proba(X)`` giving
``P(label = 1)``, and ``predict(X, threshold)`` implementing Eq. (2) —
label 1 iff ``P ≥ θ``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


def as_2d(X) -> np.ndarray:
    """Coerce input into a 2-D float array (single samples get a row)."""
    array = np.asarray(X, dtype=float)
    if array.ndim == 1:
        array = array.reshape(1, -1)
    if array.ndim != 2:
        raise ValueError(f"expected 1-D or 2-D input, got shape {array.shape}")
    return array


def as_labels(y) -> np.ndarray:
    """Coerce labels into a 0/1 int array."""
    labels = np.asarray(y)
    unique = set(np.unique(labels).tolist())
    if not unique <= {0, 1}:
        raise ValueError(f"labels must be binary 0/1, got {sorted(unique)}")
    return labels.astype(int)


class ConstantClassifier:
    """Predicts a fixed probability regardless of input.

    Used when one of DynamicC's models has no training signal at all —
    e.g. a workload whose batch evolution contains no splits: the right
    prediction is "never split" until split evolution is observed.
    """

    name = "constant"

    def __init__(self, probability: float = 0.0) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self.probability = probability

    def fit(self, X, y) -> "ConstantClassifier":
        return self

    def predict_proba(self, X) -> np.ndarray:
        return np.full(len(as_2d(X)), self.probability)

    def predict(self, X, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(X) >= threshold).astype(int)


class BinaryClassifier(ABC):
    """A probabilistic binary classifier (Eq. 2 of the paper)."""

    name: str = "classifier"

    @abstractmethod
    def fit(self, X, y) -> "BinaryClassifier":
        """Train on samples ``X`` (n × d) with 0/1 labels ``y``."""

    @abstractmethod
    def predict_proba(self, X) -> np.ndarray:
        """``P(label = 1)`` per sample, shape (n,)."""

    def predict(self, X, threshold: float = 0.5) -> np.ndarray:
        """Label 1 iff ``P(label = 1) ≥ threshold`` (Eq. 2)."""
        return (self.predict_proba(X) >= threshold).astype(int)

    def predict_one(self, x, threshold: float = 0.5) -> int:
        return int(self.predict(as_2d(x), threshold)[0])

    def proba_one(self, x) -> float:
        return float(self.predict_proba(as_2d(x))[0])
