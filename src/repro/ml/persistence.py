"""Model serialisation (JSON) for the ML substrate.

DynamicC's deployment story is "train once while the batch algorithm
runs, then serve" — which needs the trained Merge/Split models to
survive process restarts. Models serialise to plain JSON (no pickle:
the files are safe to share and diff).
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from .base import BinaryClassifier, ConstantClassifier
from .logistic import LogisticRegressionClassifier
from .scaler import StandardScaler
from .svm import LinearSVMClassifier
from .tree import DecisionTreeClassifier, _Node


def _scaler_to_dict(scaler: StandardScaler) -> dict:
    return {
        "mean": scaler.mean_.tolist() if scaler.mean_ is not None else None,
        "scale": scaler.scale_.tolist() if scaler.scale_ is not None else None,
    }


def _scaler_from_dict(data: dict) -> StandardScaler:
    scaler = StandardScaler()
    if data["mean"] is not None:
        scaler.mean_ = np.asarray(data["mean"], dtype=float)
        scaler.scale_ = np.asarray(data["scale"], dtype=float)
    return scaler


def _tree_to_dict(node: _Node) -> dict:
    data = {"probability": node.probability}
    if not node.is_leaf:
        data.update(
            feature=node.feature,
            threshold=node.threshold,
            left=_tree_to_dict(node.left),
            right=_tree_to_dict(node.right),
        )
    return data


def _tree_from_dict(data: dict) -> _Node:
    node = _Node(probability=data["probability"])
    if "feature" in data:
        node.feature = data["feature"]
        node.threshold = data["threshold"]
        node.left = _tree_from_dict(data["left"])
        node.right = _tree_from_dict(data["right"])
    return node


def model_to_dict(model) -> dict:
    """Serialise a fitted classifier to a JSON-compatible dict."""
    if isinstance(model, LogisticRegressionClassifier):
        if model.coef_ is None:
            raise ValueError("model is not fitted")
        return {
            "kind": "logistic-regression",
            "coef": model.coef_.tolist(),
            "intercept": model.intercept_,
            "scaler": _scaler_to_dict(model._scaler),
        }
    if isinstance(model, LinearSVMClassifier):
        if model.coef_ is None:
            raise ValueError("model is not fitted")
        return {
            "kind": "linear-svm",
            "coef": model.coef_.tolist(),
            "intercept": model.intercept_,
            "platt_a": model._platt_a,
            "platt_b": model._platt_b,
            "scaler": _scaler_to_dict(model._scaler),
        }
    if isinstance(model, DecisionTreeClassifier):
        if model._root is None:
            raise ValueError("model is not fitted")
        return {"kind": "decision-tree", "root": _tree_to_dict(model._root)}
    if isinstance(model, ConstantClassifier):
        return {"kind": "constant", "probability": model.probability}
    raise TypeError(f"cannot serialise {type(model).__name__}")


def model_from_dict(data: dict):
    """Rebuild a classifier serialised by :func:`model_to_dict`."""
    kind = data["kind"]
    if kind == "logistic-regression":
        model = LogisticRegressionClassifier()
        model.coef_ = np.asarray(data["coef"], dtype=float)
        model.intercept_ = float(data["intercept"])
        model._scaler = _scaler_from_dict(data["scaler"])
        return model
    if kind == "linear-svm":
        model = LinearSVMClassifier()
        model.coef_ = np.asarray(data["coef"], dtype=float)
        model.intercept_ = float(data["intercept"])
        model._platt_a = float(data["platt_a"])
        model._platt_b = float(data["platt_b"])
        model._scaler = _scaler_from_dict(data["scaler"])
        return model
    if kind == "decision-tree":
        model = DecisionTreeClassifier()
        model._root = _tree_from_dict(data["root"])
        return model
    if kind == "constant":
        return ConstantClassifier(data["probability"])
    raise ValueError(f"unknown model kind {kind!r}")


def save_model(model, path) -> None:
    """Write a fitted classifier to a JSON file."""
    pathlib.Path(path).write_text(json.dumps(model_to_dict(model)))


def load_model(path):
    """Load a classifier written by :func:`save_model`."""
    return model_from_dict(json.loads(pathlib.Path(path).read_text()))


# ---------------------------------------------------------------------------
# DynamicC model bundles (both classifiers + their θ thresholds)
# ---------------------------------------------------------------------------


def bundle_to_dict(bundle) -> dict:
    """Serialise a trained :class:`~repro.core.model.DynamicCModel`.

    Duck-typed (the bundle class lives in :mod:`repro.core`, which
    imports this module) — anything exposing ``merge_model`` /
    ``split_model`` / the two θs works.
    """
    if bundle.merge_model is None or bundle.split_model is None:
        raise ValueError("model bundle is not trained")
    return {
        "merge_model": model_to_dict(bundle.merge_model),
        "split_model": model_to_dict(bundle.split_model),
        "merge_theta": bundle.merge_theta,
        "split_theta": bundle.split_theta,
    }


def bundle_from_dict(data: dict, config=None):
    """Rebuild a :class:`~repro.core.model.DynamicCModel` bundle."""
    from repro.core.model import DynamicCModel  # deferred: core imports ml

    bundle = DynamicCModel(config=config)
    bundle.merge_model = model_from_dict(data["merge_model"])
    bundle.split_model = model_from_dict(data["split_model"])
    bundle.merge_theta = float(data["merge_theta"])
    bundle.split_theta = float(data["split_theta"])
    return bundle
