"""Linear SVM (Pegasos) with sigmoid probability calibration.

Table 4 compares DynamicC's default logistic regression against an SVM.
DynamicC needs ``P(C = 1)`` for its θ-thresholding (Eq. 2), so raw SVM
margins are passed through a Platt-style sigmoid fitted on the training
margins — the standard way to get probabilities out of an SVM.
"""

from __future__ import annotations

import numpy as np

from .base import BinaryClassifier, as_2d, as_labels
from .scaler import StandardScaler


class LinearSVMClassifier(BinaryClassifier):
    """Hinge-loss linear classifier trained with the Pegasos subgradient method.

    Parameters
    ----------
    regularization:
        The λ of Pegasos (weight on ‖w‖²/2); smaller fits harder.
    epochs:
        Passes over the training data.
    seed:
        Shuffling seed (Pegasos samples stochastically).
    """

    name = "linear-svm"

    def __init__(
        self,
        regularization: float = 1e-2,
        epochs: int = 60,
        seed: int = 0,
    ) -> None:
        self.regularization = regularization
        self.epochs = epochs
        self.seed = seed
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self._scaler = StandardScaler()
        self._platt_a: float = -1.0
        self._platt_b: float = 0.0

    def fit(self, X, y) -> "LinearSVMClassifier":
        data = self._scaler.fit_transform(as_2d(X))
        labels = as_labels(y)
        if len(labels) != len(data):
            raise ValueError("X and y length mismatch")
        signs = labels * 2 - 1  # {0,1} -> {-1,+1}
        n, d = data.shape
        rng = np.random.default_rng(self.seed)

        weights = np.zeros(d)
        intercept = 0.0
        step = 0
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for i in order:
                step += 1
                eta = 1.0 / (self.regularization * step)
                margin = signs[i] * (data[i] @ weights + intercept)
                weights *= 1.0 - eta * self.regularization
                if margin < 1.0:
                    weights += eta * signs[i] * data[i]
                    intercept += eta * signs[i]
        self.coef_ = weights
        self.intercept_ = intercept
        self._fit_platt(data, labels)
        return self

    def _fit_platt(self, data: np.ndarray, labels: np.ndarray) -> None:
        """Fit ``P(y=1|f) = sigmoid(a·f + b)`` on training margins.

        A small 1-D Newton fit; degenerate cases (e.g. separable data
        with all margins on one side) fall back to a fixed steep slope.
        """
        margins = data @ self.coef_ + self.intercept_
        a, b = 1.0, 0.0
        targets = labels.astype(float)
        for _ in range(50):
            z = np.clip(a * margins + b, -35.0, 35.0)
            p = 1.0 / (1.0 + np.exp(-z))
            grad_a = float(((p - targets) * margins).mean())
            grad_b = float((p - targets).mean())
            w = p * (1.0 - p)
            h_aa = float((w * margins * margins).mean()) + 1e-6
            h_bb = float(w.mean()) + 1e-6
            a -= grad_a / h_aa
            b -= grad_b / h_bb
            if abs(grad_a) + abs(grad_b) < 1e-8:
                break
        if not np.isfinite(a) or not np.isfinite(b):
            a, b = 4.0, 0.0
        self._platt_a, self._platt_b = a, b

    def decision_function(self, X) -> np.ndarray:
        """Raw margins ``w·x + b`` on standardised features."""
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        return self._scaler.transform(as_2d(X)) @ self.coef_ + self.intercept_

    def predict_proba(self, X) -> np.ndarray:
        margins = self.decision_function(X)
        z = np.clip(self._platt_a * margins + self._platt_b, -35.0, 35.0)
        return 1.0 / (1.0 + np.exp(-z))
