"""Feature standardisation for the linear models."""

from __future__ import annotations

import numpy as np

from .base import as_2d


class StandardScaler:
    """Zero-mean / unit-variance scaling with constant-feature guard."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X) -> "StandardScaler":
        data = as_2d(X)
        self.mean_ = data.mean(axis=0)
        std = data.std(axis=0)
        # Constant features would divide by zero; leave them centred only.
        std[std == 0.0] = 1.0
        self.scale_ = std
        return self

    def transform(self, X) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("scaler is not fitted")
        return (as_2d(X) - self.mean_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)
