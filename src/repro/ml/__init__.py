"""From-scratch ML substrate (logistic regression, linear SVM, CART tree)."""

from .base import BinaryClassifier, ConstantClassifier
from .logistic import LogisticRegressionClassifier
from .metrics import accuracy, confusion_matrix, f1_score, precision, recall
from .scaler import StandardScaler
from .persistence import load_model, model_from_dict, model_to_dict, save_model
from .svm import LinearSVMClassifier
from .tree import DecisionTreeClassifier

__all__ = [
    "BinaryClassifier",
    "ConstantClassifier",
    "DecisionTreeClassifier",
    "LinearSVMClassifier",
    "LogisticRegressionClassifier",
    "StandardScaler",
    "accuracy",
    "confusion_matrix",
    "f1_score",
    "load_model",
    "model_from_dict",
    "model_to_dict",
    "precision",
    "recall",
    "save_model",
]
