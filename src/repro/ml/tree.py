"""CART decision tree with Gini impurity (Table 4's third model family).

Probabilities come from leaf class fractions (Laplace-smoothed so the
θ-thresholding of Eq. (2) never sees hard 0/1 extremes from tiny
leaves).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import BinaryClassifier, as_2d, as_labels


@dataclass
class _Node:
    """A tree node; leaves carry a positive-class probability."""

    probability: float
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - np.sum(p * p))


class DecisionTreeClassifier(BinaryClassifier):
    """Binary CART with axis-aligned splits on continuous features.

    Parameters
    ----------
    max_depth:
        Depth cap.
    min_samples_split:
        Do not split nodes smaller than this.
    min_gain:
        Minimum Gini decrease for a split to be kept.
    """

    name = "decision-tree"

    def __init__(
        self,
        max_depth: int = 6,
        min_samples_split: int = 4,
        min_gain: float = 1e-7,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_gain = min_gain
        self._root: _Node | None = None

    def fit(self, X, y) -> "DecisionTreeClassifier":
        data = as_2d(X)
        labels = as_labels(y)
        if len(labels) != len(data):
            raise ValueError("X and y length mismatch")
        self._root = self._build(data, labels, depth=0)
        return self

    def _leaf(self, labels: np.ndarray) -> _Node:
        # Laplace smoothing keeps probabilities off the hard extremes.
        positives = int(labels.sum())
        return _Node(probability=(positives + 1.0) / (len(labels) + 2.0))

    def _build(self, data: np.ndarray, labels: np.ndarray, depth: int) -> _Node:
        if (
            depth >= self.max_depth
            or len(labels) < self.min_samples_split
            or labels.min() == labels.max()
        ):
            return self._leaf(labels)
        split = self._best_split(data, labels)
        if split is None:
            return self._leaf(labels)
        feature, threshold = split
        mask = data[:, feature] <= threshold
        node = self._leaf(labels)
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(data[mask], labels[mask], depth + 1)
        node.right = self._build(data[~mask], labels[~mask], depth + 1)
        return node

    def _best_split(
        self, data: np.ndarray, labels: np.ndarray
    ) -> tuple[int, float] | None:
        n, d = data.shape
        parent_counts = np.array([(labels == 0).sum(), (labels == 1).sum()], dtype=float)
        parent_gini = _gini(parent_counts)
        best_gain = self.min_gain
        best: tuple[int, float] | None = None
        for feature in range(d):
            order = np.argsort(data[:, feature], kind="stable")
            values = data[order, feature]
            sorted_labels = labels[order]
            left_counts = np.zeros(2)
            right_counts = parent_counts.copy()
            for i in range(n - 1):
                label = sorted_labels[i]
                left_counts[label] += 1
                right_counts[label] -= 1
                if values[i] == values[i + 1]:
                    continue  # cannot split between equal values
                n_left, n_right = i + 1, n - i - 1
                gain = parent_gini - (
                    n_left * _gini(left_counts) + n_right * _gini(right_counts)
                ) / n
                if gain > best_gain:
                    best_gain = gain
                    best = (feature, (values[i] + values[i + 1]) / 2.0)
        return best

    def predict_proba(self, X) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("model is not fitted")
        data = as_2d(X)
        out = np.empty(len(data))
        for i, row in enumerate(data):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.probability
        return out

    def depth(self) -> int:
        """Actual depth of the fitted tree (diagnostics)."""
        def walk(node: _Node | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        if self._root is None:
            raise RuntimeError("model is not fitted")
        return walk(self._root)
