"""Logistic regression — DynamicC's default ML model (§7.1).

Full-batch gradient descent with L2 regularisation and internal feature
standardisation. The training sets DynamicC produces are small (a few
hundred to a few thousand 4–5 dimensional samples, Table 4), so batch
gradient descent converges in milliseconds — the paper reports model
training "less than 1 second … when the number of samples is 20K".
"""

from __future__ import annotations

import numpy as np

from .base import BinaryClassifier, as_2d, as_labels
from .scaler import StandardScaler


def _sigmoid(z: np.ndarray) -> np.ndarray:
    # Clip to keep exp() in range; beyond ±35 the sigmoid saturates anyway.
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35.0, 35.0)))


class LogisticRegressionClassifier(BinaryClassifier):
    """L2-regularised logistic regression trained by gradient descent.

    Parameters
    ----------
    learning_rate:
        Gradient step size (on standardised features).
    l2:
        L2 penalty strength on the weights (not the intercept).
    max_iter:
        Maximum gradient steps.
    tol:
        Stop when the gradient norm falls below this.
    class_weight:
        ``"balanced"`` reweights samples inversely to class frequency
        (useful when negative sampling is disabled); ``None`` keeps
        uniform weights.
    """

    name = "logistic-regression"

    def __init__(
        self,
        learning_rate: float = 0.5,
        l2: float = 1e-3,
        max_iter: int = 500,
        tol: float = 1e-6,
        class_weight: str | None = None,
    ) -> None:
        self.learning_rate = learning_rate
        self.l2 = l2
        self.max_iter = max_iter
        self.tol = tol
        self.class_weight = class_weight
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self._scaler = StandardScaler()

    def fit(self, X, y) -> "LogisticRegressionClassifier":
        data = self._scaler.fit_transform(as_2d(X))
        labels = as_labels(y)
        if len(labels) != len(data):
            raise ValueError("X and y length mismatch")
        n, d = data.shape

        sample_weight = np.ones(n)
        if self.class_weight == "balanced":
            positives = max(int(labels.sum()), 1)
            negatives = max(n - positives, 1)
            sample_weight = np.where(labels == 1, n / (2 * positives), n / (2 * negatives))

        weights = np.zeros(d)
        intercept = 0.0
        for _ in range(self.max_iter):
            probabilities = _sigmoid(data @ weights + intercept)
            error = (probabilities - labels) * sample_weight
            grad_w = data.T @ error / n + self.l2 * weights
            grad_b = float(error.mean())
            weights -= self.learning_rate * grad_w
            intercept -= self.learning_rate * grad_b
            if np.linalg.norm(grad_w) + abs(grad_b) < self.tol:
                break
        self.coef_ = weights
        self.intercept_ = intercept
        return self

    def predict_proba(self, X) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        data = self._scaler.transform(as_2d(X))
        return _sigmoid(data @ self.coef_ + self.intercept_)

    def feature_weights(self) -> np.ndarray:
        """Learned weights on standardised features.

        §6.2 inspects coefficient magnitudes to reason about which
        features drive merge stability ("the maximal inter similarity
        and the size of the clusters have respectively high weights").
        """
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        return self.coef_.copy()
