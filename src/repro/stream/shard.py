"""One shard: a DynamicC engine with a train-then-serve lifecycle.

Each shard owns an independent similarity graph + DynamicC engine built
by the service's *engine factory*. The lifecycle mirrors the paper's
deployment story (§4/§5): the first ``train_rounds`` non-empty rounds
are *observed* (the batch algorithm runs and evolution is captured),
the models are fitted, and every later round is served by prediction.
Until training completes the shard answers queries from the batch
results — correct, just slower — so a cold service is usable from the
first round.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterator

from repro.core.dynamicc import DynamicC, RoundStats
from repro.obs.telemetry import NULL_TELEMETRY

from .batching import RoundOps
from .events import encode_payload, decode_payload

EngineFactory = Callable[[], DynamicC]


class StreamShard:
    """A single DynamicC engine driven by folded stream rounds."""

    def __init__(
        self,
        index: int,
        engine_factory: EngineFactory,
        train_rounds: int,
        obs=NULL_TELEMETRY,
    ) -> None:
        self.index = index
        self.engine = engine_factory()
        self.train_rounds = train_rounds
        #: The service's telemetry recorder, shared with the engine so
        #: round phases (graph maintenance, candidate scoring, merge/
        #: split passes) trace under this shard's rounds.
        self.obs = obs
        if self.engine is not None:  # tests stub factories with None
            self.engine.obs = obs
        self.rounds_seen = 0
        self.trained = False
        #: Highest oplog seq in any round routed to this shard (set by
        #: the service on apply; feeds ``stats()`` and replica ``lag()``).
        self.last_applied_seq = 0
        #: Freshness watermark of this shard: ``ingest_ts`` of the
        #: newest stamped operation applied here (wall clock; ``None``
        #: until one arrives). Set by the service alongside
        #: :attr:`last_applied_seq`.
        self.last_applied_ts: float | None = None

    # ------------------------------------------------------------------
    def apply(self, ops: RoundOps) -> tuple[str, float, RoundStats | None]:
        """Apply one folded round; returns (phase, latency_s, stats).

        ``ops`` must already be normalised against this shard's
        membership (:meth:`RoundOps.normalized` with :meth:`is_live`).
        """
        if ops.is_empty():
            return "skip", 0.0, None
        start = time.perf_counter()
        if not self.trained:
            self.engine.observe_round(
                added=ops.added, removed=ops.removed, updated=ops.updated
            )
            self.rounds_seen += 1
            phase, stats = "observe", None
            # A static stretch of stream can leave the buffer empty (no
            # evolution, hence no positives and no sampled negatives);
            # keep observing until there is something to fit.
            if self.rounds_seen >= self.train_rounds and len(self.engine.buffer):
                with self.obs.span("engine.train", shard=self.index):
                    self.engine.train()
                self.trained = True
        else:
            self.engine.apply_round(
                added=ops.added, removed=ops.removed, updated=ops.updated
            )
            self.rounds_seen += 1
            phase, stats = "predict", self.engine.last_round_stats
        return phase, time.perf_counter() - start, stats

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def is_live(self, obj_id: int) -> bool:
        return obj_id in self.engine.graph

    def object_ids(self) -> Iterator[int]:
        return self.engine.graph.object_ids()

    def cluster_of(self, obj_id: int) -> int:
        return self.engine.clustering.cluster_of(obj_id)

    def members(self, cid: int) -> frozenset[int]:
        return self.engine.clustering.members(cid)

    def clusters(self) -> dict[int, frozenset[int]]:
        clustering = self.engine.clustering
        return {cid: clustering.members(cid) for cid in clustering.cluster_ids()}

    def num_objects(self) -> int:
        return len(self.engine.graph)

    def num_clusters(self) -> int:
        return self.engine.clustering.num_clusters()

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def checkpoint_state(self) -> dict:
        """Everything needed to restore the shard's behaviour.

        The graph is captured as payloads in insertion order — edges are
        soft state, recomputed deterministically on restore. Restored
        cluster ids are re-minted (see
        :meth:`DynamicC.checkpoint_state`), so global cluster ids are
        not stable across a recovery; memberships are.
        """
        return {
            "index": self.index,
            "rounds_seen": self.rounds_seen,
            "trained": self.trained,
            "last_applied_seq": self.last_applied_seq,
            "last_applied_ts": self.last_applied_ts,
            "payloads": [
                [obj_id, encode_payload(self.engine.graph.payload(obj_id))]
                for obj_id in self.engine.graph.object_ids()
            ],
            "engine": self.engine.checkpoint_state(),
        }

    @classmethod
    def restore(
        cls,
        state: dict,
        engine_factory: EngineFactory,
        train_rounds: int,
        obs=NULL_TELEMETRY,
    ) -> "StreamShard":
        """Rebuild a shard from a :meth:`checkpoint_state` snapshot."""
        shard = cls(int(state["index"]), engine_factory, train_rounds, obs=obs)
        shard.rounds_seen = int(state["rounds_seen"])
        shard.trained = bool(state["trained"])
        # Absent in pre-replication checkpoints.
        shard.last_applied_seq = int(state.get("last_applied_seq", 0))
        ts = state.get("last_applied_ts")
        shard.last_applied_ts = float(ts) if ts is not None else None
        graph = shard.engine.graph
        for obj_id, payload in state["payloads"]:
            graph.add_object(int(obj_id), decode_payload(payload))
        shard.engine.restore_state(state["engine"])
        return shard
