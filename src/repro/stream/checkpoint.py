"""Checkpoint store: durable snapshots of all derived (soft) state.

A checkpoint captures every shard's graph payloads, clustering, model
bundle and training buffer, plus the operation-log sequence number the
snapshot covers. Crash recovery = load the latest checkpoint + replay
the oplog suffix (``seq > checkpoint.applied_seq``) — the two-file
recipe that lets the log be compacted without losing rebuildability.

Like the operation log, the storage contract is factored out
(:class:`CheckpointStore`) with two implementations: the original
one-JSON-file-per-snapshot :class:`CheckpointManager` here and the
sqlite-backed :class:`~repro.stream.sqlite_backend.SqliteCheckpointStore`,
selected by :func:`open_checkpoints`.
"""

from __future__ import annotations

import json
import os
import pathlib
import re

from repro.faults.inject import fire
from repro.obs.telemetry import NULL_TELEMETRY

_NAME = re.compile(r"^checkpoint-(\d+)\.json$")


def fsync_directory(directory) -> None:
    """fsync a directory so a rename into it survives power loss."""
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class CheckpointStore:
    """Storage contract for numbered, atomic state snapshots.

    Snapshots are keyed by ``state['applied_seq']``; ``load_latest``
    must skip unreadable snapshots in favour of older ones, and writes
    must be atomic — a crash mid-save can never corrupt the latest
    good snapshot.
    """

    keep: int

    #: Observability recorder; the zero-cost no-op by default. The
    #: owning service replaces it so save/load latencies land in the
    #: shared telemetry snapshot.
    obs = NULL_TELEMETRY

    def save(self, state: dict) -> pathlib.Path:
        """Durably store a snapshot; returns its backing path."""
        raise NotImplementedError

    def load_latest(self) -> dict | None:
        """The newest readable snapshot, or ``None`` when fresh."""
        raise NotImplementedError

    def list_seqs(self) -> list[int]:
        """Applied-seq of every stored checkpoint, ascending."""
        raise NotImplementedError

    def latest_seq(self) -> int | None:
        """Applied-seq of the newest stored checkpoint, ``None`` when fresh.

        A cheap position probe for compaction/shipping coordination —
        unlike :meth:`load_latest` it does not read (or validate) the
        snapshot body, so the newest *listed* seq may still turn out
        unreadable when actually loaded.
        """
        seqs = self.list_seqs()
        return seqs[-1] if seqs else None

    def prune(self) -> None:
        """Drop all but the newest ``keep`` checkpoints."""
        raise NotImplementedError

    def close(self) -> None:
        """Release backing resources (default: nothing held open)."""


class CheckpointManager(CheckpointStore):
    """Atomic, numbered JSON checkpoints in one directory."""

    def __init__(self, directory, keep: int = 3) -> None:
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep

    # ------------------------------------------------------------------
    def _path_for(self, applied_seq: int) -> pathlib.Path:
        return self.directory / f"checkpoint-{applied_seq}.json"

    def list_seqs(self) -> list[int]:
        seqs = []
        for entry in self.directory.iterdir():
            match = _NAME.match(entry.name)
            if match:
                seqs.append(int(match.group(1)))
        return sorted(seqs)

    def save(self, state: dict) -> pathlib.Path:
        """Write a snapshot; ``state['applied_seq']`` names the file."""
        applied_seq = int(state["applied_seq"])
        path = self._path_for(applied_seq)
        fire("checkpoint.save", path)
        temp = path.with_suffix(".json.tmp")
        with open(temp, "w", encoding="utf-8") as handle:
            json.dump(state, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, path)
        # Without the directory fsync the new dirent may not survive a
        # power loss even though the (already-fsynced) contents would —
        # and the caller is about to compact the oplog on our word.
        fsync_directory(self.directory)
        self.prune()
        return path

    def load_latest(self) -> dict | None:
        """The newest readable snapshot, or ``None`` when fresh.

        A truncated file (crash while the *previous* process wrote it
        non-atomically, or disk corruption) is skipped in favour of the
        next-newest checkpoint rather than failing recovery outright.
        """
        for applied_seq in reversed(self.list_seqs()):
            path = self._path_for(applied_seq)
            try:
                fire("checkpoint.load", path)
                with open(path, "r", encoding="utf-8") as handle:
                    return json.load(handle)
            except (json.JSONDecodeError, OSError):
                continue
        return None

    def prune(self) -> None:
        seqs = self.list_seqs()
        for applied_seq in seqs[: -self.keep]:
            try:
                self._path_for(applied_seq).unlink()
            except OSError:
                pass


CHECKPOINT_BACKENDS = ("json", "sqlite")


def open_checkpoints(directory, backend: str = "json", keep: int = 3) -> CheckpointStore:
    """Open a checkpoint store with the named storage backend.

    ``directory`` is the snapshot home for every backend — the sqlite
    store keeps one ``checkpoints.sqlite`` database inside it, so a
    service can switch backends without reshuffling its state layout.
    """
    if backend == "json":
        return CheckpointManager(directory, keep=keep)
    if backend == "sqlite":
        from .sqlite_backend import SqliteCheckpointStore

        return SqliteCheckpointStore(
            pathlib.Path(directory) / "checkpoints.sqlite", keep=keep
        )
    raise ValueError(
        f"unknown checkpoint backend {backend!r}; choose from {CHECKPOINT_BACKENDS}"
    )
