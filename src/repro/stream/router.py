"""Routing (hash and least-loaded) and the cross-shard membership table.

Objects are partitioned over N independent DynamicC engines. Two
policies are provided:

* :class:`HashRouter` — a stable integer hash of the object id (stable
  across processes and Python versions, unlike builtin ``hash``), so a
  recovered service routes exactly like the crashed one without any
  recorded state.
* :class:`LeastLoadedRouter` — new objects go to the shard currently
  holding the fewest (live + pending) objects; known objects stay on
  their shard (sticky). The decision is stamped into the
  :class:`~repro.stream.events.Operation` *before* it is logged, so
  recovery and replicas replay to identical placement by reading the
  stamp instead of re-running the policy. This fixes the documented
  hash pathology where small shard counts concentrate a dense
  similarity component — and its super-linear round cost — on one
  shard.

:meth:`Router.partition` is shared: a stamped operation goes where its
stamp says, an unstamped one where the stable hash says, so logs
written under either policy (or a mix, after a config change) replay
identically everywhere.

Cluster ids are shard-local; the service namespaces them as
``"s<shard>:<cid>"`` global ids. The :class:`MembershipTable` is the
soft-state directory object-id → shard used for liveness checks and
query fan-out; it is rebuilt from the shard engines on recovery, never
persisted.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .events import REMOVE, Operation


def stable_hash(obj_id: int) -> int:
    """SplitMix64 finaliser — deterministic, well-mixed 64-bit hash."""
    z = (obj_id + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return z ^ (z >> 31)


def global_cluster_id(shard: int, cid: int) -> str:
    return f"s{shard}:{cid}"


def parse_cluster_id(gcid: str) -> tuple[int, int]:
    """Invert :func:`global_cluster_id`."""
    shard_part, _, cid_part = gcid.partition(":")
    if not shard_part.startswith("s") or not cid_part:
        raise ValueError(f"malformed global cluster id {gcid!r}")
    return int(shard_part[1:]), int(cid_part)


class Router:
    """Object-id → shard-index routing over stamped or hashed placement."""

    #: Config name (see ``StreamConfig.router``); set by subclasses.
    name = "router"

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.n_shards = n_shards

    def shard_of(self, obj_id: int) -> int:
        """Default placement of an id with no recorded assignment."""
        return stable_hash(obj_id) % self.n_shards

    # ------------------------------------------------------------------
    # Policy hooks (stateless by default)
    # ------------------------------------------------------------------
    def assign(self, operations: list[Operation]) -> list[Operation]:
        """Decide placement for freshly ingested operations.

        Called once per ingest, *before* the operations reach the oplog,
        so whatever the policy stamps is durable. The stateless hash
        policy stamps nothing — the hash is re-derivable anywhere.
        """
        return operations

    def observe(self, operation: Operation) -> None:
        """Learn from an already-stamped operation (replay/shipped path)."""

    def rebuild(self, shard_object_ids: Iterable[Iterable[int]]) -> None:
        """Re-learn placements from restored shard engines (recovery)."""

    def stats(self) -> dict:
        """Telemetry face of the policy (extended by stateful routers)."""
        return {"policy": self.name, "n_shards": self.n_shards}

    # ------------------------------------------------------------------
    def partition(self, operations: Sequence[Operation]) -> dict[int, list[Operation]]:
        """Split a batch into per-shard operation slices (stream order).

        Stamped operations go to their recorded shard; unstamped ones
        fall back to the stable hash — a pure function of the batch, so
        every consumer of the same log cuts identical slices.
        """
        parts: dict[int, list[Operation]] = {}
        n = self.n_shards
        for operation in operations:
            shard = operation.shard
            if shard is None:
                shard = stable_hash(operation.obj_id) % n
            parts.setdefault(shard, []).append(operation)
        return parts


class HashRouter(Router):
    """Deterministic, stateless object-id → shard-index routing."""

    name = "hash"


class LeastLoadedRouter(Router):
    """Assign new objects to the lightest shard; known objects are sticky.

    Load is the number of objects currently counted on a shard —
    applied *and* pending, because a sticky decision must hold from the
    moment it is stamped (a remove and a re-add of the same id buffered
    in one micro-batch must land on the same shard, or one engine sees
    an add it never gets and another a remove for an unknown id).

    Assignments survive removal: a re-added id returns to its previous
    shard, which keeps every operation for one id on one engine without
    cross-shard coordination. Only :meth:`rebuild` (recovery from a
    checkpoint) forgets dead ids.

    ``chunk`` sets the placement granularity: the lightest shard is
    re-evaluated every ``chunk`` *new* objects, and the whole block goes
    there. Per-object re-evaluation (``chunk=1``) interleaves the
    stream across all shards, so every micro-batch wakes every engine —
    N small, fixed-overhead clustering rounds per batch instead of one.
    The service aligns ``chunk`` with its micro-batch budget, making a
    batch of new objects (mostly) a single engine's round while shard
    loads stay balanced to within one chunk.
    """

    name = "least-loaded"

    def __init__(self, n_shards: int, chunk: int = 1) -> None:
        super().__init__(n_shards)
        if chunk < 1:
            raise ValueError("chunk must be >= 1")
        self.chunk = chunk
        self._assignment: dict[int, int] = {}
        self._counted: set[int] = set()
        self._load = [0] * n_shards
        self._chunk_shard = 0
        self._chunk_left = 0

    def loads(self) -> list[int]:
        """Current per-shard object counts (live + pending)."""
        return list(self._load)

    def stats(self) -> dict:
        base = super().stats()
        loads = self.loads()
        base["chunk"] = self.chunk
        base["loads"] = loads
        base["load_imbalance"] = (max(loads) - min(loads)) if loads else 0
        return base

    def shard_of(self, obj_id: int) -> int:
        assigned = self._assignment.get(obj_id)
        return assigned if assigned is not None else super().shard_of(obj_id)

    def _lightest(self) -> int:
        if self._chunk_left <= 0:
            self._chunk_shard = min(
                range(self.n_shards), key=lambda shard: (self._load[shard], shard)
            )
            self._chunk_left = self.chunk
        self._chunk_left -= 1
        return self._chunk_shard

    def _count(self, obj_id: int, shard: int) -> None:
        if obj_id not in self._counted:
            self._counted.add(obj_id)
            self._load[shard] += 1

    def _uncount(self, obj_id: int, shard: int) -> None:
        if obj_id in self._counted:
            self._counted.discard(obj_id)
            self._load[shard] -= 1

    def assign(self, operations: list[Operation]) -> list[Operation]:
        stamped: list[Operation] = []
        for operation in operations:
            obj_id = operation.obj_id
            shard = self._assignment.get(obj_id)
            if operation.kind == REMOVE:
                # Unknown removes are no-ops at the shard; stamp the
                # hash default so the record stays self-describing.
                if shard is None:
                    shard = super().shard_of(obj_id)
                else:
                    self._uncount(obj_id, shard)
                stamped.append(operation.with_shard(shard))
                continue
            if shard is None:
                shard = self._lightest()
                self._assignment[obj_id] = shard
            self._count(obj_id, shard)
            stamped.append(operation.with_shard(shard))
        return stamped

    def observe(self, operation: Operation) -> None:
        """Replay one logged/shipped operation into the load state.

        Re-observing operations the live path already assigned is safe:
        count/uncount are guarded, so replaying any prefix of the stream
        converges to the same loads the stamping run had.
        """
        shard = operation.shard
        if shard is None:
            return
        obj_id = operation.obj_id
        if operation.kind == REMOVE:
            self._uncount(obj_id, self._assignment.get(obj_id, shard))
        else:
            self._assignment.setdefault(obj_id, shard)
            self._count(obj_id, self._assignment[obj_id])

    def rebuild(self, shard_object_ids: Iterable[Iterable[int]]) -> None:
        self._assignment = {}
        self._counted = set()
        self._load = [0] * self.n_shards
        self._chunk_left = 0  # placement blocks restart after recovery
        for shard, ids in enumerate(shard_object_ids):
            for obj_id in ids:
                self._assignment[obj_id] = shard
                self._counted.add(obj_id)
                self._load[shard] += 1


ROUTERS = ("hash", "least-loaded")


def make_router(name: str, n_shards: int, chunk: int = 1) -> Router:
    if name == "hash":
        return HashRouter(n_shards)
    if name == "least-loaded":
        return LeastLoadedRouter(n_shards, chunk=chunk)
    raise ValueError(f"router must be one of {ROUTERS}, got {name!r}")


class MembershipTable:
    """Directory of live objects: id → owning shard."""

    def __init__(self) -> None:
        self._shard_of: dict[int, int] = {}

    def __contains__(self, obj_id: int) -> bool:
        return obj_id in self._shard_of

    def __len__(self) -> int:
        return len(self._shard_of)

    def shard_of(self, obj_id: int) -> int | None:
        return self._shard_of.get(obj_id)

    def add(self, obj_id: int, shard: int) -> None:
        self._shard_of[obj_id] = shard

    def discard(self, obj_id: int) -> None:
        self._shard_of.pop(obj_id, None)

    def live_ids(self) -> set[int]:
        return set(self._shard_of)

    def rebuild(self, shard_object_ids: Iterable[Iterable[int]]) -> None:
        """Reconstruct the directory from each shard's graph (recovery)."""
        self._shard_of = {
            obj_id: shard
            for shard, ids in enumerate(shard_object_ids)
            for obj_id in ids
        }
