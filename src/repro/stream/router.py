"""Hash routing and the cross-shard membership table.

Objects are partitioned over N independent DynamicC engines by a stable
integer hash of their id — stable across processes and Python versions
(unlike builtin ``hash``), so a recovered service routes exactly like
the crashed one and checkpoints stay valid.

Cluster ids are shard-local; the service namespaces them as
``"s<shard>:<cid>"`` global ids. The :class:`MembershipTable` is the
soft-state directory object-id → shard used for liveness checks and
query fan-out; it is rebuilt from the shard engines on recovery, never
persisted.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .events import Operation


def stable_hash(obj_id: int) -> int:
    """SplitMix64 finaliser — deterministic, well-mixed 64-bit hash."""
    z = (obj_id + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return z ^ (z >> 31)


def global_cluster_id(shard: int, cid: int) -> str:
    return f"s{shard}:{cid}"


def parse_cluster_id(gcid: str) -> tuple[int, int]:
    """Invert :func:`global_cluster_id`."""
    shard_part, _, cid_part = gcid.partition(":")
    if not shard_part.startswith("s") or not cid_part:
        raise ValueError(f"malformed global cluster id {gcid!r}")
    return int(shard_part[1:]), int(cid_part)


class HashRouter:
    """Deterministic object-id → shard-index routing."""

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.n_shards = n_shards

    def shard_of(self, obj_id: int) -> int:
        return stable_hash(obj_id) % self.n_shards

    def partition(self, operations: Sequence[Operation]) -> dict[int, list[Operation]]:
        """Split a batch into per-shard operation slices (stream order)."""
        parts: dict[int, list[Operation]] = {}
        for operation in operations:
            parts.setdefault(self.shard_of(operation.obj_id), []).append(operation)
        return parts


class MembershipTable:
    """Directory of live objects: id → owning shard."""

    def __init__(self) -> None:
        self._shard_of: dict[int, int] = {}

    def __contains__(self, obj_id: int) -> bool:
        return obj_id in self._shard_of

    def __len__(self) -> int:
        return len(self._shard_of)

    def shard_of(self, obj_id: int) -> int | None:
        return self._shard_of.get(obj_id)

    def add(self, obj_id: int, shard: int) -> None:
        self._shard_of[obj_id] = shard

    def discard(self, obj_id: int) -> None:
        self._shard_of.pop(obj_id, None)

    def live_ids(self) -> set[int]:
        return set(self._shard_of)

    def rebuild(self, shard_object_ids: Iterable[Iterable[int]]) -> None:
        """Reconstruct the directory from each shard's graph (recovery)."""
        self._shard_of = {
            obj_id: shard
            for shard, ids in enumerate(shard_object_ids)
            for obj_id in ids
        }
