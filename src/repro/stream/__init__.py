"""repro.stream — durable, sharded streaming service layer for DynamicC.

Turns the in-process :class:`~repro.core.dynamicc.DynamicC` engine into
a serveable system:

* :mod:`repro.stream.events` — Add/Remove/Update operations + payload codec;
* :mod:`repro.stream.oplog` — the :class:`LogBackend` storage contract and
  the append-only JSONL WAL (the only hard state), with
  ``truncate_through`` compaction + reclaimed-bytes accounting;
* :mod:`repro.stream.sqlite_backend` — sqlite implementations of the log
  and checkpoint contracts (same Operation-level semantics);
* :mod:`repro.stream.batching` — micro-batcher folding events into rounds;
* :mod:`repro.stream.router` — stable hash + balance-aware least-loaded
  routing (oplog-stamped placement) and the membership table;
* :mod:`repro.stream.shard` — one DynamicC engine with train-then-serve
  lifecycle and checkpoint/restore;
* :mod:`repro.stream.checkpoint` — the :class:`CheckpointStore` contract
  and atomic numbered JSON snapshots;
* :mod:`repro.stream.metrics` — per-round latency/throughput telemetry;
* :mod:`repro.stream.service` — the :class:`ClusteringService` façade
  (``ingest`` / ``cluster_of`` / ``members`` / ``stats`` / ``checkpoint``
  / ``recover``).

Replication on top of this layer lives in :mod:`repro.replica`.
"""

from .batching import MicroBatcher, RoundOps
from .checkpoint import (
    CHECKPOINT_BACKENDS,
    CheckpointManager,
    CheckpointStore,
    open_checkpoints,
)
from .events import Operation, add, remove, update
from .metrics import LatencyStat, MetricsRegistry, ShardMetrics
from .oplog import LOG_BACKENDS, LogBackend, OperationLog, open_log
from .router import (
    ROUTERS,
    HashRouter,
    LeastLoadedRouter,
    MembershipTable,
    Router,
    global_cluster_id,
    make_router,
    parse_cluster_id,
    stable_hash,
)
from .service import ClusteringService, StreamConfig
from .shard import StreamShard
from .sqlite_backend import SqliteCheckpointStore, SqliteOperationLog

__all__ = [
    "CHECKPOINT_BACKENDS",
    "CheckpointManager",
    "CheckpointStore",
    "ClusteringService",
    "HashRouter",
    "LOG_BACKENDS",
    "LatencyStat",
    "LeastLoadedRouter",
    "LogBackend",
    "MembershipTable",
    "ROUTERS",
    "Router",
    "make_router",
    "MetricsRegistry",
    "MicroBatcher",
    "Operation",
    "OperationLog",
    "RoundOps",
    "ShardMetrics",
    "SqliteCheckpointStore",
    "SqliteOperationLog",
    "StreamConfig",
    "StreamShard",
    "add",
    "global_cluster_id",
    "open_checkpoints",
    "open_log",
    "parse_cluster_id",
    "remove",
    "stable_hash",
    "update",
]
