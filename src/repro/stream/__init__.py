"""repro.stream — durable, sharded streaming service layer for DynamicC.

Turns the in-process :class:`~repro.core.dynamicc.DynamicC` engine into
a serveable system:

* :mod:`repro.stream.events` — Add/Remove/Update operations + payload codec;
* :mod:`repro.stream.oplog` — append-only JSONL WAL (the only hard state);
* :mod:`repro.stream.batching` — micro-batcher folding events into rounds;
* :mod:`repro.stream.router` — stable hash routing + membership table;
* :mod:`repro.stream.shard` — one DynamicC engine with train-then-serve
  lifecycle and checkpoint/restore;
* :mod:`repro.stream.checkpoint` — atomic numbered snapshots;
* :mod:`repro.stream.metrics` — per-round latency/throughput telemetry;
* :mod:`repro.stream.service` — the :class:`ClusteringService` façade
  (``ingest`` / ``cluster_of`` / ``members`` / ``stats`` / ``checkpoint``
  / ``recover``).
"""

from .batching import MicroBatcher, RoundOps
from .checkpoint import CheckpointManager
from .events import Operation, add, remove, update
from .metrics import LatencyStat, MetricsRegistry, ShardMetrics
from .oplog import OperationLog
from .router import (
    HashRouter,
    MembershipTable,
    global_cluster_id,
    parse_cluster_id,
    stable_hash,
)
from .service import ClusteringService, StreamConfig
from .shard import StreamShard

__all__ = [
    "CheckpointManager",
    "ClusteringService",
    "HashRouter",
    "LatencyStat",
    "MembershipTable",
    "MetricsRegistry",
    "MicroBatcher",
    "Operation",
    "OperationLog",
    "RoundOps",
    "ShardMetrics",
    "StreamConfig",
    "StreamShard",
    "add",
    "global_cluster_id",
    "parse_cluster_id",
    "remove",
    "stable_hash",
    "update",
]
