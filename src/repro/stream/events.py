"""Stream event model: the three §3.1 data operations as wire records.

An :class:`Operation` is one Add / Remove / Update of one object — the
unit the service ingests, the operation log persists, and the
micro-batcher coalesces into DynamicC rounds. Payloads are the same
opaque values the similarity graph stores (strings, token sets, numpy
vectors…), so the module also owns the payload codec that makes them
JSON-safe for the WAL and for checkpoints.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

import numpy as np

ADD = "add"
REMOVE = "remove"
UPDATE = "update"
#: Control marker, not a data operation: records a forced round
#: boundary (an explicit ``flush()``) in the WAL so replay cuts rounds
#: exactly where the live run did. Never accepted through ``ingest``.
FLUSH = "flush"
_KINDS = (ADD, REMOVE, UPDATE, FLUSH)
_PAYLOADLESS = (REMOVE, FLUSH)


@dataclass(frozen=True)
class Operation:
    """One data operation on one object.

    ``seq`` is the operation-log sequence number: 0 until the log
    assigns one (log sequences start at 1). ``shard`` is an optional
    routing stamp: balance-aware routers decide placement at ingest
    time and record it here *before* the operation is logged, so crash
    recovery and replicas replay to identical shard placement without
    re-running the routing policy. ``None`` means "derive by stable
    hash" — the stateless default.

    ``ingest_ts`` is the freshness watermark: the wall-clock instant
    (``time.time()`` — the cross-process clock domain, see
    :mod:`repro.obs`) the primary *accepted* the operation. Stamped by
    the service at ingest, never by a log backend, so replaying or
    re-appending the same record preserves the original watermark.
    ``None`` means unstamped (raw constructor output, or a record
    written before watermarks existed) — every consumer treats that as
    "no freshness information", not as time zero.

    ``tenant`` is the namespace stamp: which tenant's engine pool this
    operation belongs to when many tenants share one log (see
    :mod:`repro.serve`). Stamped at ingest — exactly like the routing
    stamp — so recovery, compaction, shipping and replicas can filter a
    shared log per tenant without any side table. ``None`` means the
    single-tenant world every pre-serve log was written in.
    """

    kind: str
    obj_id: int
    payload: Any = None
    seq: int = 0
    shard: int | None = None
    ingest_ts: float | None = None
    tenant: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown operation kind {self.kind!r}")
        if self.kind in _PAYLOADLESS:
            if self.payload is not None:
                raise ValueError(f"{self.kind} operations carry no payload")
        elif self.payload is None:
            raise ValueError(f"{self.kind} operations require a payload")

    def with_seq(self, seq: int) -> "Operation":
        return Operation(
            self.kind, self.obj_id, self.payload, seq, self.shard, self.ingest_ts,
            self.tenant,
        )

    def with_shard(self, shard: int) -> "Operation":
        return Operation(
            self.kind, self.obj_id, self.payload, self.seq, shard, self.ingest_ts,
            self.tenant,
        )

    def with_ingest_ts(self, ingest_ts: float) -> "Operation":
        return Operation(
            self.kind, self.obj_id, self.payload, self.seq, self.shard, ingest_ts,
            self.tenant,
        )

    def with_tenant(self, tenant: str) -> "Operation":
        return Operation(
            self.kind, self.obj_id, self.payload, self.seq, self.shard,
            self.ingest_ts, tenant,
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        data = {"seq": self.seq, "kind": self.kind, "id": self.obj_id}
        if self.shard is not None:
            data["shard"] = self.shard
        if self.ingest_ts is not None:
            data["ts"] = self.ingest_ts
        if self.tenant is not None:
            data["tenant"] = self.tenant
        if self.kind not in _PAYLOADLESS:
            data["payload"] = encode_payload(self.payload)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Operation":
        shard = data.get("shard")
        ingest_ts = data.get("ts")
        tenant = data.get("tenant")
        return cls(
            kind=data["kind"],
            obj_id=int(data["id"]),
            payload=(
                decode_payload(data["payload"])
                if data["kind"] not in _PAYLOADLESS
                else None
            ),
            seq=int(data["seq"]),
            shard=int(shard) if shard is not None else None,
            ingest_ts=float(ingest_ts) if ingest_ts is not None else None,
            tenant=str(tenant) if tenant is not None else None,
        )


def add(obj_id: int, payload: Any) -> Operation:
    return Operation(ADD, obj_id, payload)


def remove(obj_id: int) -> Operation:
    return Operation(REMOVE, obj_id)


def update(obj_id: int, payload: Any) -> Operation:
    return Operation(UPDATE, obj_id, payload)


# ---------------------------------------------------------------------------
# Payload codec
# ---------------------------------------------------------------------------
# Scalars, strings and lists pass through; the container types the
# generators actually produce (numpy arrays, frozensets of tokens,
# tuples, dicts) are wrapped in single-key marker objects so decoding is
# unambiguous. Sets are serialised sorted — the encoding is canonical,
# so identical payloads produce identical WAL bytes.

def _sorted_encoded(items) -> list:
    """Encode set members and order them canonically.

    Sorting the raw encodings would raise for non-primitive members
    (dict markers don't compare), so order by their canonical JSON.
    """
    return sorted(
        (encode_payload(item) for item in items),
        key=lambda encoded: json.dumps(encoded, sort_keys=True),
    )


_ND = "__ndarray__"
_SET = "__set__"
_FROZENSET = "__frozenset__"
_TUPLE = "__tuple__"
_DICT = "__dict__"


def encode_payload(payload: Any) -> Any:
    """Encode a similarity-graph payload as JSON-compatible data."""
    if payload is None or isinstance(payload, (bool, int, float, str)):
        return payload
    if isinstance(payload, np.ndarray):
        return {_ND: payload.tolist(), "dtype": str(payload.dtype)}
    if isinstance(payload, (np.integer, np.floating)):
        return payload.item()
    if isinstance(payload, frozenset):
        return {_FROZENSET: _sorted_encoded(payload)}
    if isinstance(payload, set):
        return {_SET: _sorted_encoded(payload)}
    if isinstance(payload, tuple):
        return {_TUPLE: [encode_payload(item) for item in payload]}
    if isinstance(payload, list):
        return [encode_payload(item) for item in payload]
    if isinstance(payload, dict):
        if any(not isinstance(key, str) for key in payload):
            # JSON keys are strings; coercing would silently change the
            # payload on a WAL/checkpoint roundtrip.
            raise TypeError("dict payloads must have string keys")
        return {_DICT: {key: encode_payload(value) for key, value in payload.items()}}
    raise TypeError(f"cannot encode payload of type {type(payload).__name__}")


def decode_payload(data: Any) -> Any:
    """Invert :func:`encode_payload`."""
    if isinstance(data, list):
        return [decode_payload(item) for item in data]
    if isinstance(data, dict):
        if _ND in data:
            return np.asarray(data[_ND], dtype=data["dtype"])
        if _FROZENSET in data:
            return frozenset(decode_payload(item) for item in data[_FROZENSET])
        if _SET in data:
            return {decode_payload(item) for item in data[_SET]}
        if _TUPLE in data:
            return tuple(decode_payload(item) for item in data[_TUPLE])
        if _DICT in data:
            return {key: decode_payload(value) for key, value in data[_DICT].items()}
        raise ValueError(f"unknown payload marker in {sorted(data)!r}")
    return data
