"""Micro-batching: coalesce the event stream into DynamicC rounds.

DynamicC's unit of work is a *round* of Add/Remove/Update operations
(§3.1); per-event re-clustering would waste the method's strength. The
:class:`MicroBatcher` cuts the ingested stream into rounds by an
operation-count budget and an optional wall-clock age budget, and
:class:`RoundOps` folds each cut into the per-id ``added`` / ``removed``
/ ``updated`` mappings :meth:`DynamicC.apply_round` consumes.

Folding is per object id, in stream order, so a batch behaves exactly
like applying its operations one by one (add then remove cancels out,
repeated updates keep the last payload, remove then add of the same id
is an update…). Replaying the same operations through the same batcher
configuration therefore reproduces the same rounds — the property the
crash-recovery invariant rests on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from .events import ADD, REMOVE, UPDATE, Operation


@dataclass
class RoundOps:
    """One folded round, ready for ``apply_round``/``observe_round``."""

    added: dict[int, Any] = field(default_factory=dict)
    removed: list[int] = field(default_factory=list)
    updated: dict[int, Any] = field(default_factory=dict)
    first_seq: int = 0
    last_seq: int = 0
    raw_count: int = 0
    #: Operations dropped as no-ops against current membership (e.g. a
    #: remove of an id the engine never saw).
    ignored: int = 0

    def __len__(self) -> int:
        return len(self.added) + len(self.removed) + len(self.updated)

    def is_empty(self) -> bool:
        return len(self) == 0

    @classmethod
    def fold(cls, operations: Sequence[Operation]) -> "RoundOps":
        """Coalesce a stream slice into net per-id effects."""
        ops = cls(
            first_seq=operations[0].seq if operations else 0,
            last_seq=operations[-1].seq if operations else 0,
            raw_count=len(operations),
        )
        # state per id within this batch: absent | "added" | "removed"
        # | "updated" — the net effect so far.
        state: dict[int, str] = {}
        payloads: dict[int, Any] = {}
        order: list[int] = []
        for op in operations:
            obj_id = op.obj_id
            if obj_id not in state:
                order.append(obj_id)
            previous = state.get(obj_id)
            if op.kind == ADD:
                # remove + add of the same id is an update (§6.1); an add
                # over an earlier in-batch update stays an update.
                state[obj_id] = "added" if previous in (None, "added") else "updated"
                payloads[obj_id] = op.payload
            elif op.kind == UPDATE:
                state[obj_id] = "added" if previous == "added" else "updated"
                payloads[obj_id] = op.payload
            else:  # REMOVE
                if previous == "added":
                    # Added and removed within one batch: net no-op.
                    del state[obj_id]
                    del payloads[obj_id]
                    order.remove(obj_id)
                else:
                    state[obj_id] = "removed"
                    payloads.pop(obj_id, None)
        for obj_id in order:
            net = state[obj_id]
            if net == "added":
                ops.added[obj_id] = payloads[obj_id]
            elif net == "updated":
                ops.updated[obj_id] = payloads[obj_id]
            else:
                ops.removed.append(obj_id)
        return ops

    def normalized(self, is_live: Callable[[int], bool]) -> "RoundOps":
        """Reconcile the folded round against current engine membership.

        Client streams are not trusted to agree with engine state: an
        Add of a live id degrades to an Update, an Update of an unknown
        id degrades to an Add, and a Remove of an unknown id is dropped.
        The reconciliation is a pure function of (round, membership), so
        replays normalise identically.
        """
        out = RoundOps(
            first_seq=self.first_seq,
            last_seq=self.last_seq,
            raw_count=self.raw_count,
            ignored=self.ignored,
        )
        for obj_id, payload in self.added.items():
            if is_live(obj_id):
                out.updated[obj_id] = payload
            else:
                out.added[obj_id] = payload
        for obj_id in self.removed:
            if is_live(obj_id):
                out.removed.append(obj_id)
            else:
                out.ignored += 1
        for obj_id, payload in self.updated.items():
            if is_live(obj_id):
                out.updated[obj_id] = payload
            else:
                out.added[obj_id] = payload
        return out


class MicroBatcher:
    """Cut an operation stream into rounds by count and/or age budget.

    Parameters
    ----------
    max_ops:
        A round is ready once this many operations are pending.
    max_age:
        A non-empty pending round is also ready once its oldest
        operation has waited this many seconds (``None`` disables —
        the deterministic, replay-friendly default).
    clock:
        Injectable time source for the age budget (tests).
    """

    def __init__(
        self,
        max_ops: int = 256,
        max_age: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_ops < 1:
            raise ValueError("max_ops must be >= 1")
        self.max_ops = max_ops
        self.max_age = max_age
        self.clock = clock
        self._pending: list[Operation] = []
        # Arrival time of each pending op, parallel to _pending, so a
        # partial remainder keeps its original age after a batch pops.
        self._arrivals: list[float] = []

    def __len__(self) -> int:
        return len(self._pending)

    def add(self, operation: Operation) -> None:
        self._pending.append(operation)
        self._arrivals.append(self.clock())

    def extend(self, operations: Iterable[Operation]) -> None:
        for operation in operations:
            self.add(operation)

    def pending(self) -> tuple[Operation, ...]:
        """The buffered (not yet applied) operations, in arrival order.

        Read-only view for admission control and diagnostics — e.g.
        the serve layer's object quota projects pending adds on top of
        applied state, so a burst inside one micro-batch cannot slip
        past the cap.
        """
        return tuple(self._pending)

    def ready(self) -> bool:
        """Is a full round available?"""
        if len(self._pending) >= self.max_ops:
            return True
        return (
            self.max_age is not None
            and bool(self._pending)
            and self.clock() - self._arrivals[0] >= self.max_age
        )

    def oldest_age(self) -> float:
        """Seconds the oldest pending operation has waited (0.0 if none).

        The queueing-delay face of the age budget: surfaced as the
        ``pending_oldest_age_s`` gauge so operators can see buffered
        operations aging toward (or past) ``max_age``.
        """
        if not self._arrivals:
            return 0.0
        return max(0.0, self.clock() - self._arrivals[0])

    def next_batch(self) -> list[Operation]:
        """Pop the next round's raw operations (up to ``max_ops``)."""
        batch = self._pending[: self.max_ops]
        self._pending = self._pending[self.max_ops :]
        self._arrivals = self._arrivals[self.max_ops :]
        return batch

    def drain(self) -> list[Operation]:
        """Pop everything pending (the explicit flush path)."""
        batch, self._pending = self._pending, []
        self._arrivals = []
        return batch
