"""Append-only operation log (the service's only hard state).

Following the log-first architecture of streaming engines (GnitzDB's
"hard state = operation log, everything else is soft state"), every
ingested operation is appended here as one record *before* it is
applied anywhere. All derived state — clusterings, similarity graphs,
trained models — can be rebuilt by replaying the log, or restored from
a checkpoint plus the log suffix.

The log is the replication seam too: anything that can read the log
can serve reads, so the storage contract is factored out as
:class:`LogBackend` with two implementations — the original JSONL
:class:`OperationLog` here and the sqlite-backed
:class:`~repro.stream.sqlite_backend.SqliteOperationLog` — selected by
:func:`open_log`.

Durability/robustness properties every backend provides:

* sequence numbers are assigned by the log, monotonically from 1;
* a crash mid-append leaves at most one torn final record, which
  re-open heals away (the WAL tail rule) and :meth:`LogBackend.iter_from`
  never yields past;
* :meth:`LogBackend.compact` atomically drops the prefix a checkpoint
  already covers.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Iterator, Sequence

from repro.faults.inject import fire
from repro.obs.telemetry import NULL_TELEMETRY

from .events import Operation


class LogBackend:
    """Storage contract for a seq-addressed, append-only operation log.

    Implementations own one durable medium (a JSONL file, a sqlite
    database, …) and guarantee the healed-tail invariant: after
    construction ``last_seq`` names the last durably readable record,
    and readers never observe anything beyond it.
    """

    #: Sequence number of the last durable record (0 when empty).
    last_seq: int

    #: Freshness watermark: the ``ingest_ts`` of the newest durable
    #: record that carries one (``None`` when the log is empty or
    #: predates watermarks). Wall-clock domain — see "Clock domains" in
    #: :mod:`repro.obs`. Recovered from the tail scan on open and
    #: advanced by every append, so the shipper can stamp segments and
    #: heartbeats with "the primary's log is fresh through T" without
    #: re-reading the log.
    last_watermark_ts: float | None = None

    #: Observability recorder; the zero-cost no-op by default. The
    #: owning service replaces it so append/fsync latencies land in the
    #: shared telemetry snapshot.
    obs = NULL_TELEMETRY

    def append(self, operations: Sequence[Operation]) -> list[Operation]:
        """Assign sequence numbers and durably append; returns stamped ops.

        All-or-nothing: encoding failures leave ``last_seq`` untouched,
        so a rejected batch cannot burn sequence numbers — a burned seq
        would read as a log gap at recovery time.
        """
        raise NotImplementedError

    def append_stamped(self, operations: Sequence[Operation]) -> int:
        """Append operations that already carry sequence numbers.

        The replication path: a follower persists shipped records
        verbatim so its log is byte-equivalent in content to the
        primary's. Gap-refusing — every record must continue exactly at
        ``last_seq + 1`` or the whole batch is rejected (``ValueError``)
        before anything is written. Returns the number appended.
        """
        raise NotImplementedError

    def iter_from(self, after_seq: int = 0) -> Iterator[Operation]:
        """Yield logged operations with ``seq > after_seq``, in order.

        Shares the healed-tail bound: records beyond ``last_seq`` as of
        the call (torn tails, concurrent writers) are never yielded.
        """
        raise NotImplementedError

    def replay(self, after_seq: int = 0) -> Iterator[Operation]:
        """Alias of :meth:`iter_from` (the recovery-path name)."""
        return self.iter_from(after_seq)

    def compact(self, upto_seq: int) -> int:
        """Drop all entries with ``seq <= upto_seq``; returns kept count."""
        raise NotImplementedError

    #: Cumulative bytes reclaimed by :meth:`truncate_through` over this
    #: object's lifetime (the ``oplog_reclaimed_bytes`` gauge).
    bytes_reclaimed: int = 0

    def truncate_through(self, seq: int) -> dict:
        """Compact away ``seq <=`` the given seq and report the footprint.

        The coordination-facing face of :meth:`compact`: callers that
        truncate (a service compacting up to its last shipped snapshot,
        a replica dropping log it re-based onto a restored snapshot)
        get back what the truncation actually bought — kept operations,
        bytes reclaimed, the resulting log size — and the reclaimed
        total accumulates in :attr:`bytes_reclaimed` for ``stats()``.
        Truncation never moves ``last_seq``: the upper bound of the log
        is durable history, only the prefix is dropped.
        """
        before = self.size_bytes()
        kept = self.compact(seq)
        after = self.size_bytes()
        reclaimed = max(0, before - after)
        self.bytes_reclaimed += reclaimed
        return {
            "truncated_through": seq,
            "kept_ops": kept,
            "reclaimed_bytes": reclaimed,
            "log_bytes": after,
        }

    def size_bytes(self) -> int:
        """Current on-disk footprint of the log (telemetry)."""
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def __enter__(self) -> "LogBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class OperationLog(LogBackend):
    """Append-only JSONL WAL of :class:`~repro.stream.events.Operation`.

    Parameters
    ----------
    path:
        Log file; created (with parents) when missing.
    fsync:
        Force an ``fsync`` after every append batch. Off by default —
        the benchmarks and tests don't need power-loss durability, and
        a flush already survives process crashes.
    """

    def __init__(self, path, fsync: bool = False) -> None:
        self.path = pathlib.Path(path)
        self.fsync = fsync
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.last_seq = self._heal_tail()
        self._handle = open(self.path, "a", encoding="utf-8")

    def _heal_tail(self) -> int:
        """Truncate any torn final line; returns the last valid seq.

        Without this, the next append would concatenate onto the
        partial line and corrupt an otherwise-valid record.
        """
        if not self.path.exists():
            return 0
        last_seq = 0
        valid_end = 0
        with open(self.path, "r+b") as handle:
            for raw in handle:
                if not raw.endswith(b"\n"):
                    break
                try:
                    data = json.loads(raw.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    break
                valid_end += len(raw)
                last_seq = int(data["seq"])
                ts = data.get("ts")
                if ts is not None:
                    self.last_watermark_ts = float(ts)
            handle.truncate(valid_end)
        return last_seq

    # ------------------------------------------------------------------
    def _write_lines(self, lines: list[str]) -> None:
        if not lines:
            return
        fire("oplog.append", self.path)
        obs = self.obs
        start = self._handle.tell()
        try:
            if obs.enabled:
                with obs.span("oplog.append", records=len(lines)):
                    self._handle.write("\n".join(lines) + "\n")
                    self._handle.flush()
                    if self.fsync:
                        fire("oplog.fsync", self.path)
                        with obs.span("oplog.fsync"):
                            os.fsync(self._handle.fileno())
                return
            self._handle.write("\n".join(lines) + "\n")
            self._handle.flush()
            if self.fsync:
                fire("oplog.fsync", self.path)
                os.fsync(self._handle.fileno())
        except Exception:
            # An I/O *error* (not a crash: InjectedCrash is a
            # BaseException and skips this, like real process death
            # would) may leave the batch partially written — e.g. the
            # write landed but the fsync failed. Rewind so a retry of
            # the same batch cannot append duplicate records after the
            # flushed first attempt.
            try:
                self._handle.truncate(start)
            except OSError:
                pass  # reopen-time tail healing remains the backstop
            raise

    def append(self, operations: Sequence[Operation]) -> list[Operation]:
        stamped = []
        lines = []
        seq = self.last_seq
        watermark = self.last_watermark_ts
        for operation in operations:
            seq += 1
            stamped_op = operation.with_seq(seq)
            stamped.append(stamped_op)
            lines.append(json.dumps(stamped_op.to_dict()))
            if stamped_op.ingest_ts is not None:
                watermark = stamped_op.ingest_ts
        self._write_lines(lines)
        self.last_seq = seq
        self.last_watermark_ts = watermark
        return stamped

    def append_stamped(self, operations: Sequence[Operation]) -> int:
        lines = []
        seq = self.last_seq
        watermark = self.last_watermark_ts
        for operation in operations:
            if operation.seq != seq + 1:
                raise ValueError(
                    f"stamped append breaks contiguity: expected seq "
                    f"{seq + 1}, got {operation.seq}"
                )
            seq = operation.seq
            lines.append(json.dumps(operation.to_dict()))
            if operation.ingest_ts is not None:
                watermark = operation.ingest_ts
        self._write_lines(lines)
        self.last_seq = seq
        self.last_watermark_ts = watermark
        return len(lines)

    def iter_from(self, after_seq: int = 0) -> Iterator[Operation]:
        # Captured once: appends racing this scan (or a torn tail a
        # crashed co-writer left) must not leak past the healed bound.
        bound = self.last_seq
        if not self.path.exists():
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except json.JSONDecodeError:
                    # Torn tail from a crash mid-append; everything after
                    # it is unreadable garbage by definition.
                    break
                operation = Operation.from_dict(data)
                if operation.seq > bound:
                    break
                if operation.seq > after_seq:
                    yield operation

    def compact(self, upto_seq: int) -> int:
        """Drop all entries with ``seq <= upto_seq``; returns kept count.

        Safe against crashes: the suffix is written to a temp file which
        is atomically renamed over the log.
        """
        fire("oplog.compact", self.path)
        kept = list(self.iter_from(after_seq=upto_seq))
        temp = self.path.with_suffix(self.path.suffix + ".compact")
        # Write the suffix before touching the live handle: a failure
        # here (disk full, fsync error) leaves the log fully usable.
        with open(temp, "w", encoding="utf-8") as handle:
            for operation in kept:
                handle.write(json.dumps(operation.to_dict()) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._handle.close()
        try:
            os.replace(temp, self.path)
            from .checkpoint import fsync_directory

            fsync_directory(self.path.parent)
        finally:
            # Reopen even if the rename failed, so the log object keeps
            # working against whichever file survived.
            self._handle = open(self.path, "a", encoding="utf-8")
        return len(kept)

    def size_bytes(self) -> int:
        if not self._handle.closed:
            self._handle.flush()
        try:
            return self.path.stat().st_size
        except OSError:
            return 0

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "OperationLog":
        return self


LOG_BACKENDS = ("jsonl", "sqlite")


def open_log(path, backend: str = "jsonl", fsync: bool = False) -> LogBackend:
    """Open an operation log with the named storage backend."""
    if backend == "jsonl":
        return OperationLog(path, fsync=fsync)
    if backend == "sqlite":
        from .sqlite_backend import SqliteOperationLog

        return SqliteOperationLog(path, fsync=fsync)
    raise ValueError(f"unknown log backend {backend!r}; choose from {LOG_BACKENDS}")
