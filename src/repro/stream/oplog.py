"""Append-only operation log (the service's only hard state).

Following the log-first architecture of streaming engines (GnitzDB's
"hard state = operation log, everything else is soft state"), every
ingested operation is appended here as one JSON line *before* it is
applied anywhere. All derived state — clusterings, similarity graphs,
trained models — can be rebuilt by replaying the log, or restored from
a checkpoint plus the log suffix.

Durability/robustness properties:

* sequence numbers are assigned by the log, monotonically from 1;
* a crash mid-append leaves at most one torn final line, which replay
  and re-open both ignore (the WAL tail rule);
* :meth:`compact` atomically drops the prefix a checkpoint already
  covers (write-temp + rename).
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Iterable, Iterator, Sequence

from .events import Operation


class OperationLog:
    """Append-only JSONL WAL of :class:`~repro.stream.events.Operation`.

    Parameters
    ----------
    path:
        Log file; created (with parents) when missing.
    fsync:
        Force an ``fsync`` after every append batch. Off by default —
        the benchmarks and tests don't need power-loss durability, and
        a flush already survives process crashes.
    """

    def __init__(self, path, fsync: bool = False) -> None:
        self.path = pathlib.Path(path)
        self.fsync = fsync
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.last_seq = self._heal_tail()
        self._handle = open(self.path, "a", encoding="utf-8")

    def _heal_tail(self) -> int:
        """Truncate any torn final line; returns the last valid seq.

        Without this, the next append would concatenate onto the
        partial line and corrupt an otherwise-valid record.
        """
        if not self.path.exists():
            return 0
        last_seq = 0
        valid_end = 0
        with open(self.path, "r+b") as handle:
            for raw in handle:
                if not raw.endswith(b"\n"):
                    break
                try:
                    data = json.loads(raw.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    break
                valid_end += len(raw)
                last_seq = int(data["seq"])
            handle.truncate(valid_end)
        return last_seq

    # ------------------------------------------------------------------
    def append(self, operations: Sequence[Operation]) -> list[Operation]:
        """Assign sequence numbers and durably append; returns stamped ops.

        All-or-nothing: encoding failures (e.g. an unencodable payload)
        leave ``last_seq`` untouched, so a rejected batch cannot burn
        sequence numbers — a burned seq would read as a log gap at
        recovery time.
        """
        stamped = []
        lines = []
        seq = self.last_seq
        for operation in operations:
            seq += 1
            stamped_op = operation.with_seq(seq)
            stamped.append(stamped_op)
            lines.append(json.dumps(stamped_op.to_dict()))
        if lines:
            self._handle.write("\n".join(lines) + "\n")
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())
        self.last_seq = seq
        return stamped

    def replay(self, after_seq: int = 0) -> Iterator[Operation]:
        """Yield logged operations with ``seq > after_seq``, in order."""
        if not self.path.exists():
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except json.JSONDecodeError:
                    # Torn tail from a crash mid-append; everything after
                    # it is unreadable garbage by definition.
                    break
                operation = Operation.from_dict(data)
                if operation.seq > after_seq:
                    yield operation

    def compact(self, upto_seq: int) -> int:
        """Drop all entries with ``seq <= upto_seq``; returns kept count.

        Safe against crashes: the suffix is written to a temp file which
        is atomically renamed over the log.
        """
        kept = list(self.replay(after_seq=upto_seq))
        temp = self.path.with_suffix(self.path.suffix + ".compact")
        # Write the suffix before touching the live handle: a failure
        # here (disk full, fsync error) leaves the log fully usable.
        with open(temp, "w", encoding="utf-8") as handle:
            for operation in kept:
                handle.write(json.dumps(operation.to_dict()) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._handle.close()
        try:
            os.replace(temp, self.path)
            from .checkpoint import fsync_directory

            fsync_directory(self.path.parent)
        finally:
            # Reopen even if the rename failed, so the log object keeps
            # working against whichever file survived.
            self._handle = open(self.path, "a", encoding="utf-8")
        return len(kept)

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "OperationLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
