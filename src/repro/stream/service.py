"""`ClusteringService` — the durable, sharded DynamicC serving façade.

Architecture (log-first, GnitzDB-style):

1. **ingest** — operations are stamped and appended to the
   :class:`~repro.stream.oplog.OperationLog` (the only hard state),
   then buffered in the :class:`~repro.stream.batching.MicroBatcher`.
2. **apply** — each full micro-batch is hash-partitioned over N
   independent :class:`~repro.stream.shard.StreamShard` engines; every
   shard folds + normalises its slice and runs one DynamicC round
   (observe while warming up, predict once trained).
3. **query** — ``cluster_of`` routes through the membership table;
   ``members`` / ``clusters`` address shard-namespaced global cluster
   ids (``"s<shard>:<cid>"``).
4. **checkpoint / recover** — a checkpoint snapshots all shard state at
   the last *applied* sequence number (it never forces pending batches
   out, and explicit flushes leave markers in the log, so round
   boundaries are preserved); recovery loads the latest snapshot and
   replays the log suffix, reproducing exactly the memberships of an
   uninterrupted run. Global cluster *ids* are re-minted on restore —
   hold on to object ids, not cluster ids, across a crash.

The service is synchronous and single-process — the subsystem every
following scaling step (async ingest, replication, multi-backend
storage) builds on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from .batching import MicroBatcher, RoundOps
from .checkpoint import CheckpointManager
from .events import FLUSH, Operation
from .metrics import MetricsRegistry
from .oplog import OperationLog
from .router import HashRouter, MembershipTable, global_cluster_id, parse_cluster_id
from .shard import EngineFactory, StreamShard


@dataclass
class StreamConfig:
    """Service tunables.

    Attributes
    ----------
    n_shards:
        Number of independent DynamicC engines.
    batch_max_ops:
        Micro-batch budget: a round is cut every this many operations.
    batch_max_age:
        Optional age budget in seconds (checked on ingest). Age-cut
        round boundaries are recorded in the oplog as flush markers,
        so durable services stay replay-exact with an age budget too.
    train_rounds:
        Non-empty rounds each shard observes (batch re-clustering +
        evolution capture) before fitting its models and switching to
        prediction.
    oplog_path:
        Operation-log file; ``None`` runs the service ephemerally
        (no durability, no recovery).
    checkpoint_dir:
        Checkpoint directory; ``None`` disables checkpointing.
    fsync:
        fsync the oplog on every append (power-loss durability).
    keep_checkpoints:
        Retained snapshot count.
    compact_on_checkpoint:
        Drop the oplog prefix a fresh checkpoint covers.
    """

    n_shards: int = 2
    batch_max_ops: int = 256
    batch_max_age: float | None = None
    train_rounds: int = 3
    oplog_path: Any = None
    checkpoint_dir: Any = None
    fsync: bool = False
    keep_checkpoints: int = 3
    compact_on_checkpoint: bool = True

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if self.train_rounds < 1:
            raise ValueError("train_rounds must be >= 1")


class ClusteringService:
    """Durable, sharded clustering over an event stream.

    Parameters
    ----------
    engine_factory:
        Zero-argument callable building one fresh
        :class:`~repro.core.dynamicc.DynamicC` (with its own empty
        similarity graph) — called once per shard. Factories must be
        deterministic for crash recovery to be exact.
    config:
        Service tunables; defaults to an ephemeral two-shard service.
    """

    def __init__(self, engine_factory: EngineFactory, config: StreamConfig | None = None) -> None:
        self.config = config or StreamConfig()
        self._engine_factory = engine_factory
        self.router = HashRouter(self.config.n_shards)
        self.shards = [
            StreamShard(index, engine_factory, self.config.train_rounds)
            for index in range(self.config.n_shards)
        ]
        self.membership = MembershipTable()
        self.metrics = MetricsRegistry(self.config.n_shards)
        self.batcher = MicroBatcher(
            max_ops=self.config.batch_max_ops, max_age=self.config.batch_max_age
        )
        self.oplog = (
            OperationLog(self.config.oplog_path, fsync=self.config.fsync)
            if self.config.oplog_path is not None
            else None
        )
        self.checkpoints = (
            CheckpointManager(self.config.checkpoint_dir, keep=self.config.keep_checkpoints)
            if self.config.checkpoint_dir is not None
            else None
        )
        #: Sequence number of the last operation applied to a shard.
        self.applied_seq = 0
        # Ephemeral stamping when no oplog is configured.
        self._next_seq = 1

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(op: Operation | Sequence) -> Operation:
        if isinstance(op, Operation):
            return op
        kind, obj_id, *rest = op
        return Operation(kind, int(obj_id), rest[0] if rest else None)

    def ingest(self, operations: Iterable[Operation | Sequence]) -> int:
        """Log and buffer operations, applying every full micro-batch.

        Accepts :class:`Operation` objects or ``(kind, id[, payload])``
        tuples. Returns the number of operations accepted. Reads are
        eventually consistent: operations beyond the last full batch
        stay pending until more arrive or :meth:`flush` is called.
        """
        ops = [self._coerce(op) for op in operations]
        if any(op.kind == FLUSH for op in ops):
            raise ValueError(
                "flush markers are control records; call flush() instead"
            )
        if self.oplog is not None:
            ops = self.oplog.append(ops)
        else:
            ops = [op.with_seq(self._next_seq + offset) for offset, op in enumerate(ops)]
            self._next_seq += len(ops)
        self.metrics.events_ingested += len(ops)
        self.batcher.extend(ops)
        self._apply_ready()
        return len(ops)

    def flush(self) -> None:
        """Force the pending partial batch through as one round.

        The forced boundary is recorded in the oplog as a control
        marker, so a crash-recovery replay cuts rounds exactly where
        the live run did.
        """
        if not len(self.batcher):
            return  # nothing pending: no round, no marker
        if self.oplog is not None:
            self.oplog.append([Operation(FLUSH, 0)])
        batch = self.batcher.drain()
        if batch:
            self._apply_batch(batch)

    def _apply_ready(self) -> None:
        while self.batcher.ready():
            if len(self.batcher) < self.batcher.max_ops and self.oplog is not None:
                # Age-triggered cut: off the count grid, so it must be
                # recorded like an explicit flush or replay would cut
                # this round elsewhere.
                self.oplog.append([Operation(FLUSH, 0)])
            self._apply_batch(self.batcher.next_batch())

    def _apply_batch(self, batch: list[Operation]) -> None:
        start = time.perf_counter()
        for shard_index, slice_ops in sorted(self.router.partition(batch).items()):
            shard = self.shards[shard_index]
            round_ops = RoundOps.fold(slice_ops).normalized(shard.is_live)
            phase, latency, stats = shard.apply(round_ops)
            if phase != "skip":
                self.metrics.shard(shard_index).record_round(
                    phase, len(round_ops), round_ops.ignored, latency, stats
                )
            else:
                # A round can normalise to nothing and still have
                # discarded operations worth counting.
                self.metrics.shard(shard_index).ops_ignored += round_ops.ignored
            for obj_id in round_ops.added:
                self.membership.add(obj_id, shard_index)
            for obj_id in round_ops.removed:
                self.membership.discard(obj_id)
        self.applied_seq = batch[-1].seq
        self.metrics.batches_applied += 1
        self.metrics.batch_latency.record(time.perf_counter() - start)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def cluster_of(self, obj_id: int) -> str | None:
        """Global cluster id of a live object, ``None`` when unknown."""
        shard_index = self.membership.shard_of(obj_id)
        if shard_index is None:
            return None
        return global_cluster_id(shard_index, self.shards[shard_index].cluster_of(obj_id))

    def members(self, gcid: str) -> frozenset[int]:
        """Member object ids of a global cluster id."""
        shard_index, cid = parse_cluster_id(gcid)
        if not 0 <= shard_index < len(self.shards):
            raise KeyError(gcid)
        try:
            return self.shards[shard_index].members(cid)
        except KeyError:
            raise KeyError(gcid) from None

    def clusters(self) -> dict[str, frozenset[int]]:
        """All live clusters across shards, by global cluster id."""
        out: dict[str, frozenset[int]] = {}
        for shard in self.shards:
            for cid, members in shard.clusters().items():
                out[global_cluster_id(shard.index, cid)] = members
        return out

    def partition(self) -> frozenset[frozenset[int]]:
        """Canonical global partition (for equality tests / metrics)."""
        return frozenset(self.clusters().values())

    def num_objects(self) -> int:
        return len(self.membership)

    def stats(self) -> dict:
        """Telemetry snapshot plus live engine/stream gauges."""
        snapshot = self.metrics.snapshot()
        snapshot.update(
            applied_seq=self.applied_seq,
            last_seq=self.oplog.last_seq if self.oplog is not None else self._next_seq - 1,
            pending_ops=len(self.batcher),
            num_objects=len(self.membership),
            num_clusters=sum(shard.num_clusters() for shard in self.shards),
        )
        for shard, shard_stats in zip(self.shards, snapshot["shards"]):
            shard_stats.update(
                objects=shard.num_objects(),
                clusters=shard.num_clusters(),
                trained=shard.trained,
            )
        return snapshot

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def checkpoint(self):
        """Snapshot all shard state at the last applied sequence number.

        Pending (logged-but-unapplied) operations are deliberately NOT
        flushed first: they are recovered from the oplog suffix, which
        keeps micro-batch boundaries — and therefore recovered results —
        identical to an uninterrupted run. Returns the snapshot path.
        """
        if self.checkpoints is None:
            raise RuntimeError("service has no checkpoint_dir configured")
        state = {
            "applied_seq": self.applied_seq,
            "n_shards": self.config.n_shards,
            # Round boundaries depend on these, so recovery must run
            # with the same values or replay would re-cut differently.
            "batch_max_ops": self.config.batch_max_ops,
            "train_rounds": self.config.train_rounds,
            "shards": [shard.checkpoint_state() for shard in self.shards],
        }
        path = self.checkpoints.save(state)
        if self.oplog is not None and self.config.compact_on_checkpoint:
            # Compact only past the *oldest retained* snapshot, not the
            # newest: falling back to an older checkpoint (e.g. when the
            # newest is corrupt) needs the log from that seq forward.
            self.oplog.compact(min(self.checkpoints.list_seqs()))
        self.metrics.checkpoints_taken += 1
        return path

    @classmethod
    def recover(
        cls, engine_factory: EngineFactory, config: StreamConfig
    ) -> "ClusteringService":
        """Rebuild a service after a crash: latest checkpoint + log replay.

        Works from any durable subset — with no checkpoint the whole log
        is replayed from scratch; with no log the checkpoint alone is
        restored (losing only operations logged after it, which without
        an oplog were never durable anyway).
        """
        service = cls(engine_factory, config)
        state = service.checkpoints.load_latest() if service.checkpoints else None
        if state is not None:
            for field_name, want in (
                ("n_shards", config.n_shards),
                ("batch_max_ops", config.batch_max_ops),
                ("train_rounds", config.train_rounds),
            ):
                # Older checkpoints may predate a field; only a recorded
                # mismatch is definitely divergence-inducing.
                have = state.get(field_name)
                if have is not None and int(have) != want:
                    raise ValueError(
                        f"checkpoint has {field_name}={have}, config wants "
                        f"{want}; recovery with different round-cutting "
                        "parameters would silently diverge"
                    )
            service.shards = [
                StreamShard.restore(shard_state, engine_factory, config.train_rounds)
                for shard_state in state["shards"]
            ]
            service.applied_seq = int(state["applied_seq"])
            service.membership.rebuild(shard.object_ids() for shard in service.shards)
            # Fast-forward the sequence stampers past the checkpoint:
            # recovering without a log (or from a lost/compacted one)
            # must not re-issue already-used sequence numbers, or new
            # checkpoints would sort below the stale one and the next
            # recovery would silently discard everything since.
            service._next_seq = max(service._next_seq, service.applied_seq + 1)
            if service.oplog is not None:
                service.oplog.last_seq = max(
                    service.oplog.last_seq, service.applied_seq
                )
        if service.oplog is not None:
            # Replay cuts rounds by count and logged markers only — the
            # live run's age-triggered cuts are in the log as markers,
            # and replay-time arrival clocks must not add new ones.
            service.batcher.max_age = None
            try:
                expected_seq = service.applied_seq
                for operation in service.oplog.replay(after_seq=service.applied_seq):
                    if operation.seq != expected_seq + 1:
                        # Sequence numbers are contiguous by construction,
                        # so a jump means the log was compacted past this
                        # checkpoint — refusing beats silently losing ops.
                        raise RuntimeError(
                            f"oplog gap: expected seq {expected_seq + 1}, "
                            f"found {operation.seq}; the log no longer "
                            "covers this checkpoint"
                        )
                    expected_seq = operation.seq
                    if operation.kind == FLUSH:
                        batch = service.batcher.drain()
                        if batch:
                            service._apply_batch(batch)
                    else:
                        service.metrics.events_ingested += 1
                        service.batcher.add(operation)
                        service._apply_ready()
            finally:
                service.batcher.max_age = config.batch_max_age
        service.metrics.recoveries += 1
        return service

    def close(self) -> None:
        if self.oplog is not None:
            self.oplog.close()

    def __enter__(self) -> "ClusteringService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
