"""`ClusteringService` — the durable, sharded DynamicC serving façade.

Architecture (log-first, GnitzDB-style):

1. **ingest** — operations are stamped and appended to the
   :class:`~repro.stream.oplog.OperationLog` (the only hard state),
   then buffered in the :class:`~repro.stream.batching.MicroBatcher`.
2. **apply** — each full micro-batch is hash-partitioned over N
   independent :class:`~repro.stream.shard.StreamShard` engines; every
   shard folds + normalises its slice and runs one DynamicC round
   (observe while warming up, predict once trained).
3. **query** — ``cluster_of`` routes through the membership table;
   ``members`` / ``clusters`` address shard-namespaced global cluster
   ids (``"s<shard>:<cid>"``).
4. **checkpoint / recover** — a checkpoint snapshots all shard state at
   the last *applied* sequence number (it never forces pending batches
   out, and explicit flushes leave markers in the log, so round
   boundaries are preserved); recovery loads the latest snapshot and
   replays the log suffix, reproducing exactly the memberships of an
   uninterrupted run. Global cluster *ids* are re-minted on restore —
   hold on to object ids, not cluster ids, across a crash.

The service is synchronous and single-process; storage is pluggable
(JSONL or sqlite log/checkpoint backends via :class:`StreamConfig`),
and :mod:`repro.replica` builds primary/replica read scaling on top of
the log. Async ingest is the remaining scaling seam.
"""

from __future__ import annotations

import contextlib
import time
import warnings
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.errors import ConfigError
from repro.faults.retry import RetryPolicy
from repro.obs.health import (
    HealthRegistry,
    check_backlog,
    check_checkpoints,
    check_oplog,
)
from repro.obs.logging import NULL_LOGGER, StructuredLogger
from repro.obs.server import ObsServer, parse_listen
from repro.obs.telemetry import TELEMETRY_SETTINGS, make_telemetry

from .batching import MicroBatcher, RoundOps
from .checkpoint import CHECKPOINT_BACKENDS, open_checkpoints
from .events import FLUSH, Operation
from .metrics import MetricsRegistry
from .oplog import LOG_BACKENDS, open_log
from .router import (
    ROUTERS,
    MembershipTable,
    global_cluster_id,
    make_router,
    parse_cluster_id,
)
from .shard import EngineFactory, StreamShard

# ---------------------------------------------------------------------------
# Deprecation plumbing for the pre-serve façades
# ---------------------------------------------------------------------------
# ClusteringService (and ReplicatedClusteringService on top of it) remain
# the engine rooms of the stack, but the *public front door* is now
# ``repro.serve.Service``. Direct construction of the old façades warns;
# the serve/replica layers construct them inside ``_internal_construction``
# so internal reuse stays silent — a user sees exactly one warning per
# deprecated entry point they themselves call.
_INTERNAL_DEPTH = 0


@contextlib.contextmanager
def _internal_construction():
    """Suppress deprecation warnings for framework-internal construction."""
    global _INTERNAL_DEPTH
    _INTERNAL_DEPTH += 1
    try:
        yield
    finally:
        _INTERNAL_DEPTH -= 1


def _warn_deprecated_facade(old: str, new: str) -> None:
    if _INTERNAL_DEPTH == 0:
        warnings.warn(
            f"{old} is deprecated as a public entry point; use {new} "
            "(see README 'Service API' for the migration table). "
            f"{old} keeps working unchanged this release.",
            DeprecationWarning,
            stacklevel=3,
        )


@dataclass
class StreamConfig:
    """Service tunables.

    Attributes
    ----------
    n_shards:
        Number of independent DynamicC engines.
    batch_max_ops:
        Micro-batch budget: a round is cut every this many operations.
    batch_max_age:
        Optional age budget in seconds (checked on ingest). Age-cut
        round boundaries are recorded in the oplog as flush markers,
        so durable services stay replay-exact with an age budget too.
    train_rounds:
        Non-empty rounds each shard observes (batch re-clustering +
        evolution capture) before fitting its models and switching to
        prediction.
    router:
        Placement policy: ``"hash"`` (stateless, the historical
        default) or ``"least-loaded"`` (new objects to the lightest
        shard, sticky thereafter; every decision is stamped into the
        logged operation, so recovery and replicas replay to identical
        placement). Switching hash → least-loaded over an existing log
        is safe — stamped and unstamped operations partition the same
        everywhere, and the router re-learns live placements on
        recovery. The reverse switch is refused at *ingest* time: once
        stamped placements have been applied, a hash router would send
        new operations for already-placed objects to the wrong shard.
        (Recovering or serving reads over stamped state with a hash
        config stays legal — that is exactly what a read replica of a
        least-loaded primary does.)
    oplog_path:
        Operation-log file; ``None`` runs the service ephemerally
        (no durability, no recovery).
    checkpoint_dir:
        Checkpoint directory; ``None`` disables checkpointing.
    log_backend:
        Operation-log storage: ``"jsonl"`` (one JSON line per record)
        or ``"sqlite"``. Interchangeable at the Operation level.
    checkpoint_backend:
        Snapshot storage: ``"json"`` (one file per snapshot) or
        ``"sqlite"`` (one database inside ``checkpoint_dir``).
    fsync:
        fsync the oplog on every append (power-loss durability).
    keep_checkpoints:
        Retained snapshot count.
    compact_on_checkpoint:
        Drop the oplog prefix a fresh checkpoint covers.
    telemetry:
        Observability recorder selection: ``None``/``"off"`` (default)
        runs the zero-cost no-op recorder — the hot path pays one
        guarded attribute lookup; ``"on"`` collects span latencies
        (p50/p95/p99 per instrumented site) and a Chrome-trace ring
        buffer into a fresh :class:`repro.obs.Telemetry`; passing a
        :class:`repro.obs.Telemetry` *instance* shares one collection
        point across services (primary + replicas + shipper), which is
        how :class:`~repro.replica.ReplicatedClusteringService` merges
        the whole topology into a single snapshot.
    obs_server:
        ``"host:port"`` to serve the operational surface over HTTP
        (``/metrics``, ``/metrics.json``, ``/traces``, ``/healthz``,
        ``/readyz``); port 0 picks a free port (read it back from
        :attr:`ClusteringService.obs_address`). ``None`` (default)
        serves nothing.
    node_name:
        This service's name in the topology — the ``replica`` label on
        ``e2e_visibility_seconds`` and the watermark gauges, and the
        structured-log component. Defaults to ``"primary"``;
        :class:`~repro.replica.ReadReplica` stamps its own name into
        the config it builds.
    log_stream:
        Writable text stream for structured JSON-lines logs
        (``sys.stderr``, an open file…); ``None`` (default) disables
        logging. See :class:`repro.obs.StructuredLogger`.
    """

    n_shards: int = 2
    batch_max_ops: int = 256
    batch_max_age: float | None = None
    train_rounds: int = 3
    router: str = "hash"
    oplog_path: Any = None
    checkpoint_dir: Any = None
    log_backend: str = "jsonl"
    checkpoint_backend: str = "json"
    fsync: bool = False
    keep_checkpoints: int = 3
    compact_on_checkpoint: bool = True
    telemetry: Any = None
    obs_server: str | None = None
    node_name: str = "primary"
    log_stream: Any = None

    def __post_init__(self) -> None:
        # All raises are ConfigError — a ValueError subclass, so the
        # historical contract holds — making StreamConfig the single
        # validation point ServeConfig delegates the shared knobs to.
        if self.obs_server is not None:
            parse_listen(self.obs_server)  # fail fast on a bad listen spec
        if self.telemetry not in TELEMETRY_SETTINGS and not hasattr(
            self.telemetry, "enabled"
        ):
            raise ConfigError(
                f"telemetry must be one of {TELEMETRY_SETTINGS} or a "
                f"Telemetry instance, got {self.telemetry!r}"
            )
        if self.n_shards < 1:
            raise ConfigError("n_shards must be >= 1")
        if self.train_rounds < 1:
            raise ConfigError("train_rounds must be >= 1")
        if self.router not in ROUTERS:
            raise ConfigError(
                f"router must be one of {ROUTERS}, got {self.router!r}"
            )
        if self.log_backend not in LOG_BACKENDS:
            raise ConfigError(
                f"log_backend must be one of {LOG_BACKENDS}, got {self.log_backend!r}"
            )
        if self.checkpoint_backend not in CHECKPOINT_BACKENDS:
            raise ConfigError(
                f"checkpoint_backend must be one of {CHECKPOINT_BACKENDS}, "
                f"got {self.checkpoint_backend!r}"
            )
        if self.fsync and self.oplog_path is None:
            raise ConfigError(
                "fsync=True without an oplog_path is contradictory: there "
                "is no durable log to fsync — set oplog_path or drop fsync"
            )

    def round_cut_params(self) -> dict[str, int]:
        """The parameters replay determinism depends on.

        Two services (a primary and a follower, a crashed run and its
        recovery) reproduce identical rounds from the same log iff
        these agree; storage backends and fsync policy are free to
        differ.
        """
        return {
            "n_shards": self.n_shards,
            "batch_max_ops": self.batch_max_ops,
            "train_rounds": self.train_rounds,
        }


class ClusteringService:
    """Durable, sharded clustering over an event stream.

    Parameters
    ----------
    engine_factory:
        Zero-argument callable building one fresh
        :class:`~repro.core.dynamicc.DynamicC` (with its own empty
        similarity graph) — called once per shard. Factories must be
        deterministic for crash recovery to be exact.
    config:
        Service tunables; defaults to an ephemeral two-shard service.
    """

    def __init__(self, engine_factory: EngineFactory, config: StreamConfig | None = None) -> None:
        _warn_deprecated_facade(
            "repro.stream.ClusteringService", "repro.serve.Service"
        )
        self.config = config or StreamConfig()
        self._engine_factory = engine_factory
        #: The observability recorder every layer reports into; the
        #: zero-cost no-op singleton unless ``config.telemetry`` says
        #: otherwise.
        self.telemetry = make_telemetry(self.config.telemetry)
        # Placement blocks align with the micro-batch budget so one
        # batch of new objects is (mostly) one engine's round.
        self.router = make_router(
            self.config.router, self.config.n_shards, chunk=self.config.batch_max_ops
        )
        self.shards = [
            StreamShard(
                index, engine_factory, self.config.train_rounds, obs=self.telemetry
            )
            for index in range(self.config.n_shards)
        ]
        self.membership = MembershipTable()
        self.metrics = MetricsRegistry(self.config.n_shards)
        self.batcher = MicroBatcher(
            max_ops=self.config.batch_max_ops, max_age=self.config.batch_max_age
        )
        self.oplog = (
            open_log(
                self.config.oplog_path,
                backend=self.config.log_backend,
                fsync=self.config.fsync,
            )
            if self.config.oplog_path is not None
            else None
        )
        if self.oplog is not None:
            self.oplog.obs = self.telemetry
        self.checkpoints = (
            open_checkpoints(
                self.config.checkpoint_dir,
                backend=self.config.checkpoint_backend,
                keep=self.config.keep_checkpoints,
            )
            if self.config.checkpoint_dir is not None
            else None
        )
        if self.checkpoints is not None:
            self.checkpoints.obs = self.telemetry
        #: Retry policy around checkpoint persistence (transient I/O
        #: heals in place; ENOSPC and exhaustion propagate typed).
        self._checkpoint_retry = RetryPolicy()
        #: Sequence number of the last operation applied to a shard.
        self.applied_seq = 0
        #: Freshness watermark of applied state: the newest
        #: ``Operation.ingest_ts`` folded into a shard (wall clock;
        #: ``None`` until a stamped operation is applied).
        self.applied_watermark_ts: float | None = None
        self.node_name = self.config.node_name
        #: Structured JSON-lines logger; disabled (constant-time no-op)
        #: unless ``config.log_stream`` is set.
        self.logger = (
            StructuredLogger(
                f"stream.{self.node_name}",
                self.config.log_stream,
                telemetry=self.telemetry,
            )
            if self.config.log_stream is not None
            else NULL_LOGGER
        )
        # Watermark instruments (no-ops on the null recorder): commit =
        # newest ingest accepted by this node, applied = newest ingest
        # visible to queries, and the end-to-end ingest→visible latency
        # distribution per node.
        self._commit_watermark = self.telemetry.gauge(
            "commit_watermark_ts",
            labels=("replica",),
            help="Wall-clock ingest_ts of the newest operation accepted",
        )
        self._applied_watermark = self.telemetry.gauge(
            "applied_watermark_ts",
            labels=("replica",),
            help="Wall-clock ingest_ts of the newest operation visible to queries",
        )
        self._visibility = self.telemetry.histogram(
            "e2e_visibility_seconds",
            labels=("replica",),
            help="Seconds from primary ingest to queryable on this node",
        )
        #: Component health checks behind ``/readyz``.
        self.health = HealthRegistry()
        self.health.register("oplog", check_oplog(self.oplog))
        self.health.register("checkpoints", check_checkpoints(self.checkpoints))
        self.health.register(
            "backlog",
            check_backlog(self, max_pending=4 * self.config.batch_max_ops),
        )
        self.obs_server = (
            ObsServer(
                self.config.obs_server,
                telemetry=self.telemetry,
                health=self.health,
                logger=self.logger if self.logger.enabled else None,
            ).start()
            if self.config.obs_server is not None
            else None
        )
        if self.logger.enabled:
            self.logger.info(
                "service_started",
                node=self.node_name,
                n_shards=self.config.n_shards,
                router=self.config.router,
                obs_address=self.obs_address,
            )
        #: True once any applied operation carried a routing stamp.
        #: Ingesting through a stateless hash router after that would
        #: route already-placed objects to the wrong shard, so ingest
        #: refuses (reads and replay stay legal — placement follows
        #: the stamps regardless of this service's router config).
        self.placements_stamped = False
        # Ephemeral stamping when no oplog is configured.
        self._next_seq = 1

    @property
    def obs_address(self) -> str | None:
        """Bound ``host:port`` of the obs HTTP server, ``None`` when off."""
        return self.obs_server.address if self.obs_server is not None else None

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(op: Operation | Sequence) -> Operation:
        if isinstance(op, Operation):
            return op
        kind, obj_id, *rest = op
        return Operation(kind, int(obj_id), rest[0] if rest else None)

    def ingest(self, operations: Iterable[Operation | Sequence]) -> int:
        """Log and buffer operations, applying every full micro-batch.

        Accepts :class:`Operation` objects or ``(kind, id[, payload])``
        tuples. Returns the number of operations accepted. Reads are
        eventually consistent: operations beyond the last full batch
        stay pending until more arrive or :meth:`flush` is called.
        """
        ops = [self._coerce(op) for op in operations]
        if any(op.kind == FLUSH for op in ops):
            raise ValueError(
                "flush markers are control records; call flush() instead"
            )
        if self.placements_stamped and self.config.router == "hash":
            raise RuntimeError(
                "this service's state contains stamped (least-loaded) "
                "placements; ingesting through router='hash' would route "
                "operations for already-placed objects to the wrong shard "
                "— recover/promote with router='least-loaded' instead"
            )
        # Stamp the freshness watermark: one wall-clock read per ingest
        # call, carried by every accepted operation through the log,
        # segments and replica apply. Pre-stamped operations (tests
        # injecting known times) keep their stamp.
        now = time.time()
        ops = [
            op if op.ingest_ts is not None else op.with_ingest_ts(now)
            for op in ops
        ]
        obs = self.telemetry
        if not obs.enabled:
            # The undecorated hot path: telemetry off costs exactly this
            # one attribute check per ingest call.
            ops = self.router.assign(ops)
            if self.oplog is not None:
                ops = self.oplog.append(ops)
            else:
                ops = [
                    op.with_seq(self._next_seq + offset)
                    for offset, op in enumerate(ops)
                ]
                self._next_seq += len(ops)
            self.metrics.events_ingested += len(ops)
            self.batcher.extend(ops)
            self._apply_ready()
            return len(ops)
        with obs.span("stream.ingest", ops=len(ops)):
            # Placement is decided here — before logging — so the stamped
            # assignment is durable and replays/ships verbatim.
            with obs.span("stream.route", ops=len(ops)):
                ops = self.router.assign(ops)
            if self.oplog is not None:
                ops = self.oplog.append(ops)
            else:
                ops = [
                    op.with_seq(self._next_seq + offset)
                    for offset, op in enumerate(ops)
                ]
                self._next_seq += len(ops)
            if ops:
                self._commit_watermark.labels(replica=self.node_name).set(
                    ops[-1].ingest_ts
                )
            self.metrics.events_ingested += len(ops)
            self.batcher.extend(ops)
            self._apply_ready()
        return len(ops)

    def flush(self) -> None:
        """Force the pending partial batch through as one round.

        The forced boundary is recorded in the oplog as a control
        marker, so a crash-recovery replay cuts rounds exactly where
        the live run did.
        """
        if not len(self.batcher):
            return  # nothing pending: no round, no marker
        if self.oplog is not None:
            self.oplog.append([Operation(FLUSH, 0)])
        batch = self.batcher.drain()
        if batch:
            self._apply_batch(batch)

    def _apply_ready(self) -> None:
        while self.batcher.ready():
            if len(self.batcher) < self.batcher.max_ops and self.oplog is not None:
                # Age-triggered cut: off the count grid, so it must be
                # recorded like an explicit flush or replay would cut
                # this round elsewhere.
                self.oplog.append([Operation(FLUSH, 0)])
            self._apply_batch(self.batcher.next_batch())

    def _apply_batch(self, batch: list[Operation]) -> None:
        obs = self.telemetry
        with obs.span("stream.batch.apply", ops=len(batch)):
            self._apply_batch_inner(batch)

    def _apply_batch_inner(self, batch: list[Operation]) -> None:
        obs = self.telemetry
        start = time.perf_counter()
        if not self.placements_stamped and any(
            op.shard is not None for op in batch
        ):
            self.placements_stamped = True
        for shard_index, slice_ops in sorted(self.router.partition(batch).items()):
            shard = self.shards[shard_index]
            round_ops = RoundOps.fold(slice_ops).normalized(shard.is_live)
            if obs.enabled:
                with obs.span(
                    "shard.apply", shard=shard_index, ops=len(round_ops)
                ):
                    phase, latency, stats = shard.apply(round_ops)
            else:
                phase, latency, stats = shard.apply(round_ops)
            if phase != "skip":
                self.metrics.shard(shard_index).record_round(
                    phase, len(round_ops), round_ops.ignored, latency, stats
                )
            else:
                # A round can normalise to nothing and still have
                # discarded operations worth counting.
                self.metrics.shard(shard_index).ops_ignored += round_ops.ignored
            for obj_id in round_ops.added:
                self.membership.add(obj_id, shard_index)
            for obj_id in round_ops.removed:
                self.membership.discard(obj_id)
            shard.last_applied_seq = slice_ops[-1].seq
            if slice_ops[-1].ingest_ts is not None:
                shard.last_applied_ts = slice_ops[-1].ingest_ts
        self.applied_seq = batch[-1].seq
        # Advance the applied watermark to the newest stamped operation
        # in the batch. Clamped >= 0 on the way into the histogram: the
        # watermark is wall-clock time from another process, and skew
        # must read as "very fresh", never as negative latency.
        batch_watermark = None
        for op in batch:
            if op.ingest_ts is not None:
                batch_watermark = op.ingest_ts
        if batch_watermark is not None:
            self.applied_watermark_ts = batch_watermark
            if obs.enabled:
                self._applied_watermark.labels(replica=self.node_name).set(
                    batch_watermark
                )
                visibility = self._visibility.labels(replica=self.node_name)
                applied_at = time.time()
                for op in batch:
                    if op.ingest_ts is not None:
                        visibility.record(max(0.0, applied_at - op.ingest_ts))
        self.metrics.batches_applied += 1
        self.metrics.batch_latency.record(time.perf_counter() - start)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def cluster_of(self, obj_id: int) -> str | None:
        """Global cluster id of a live object, ``None`` when unknown."""
        shard_index = self.membership.shard_of(obj_id)
        if shard_index is None:
            return None
        return global_cluster_id(shard_index, self.shards[shard_index].cluster_of(obj_id))

    def members(self, gcid: str) -> frozenset[int]:
        """Member object ids of a global cluster id."""
        shard_index, cid = parse_cluster_id(gcid)
        if not 0 <= shard_index < len(self.shards):
            raise KeyError(gcid)
        try:
            return self.shards[shard_index].members(cid)
        except KeyError:
            raise KeyError(gcid) from None

    def clusters(self) -> dict[str, frozenset[int]]:
        """All live clusters across shards, by global cluster id."""
        out: dict[str, frozenset[int]] = {}
        for shard in self.shards:
            for cid, members in shard.clusters().items():
                out[global_cluster_id(shard.index, cid)] = members
        return out

    def partition(self) -> frozenset[frozenset[int]]:
        """Canonical global partition (for equality tests / metrics)."""
        return frozenset(self.clusters().values())

    def num_objects(self) -> int:
        return len(self.membership)

    def stats(self, legacy: bool = True) -> dict:
        """Telemetry snapshot plus live engine/stream gauges.

        The canonical cross-layer shape (shared with
        :class:`~repro.replica.ReadReplica`,
        :class:`~repro.replica.ReplicatedClusteringService` and
        :class:`repro.serve.Service`): ``ops_total``, ``backlog``, the
        ``p50_s``/``p95_s``/``p99_s`` trio, and nested per-component
        dicts. ``legacy=True`` — the default for this release, flipping
        to ``False`` next — additionally emits the pre-1.4 aliases
        ``events_ingested`` and ``pending_ops``.
        """
        snapshot = self.metrics.snapshot(legacy=legacy)
        snapshot.update(
            backlog=len(self.batcher),
            router=self.config.router,
            routing=self.router.stats(),
            applied_seq=self.applied_seq,
            applied_watermark_ts=self.applied_watermark_ts,
            commit_watermark_ts=(
                self.oplog.last_watermark_ts if self.oplog is not None else None
            ),
            last_seq=self.oplog.last_seq if self.oplog is not None else self._next_seq - 1,
            pending_oldest_age_s=self.batcher.oldest_age(),
            num_objects=len(self.membership),
            num_clusters=sum(shard.num_clusters() for shard in self.shards),
            oplog_bytes=self.oplog.size_bytes() if self.oplog is not None else 0,
            oplog_reclaimed_bytes=(
                self.oplog.bytes_reclaimed if self.oplog is not None else 0
            ),
        )
        if legacy:
            snapshot["pending_ops"] = len(self.batcher)
        for shard, shard_stats in zip(self.shards, snapshot["shards"]):
            shard_stats.update(
                objects=shard.num_objects(),
                clusters=shard.num_clusters(),
                trained=shard.trained,
                last_applied_seq=shard.last_applied_seq,
            )
        snapshot["telemetry"] = self.telemetry.snapshot()
        return snapshot

    def apply_logged(
        self,
        operations: Iterable[Operation],
        *,
        expect_after: int | None = None,
        contiguous: bool = True,
    ) -> int | None:
        """Apply already-stamped (logged or shipped) operations.

        The shared tail of the recovery and replication paths: rounds
        are cut by count and logged flush markers only — wall-clock
        age cuts are suspended, because the arrival clock of a replay
        or a follower must never invent boundaries the primary's log
        doesn't record.

        When ``expect_after`` is given, sequence numbers must run
        contiguously from it (gap-refusing; a jump means the source log
        was compacted past this point); even without it, any jump after
        the first operation is refused. ``contiguous=False`` disables
        gap checking entirely — for *tenant-filtered* slices of a
        shared multi-tenant log (see :mod:`repro.serve`), where the
        holes between this tenant's sequence numbers are other tenants'
        traffic, not loss. Returns the last seq seen, or
        ``expect_after``/``None`` when ``operations`` is empty.
        """
        last_seen = expect_after
        saved_max_age = self.batcher.max_age
        self.batcher.max_age = None
        try:
            for operation in operations:
                if contiguous and last_seen is not None and operation.seq != last_seen + 1:
                    raise RuntimeError(
                        f"oplog gap: expected seq {last_seen + 1}, found "
                        f"{operation.seq}; the log no longer covers this point"
                    )
                last_seen = operation.seq
                if operation.kind == FLUSH:
                    batch = self.batcher.drain()
                    if batch:
                        self._apply_batch(batch)
                else:
                    # Already-stamped placements teach the router its
                    # load state (recovery, replicas, promotion).
                    self.router.observe(operation)
                    self.metrics.events_ingested += 1
                    self.batcher.add(operation)
                    self._apply_ready()
        finally:
            self.batcher.max_age = saved_max_age
        return last_seen

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def checkpoint(self):
        """Snapshot all shard state at the last applied sequence number.

        Pending (logged-but-unapplied) operations are deliberately NOT
        flushed first: they are recovered from the oplog suffix, which
        keeps micro-batch boundaries — and therefore recovered results —
        identical to an uninterrupted run. Returns the snapshot path.
        """
        if self.checkpoints is None:
            raise RuntimeError("service has no checkpoint_dir configured")
        state = {
            "applied_seq": self.applied_seq,
            "applied_watermark_ts": self.applied_watermark_ts,
            "n_shards": self.config.n_shards,
            # Round boundaries depend on these, so recovery must run
            # with the same values or replay would re-cut differently.
            "batch_max_ops": self.config.batch_max_ops,
            "train_rounds": self.config.train_rounds,
            # Recorded so a later ingest can refuse the unsafe
            # least-loaded → hash downgrade (sticky placements would be
            # abandoned); the router name is informational.
            "router": self.config.router,
            "placements_stamped": self.placements_stamped,
            "shards": [shard.checkpoint_state() for shard in self.shards],
        }
        with self.telemetry.span("checkpoint.save", applied_seq=self.applied_seq):
            # Transient I/O heals under backoff; exhaustion (or a
            # non-retryable ENOSPC) propagates for the serve layer's
            # breakers to turn into degraded mode.
            path = self._checkpoint_retry.run(
                lambda: self.checkpoints.save(state),
                boundary="checkpoint.save",
                obs=self.telemetry,
            )
        if self.logger.enabled:
            self.logger.info("checkpoint_saved", applied_seq=self.applied_seq)
        if self.oplog is not None and self.config.compact_on_checkpoint:
            # Compact only past the *oldest retained* snapshot, not the
            # newest: falling back to an older checkpoint (e.g. when the
            # newest is corrupt) needs the log from that seq forward.
            # truncate_through (vs bare compact) accrues the
            # reclaimed-bytes gauge stats() reports.
            self.oplog.truncate_through(min(self.checkpoints.list_seqs()))
        self.metrics.checkpoints_taken += 1
        return path

    @classmethod
    def recover(
        cls,
        engine_factory: EngineFactory,
        config: StreamConfig,
        *,
        snapshot: dict | None = None,
    ) -> "ClusteringService":
        """Rebuild a service after a crash: latest checkpoint + log replay.

        Works from any durable subset — with no checkpoint the whole log
        is replayed from scratch; with no log the checkpoint alone is
        restored (losing only operations logged after it, which without
        an oplog were never durable anyway). A replication bootstrap can
        hand the snapshot in directly via ``snapshot`` (e.g. one shipped
        from a primary) instead of reading the local checkpoint store.
        """
        service = cls(engine_factory, config)
        state = snapshot
        if state is None and service.checkpoints is not None:
            with service.telemetry.span("checkpoint.load"):
                state = service.checkpoints.load_latest()
        if state is not None:
            for field_name, want in config.round_cut_params().items():
                # Older checkpoints may predate a field; only a recorded
                # mismatch is definitely divergence-inducing.
                have = state.get(field_name)
                if have is not None and int(have) != want:
                    raise ValueError(
                        f"checkpoint has {field_name}={have}, config wants "
                        f"{want}; recovery with different round-cutting "
                        "parameters would silently diverge"
                    )
            # Older checkpoints predate the flag; a least-loaded writer
            # implies stamped placements.
            service.placements_stamped = bool(
                state.get(
                    "placements_stamped", state.get("router") == "least-loaded"
                )
            )
            service.shards = [
                StreamShard.restore(
                    shard_state,
                    engine_factory,
                    config.train_rounds,
                    obs=service.telemetry,
                )
                for shard_state in state["shards"]
            ]
            service.applied_seq = int(state["applied_seq"])
            watermark = state.get("applied_watermark_ts")
            service.applied_watermark_ts = (
                float(watermark) if watermark is not None else None
            )
            restored_ids = [list(shard.object_ids()) for shard in service.shards]
            service.membership.rebuild(restored_ids)
            service.router.rebuild(restored_ids)
            # Fast-forward the sequence stampers past the checkpoint:
            # recovering without a log (or from a lost/compacted one)
            # must not re-issue already-used sequence numbers, or new
            # checkpoints would sort below the stale one and the next
            # recovery would silently discard everything since.
            service._next_seq = max(service._next_seq, service.applied_seq + 1)
            if service.oplog is not None:
                service.oplog.last_seq = max(
                    service.oplog.last_seq, service.applied_seq
                )
        if service.oplog is not None:
            with service.telemetry.span(
                "recover.replay", after_seq=service.applied_seq
            ):
                service.apply_logged(
                    service.oplog.replay(after_seq=service.applied_seq),
                    expect_after=service.applied_seq,
                )
        service.metrics.recoveries += 1
        return service

    def close(self) -> None:
        if self.logger.enabled:
            self.logger.info("service_closing", applied_seq=self.applied_seq)
        if self.obs_server is not None:
            self.obs_server.close()
        if self.oplog is not None:
            self.oplog.close()
        if self.checkpoints is not None:
            self.checkpoints.close()

    def __enter__(self) -> "ClusteringService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
