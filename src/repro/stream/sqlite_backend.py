"""sqlite storage backends for the operation log and checkpoint store.

One file per artefact, stdlib ``sqlite3`` only. The schema is
deliberately dumb — ``(seq INTEGER PRIMARY KEY, record TEXT)`` rows
holding the same canonical JSON the JSONL backend writes per line — so
the two backends are interchangeable at the Operation level: healing a
torn tail, replaying a suffix and compacting a prefix all produce
identical operation sequences.

Torn-tail healing: sqlite's own journal makes *committed* transactions
atomic, but the log must also survive media-level damage and writers
that died mid-transaction under journal modes that can't roll back
(or rows scribbled by other tools). Open-time healing therefore
re-validates the row stream exactly like the JSONL backend validates
lines: scan in seq order, stop at the first row that fails to decode
or breaks seq contiguity, and delete it and everything after it.
"""

from __future__ import annotations

import json
import pathlib
import sqlite3
from typing import Iterator, Sequence

from repro.faults.inject import fire

from .checkpoint import CheckpointStore
from .events import Operation
from .oplog import LogBackend


def _connect(path: pathlib.Path, fsync: bool) -> sqlite3.Connection:
    path.parent.mkdir(parents=True, exist_ok=True)
    conn = sqlite3.connect(str(path))
    conn.isolation_level = None  # explicit BEGIN/COMMIT
    # NORMAL matches the JSONL backend's flush-but-no-fsync default;
    # FULL buys power-loss durability like fsync=True does there.
    conn.execute(f"PRAGMA synchronous={'FULL' if fsync else 'NORMAL'}")
    return conn


class SqliteOperationLog(LogBackend):
    """Seq-addressed operation log stored as rows in one sqlite file."""

    def __init__(self, path, fsync: bool = False) -> None:
        self.path = pathlib.Path(path)
        self.fsync = fsync
        self._conn = _connect(self.path, fsync)
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS oplog ("
            "seq INTEGER PRIMARY KEY, record TEXT NOT NULL)"
        )
        self.last_seq = self._heal_tail()

    def _heal_tail(self) -> int:
        """Delete every row at or after the first undecodable one.

        Mirrors the JSONL heal rule exactly: scan in order, stop at the
        first record that fails to decode (or disagrees with its own
        row key), drop it and everything after it, and report the last
        surviving seq. Seq *gaps* between valid records survive healing
        on both backends — the recovery replay owns gap detection.
        """
        last_seq = 0
        torn_seq = None
        for seq, record in self._conn.execute(
            "SELECT seq, record FROM oplog ORDER BY seq"
        ):
            try:
                operation = Operation.from_dict(json.loads(record))
            except Exception:
                torn_seq = seq
                break
            if operation.seq != seq:
                torn_seq = seq
                break
            last_seq = seq
            if operation.ingest_ts is not None:
                self.last_watermark_ts = operation.ingest_ts
        if torn_seq is not None:
            self._conn.execute("BEGIN")
            self._conn.execute("DELETE FROM oplog WHERE seq >= ?", (torn_seq,))
            self._conn.execute("COMMIT")
        return last_seq

    # ------------------------------------------------------------------
    def _rollback(self) -> None:
        """Abandon an in-flight transaction so the connection stays usable.

        A fault injected between BEGIN and COMMIT leaves the connection
        mid-transaction; without the rollback the *retry* would die on
        "cannot start a transaction within a transaction" instead of
        exercising the recovery path. On-disk state is unchanged either
        way — an uncommitted transaction is exactly what crash recovery
        discards.
        """
        try:
            self._conn.execute("ROLLBACK")
        except sqlite3.Error:
            pass  # no transaction active, or the connection is gone

    def _insert(self, rows: list[tuple[int, str]]) -> None:
        if not rows:
            return
        fire("oplog.append", self.path)
        obs = self.obs
        try:
            if obs.enabled:
                # The COMMIT is where sqlite pays its durability cost (the
                # fsync analogue under synchronous=FULL), so it gets its own
                # span like the JSONL backend's oplog.fsync.
                with obs.span("oplog.append", records=len(rows)):
                    self._conn.execute("BEGIN")
                    self._conn.executemany(
                        "INSERT INTO oplog (seq, record) VALUES (?, ?)", rows
                    )
                    fire("oplog.fsync", self.path)
                    with obs.span("oplog.fsync"):
                        self._conn.execute("COMMIT")
                return
            self._conn.execute("BEGIN")
            self._conn.executemany(
                "INSERT INTO oplog (seq, record) VALUES (?, ?)", rows
            )
            fire("oplog.fsync", self.path)
            self._conn.execute("COMMIT")
        except BaseException:  # includes InjectedCrash
            self._rollback()
            raise

    def append(self, operations: Sequence[Operation]) -> list[Operation]:
        stamped = []
        rows = []
        seq = self.last_seq
        watermark = self.last_watermark_ts
        for operation in operations:
            seq += 1
            stamped_op = operation.with_seq(seq)
            stamped.append(stamped_op)
            rows.append((seq, json.dumps(stamped_op.to_dict())))
            if stamped_op.ingest_ts is not None:
                watermark = stamped_op.ingest_ts
        self._insert(rows)
        self.last_seq = seq
        self.last_watermark_ts = watermark
        return stamped

    def append_stamped(self, operations: Sequence[Operation]) -> int:
        rows = []
        seq = self.last_seq
        watermark = self.last_watermark_ts
        for operation in operations:
            if operation.seq != seq + 1:
                raise ValueError(
                    f"stamped append breaks contiguity: expected seq "
                    f"{seq + 1}, got {operation.seq}"
                )
            seq = operation.seq
            rows.append((seq, json.dumps(operation.to_dict())))
            if operation.ingest_ts is not None:
                watermark = operation.ingest_ts
        self._insert(rows)
        self.last_seq = seq
        self.last_watermark_ts = watermark
        return len(rows)

    def iter_from(self, after_seq: int = 0) -> Iterator[Operation]:
        bound = self.last_seq
        for (record,) in self._conn.execute(
            "SELECT record FROM oplog WHERE seq > ? AND seq <= ? ORDER BY seq",
            (after_seq, bound),
        ):
            yield Operation.from_dict(json.loads(record))

    def compact(self, upto_seq: int) -> int:
        fire("oplog.compact", self.path)
        try:
            self._conn.execute("BEGIN")
            dropped = self._conn.execute(
                "DELETE FROM oplog WHERE seq <= ?", (upto_seq,)
            ).rowcount
            fire("oplog.fsync", self.path)
            self._conn.execute("COMMIT")
        except BaseException:
            self._rollback()
            raise
        if dropped:
            fire("oplog.compact", self.path)
            # Reclaim the pages too — the JSONL backend rewrites its
            # file on compact, and the whole point of compaction is a
            # bounded on-disk footprint (size_bytes feeds oplog_bytes /
            # reclaimed-bytes telemetry, which must not sit at the
            # high-water mark forever). A no-op delete skips the VACUUM:
            # rewriting the whole database to drop zero rows would make
            # every steady-state checkpoint O(log size).
            self._conn.execute("VACUUM")
        return self._conn.execute("SELECT COUNT(*) FROM oplog").fetchone()[0]

    def size_bytes(self) -> int:
        page_count = self._conn.execute("PRAGMA page_count").fetchone()[0]
        page_size = self._conn.execute("PRAGMA page_size").fetchone()[0]
        return page_count * page_size

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "SqliteOperationLog":
        return self


class SqliteCheckpointStore(CheckpointStore):
    """Numbered JSON snapshots as rows in one sqlite file.

    Snapshots matter more than throughput, so commits always run at
    ``synchronous=FULL`` regardless of the service's oplog fsync
    setting — the checkpoint is what compaction trusts.
    """

    def __init__(self, path, keep: int = 3) -> None:
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.path = pathlib.Path(path)
        self.keep = keep
        self._conn = _connect(self.path, fsync=True)
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS checkpoints ("
            "applied_seq INTEGER PRIMARY KEY, state TEXT NOT NULL)"
        )

    def list_seqs(self) -> list[int]:
        return [
            row[0]
            for row in self._conn.execute(
                "SELECT applied_seq FROM checkpoints ORDER BY applied_seq"
            )
        ]

    def save(self, state: dict) -> pathlib.Path:
        applied_seq = int(state["applied_seq"])
        fire("checkpoint.save", self.path)
        try:
            self._conn.execute("BEGIN")
            self._conn.execute(
                "INSERT OR REPLACE INTO checkpoints (applied_seq, state) "
                "VALUES (?, ?)",
                (applied_seq, json.dumps(state)),
            )
            self._conn.execute("COMMIT")
        except BaseException:
            try:
                self._conn.execute("ROLLBACK")
            except sqlite3.Error:
                pass
            raise
        self.prune()
        return self.path

    def load_latest(self) -> dict | None:
        fire("checkpoint.load", self.path)
        for (state,) in self._conn.execute(
            "SELECT state FROM checkpoints ORDER BY applied_seq DESC"
        ):
            try:
                return json.loads(state)
            except json.JSONDecodeError:
                continue
        return None

    def prune(self) -> None:
        seqs = self.list_seqs()
        if len(seqs) <= self.keep:
            return
        cutoff = seqs[-self.keep]
        self._conn.execute("BEGIN")
        self._conn.execute(
            "DELETE FROM checkpoints WHERE applied_seq < ?", (cutoff,)
        )
        self._conn.execute("COMMIT")

    def close(self) -> None:
        self._conn.close()
