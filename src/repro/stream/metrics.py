"""Service telemetry: per-round latency, throughput and engine counters.

KnobCF-style instrumentation as a first-class service concern: every
applied round records its latency and operation counts per shard, and
the engine's own :class:`~repro.core.dynamicc.RoundStats` counters
(merges, splits, verifications…) are accumulated alongside. A
:meth:`MetricsRegistry.snapshot` is a plain dict, ready for a JSON
endpoint or a benchmark artefact.

Latency series are :class:`repro.obs.Histogram`-backed, so every
``*_latency`` entry in a snapshot carries streaming p50/p95/p99
alongside the mean — percentiles are what SLO-aware batching and the
tuning work consume; means alone hide the tail.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.metrics import Histogram


class LatencyStat(Histogram):
    """Streaming summary of a latency series in seconds (with percentiles)."""

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total_s": self.total,
            "mean_s": self.mean,
            "min_s": self.minimum if self.count else 0.0,
            "max_s": self.maximum,
            "last_s": self.last,
            "p50_s": self.percentile(0.50),
            "p95_s": self.percentile(0.95),
            "p99_s": self.percentile(0.99),
        }


@dataclass
class ShardMetrics:
    """Counters for one shard's engine."""

    rounds_observed: int = 0
    rounds_predicted: int = 0
    ops_applied: int = 0
    ops_ignored: int = 0
    round_latency: LatencyStat = field(default_factory=LatencyStat)
    # Accumulated RoundStats counters (prediction rounds only).
    merges_applied: int = 0
    splits_applied: int = 0
    moves_applied: int = 0
    verifications: int = 0
    candidates_scored: int = 0
    rejected: int = 0

    def record_round(self, phase: str, n_ops: int, ignored: int, latency: float, round_stats=None) -> None:
        if phase == "observe":
            self.rounds_observed += 1
        else:
            self.rounds_predicted += 1
        self.ops_applied += n_ops
        self.ops_ignored += ignored
        self.round_latency.record(latency)
        if round_stats is not None:
            self.merges_applied += round_stats.merges_applied
            self.splits_applied += round_stats.splits_applied
            self.moves_applied += round_stats.moves_applied
            self.verifications += round_stats.verifications
            self.candidates_scored += round_stats.candidates_scored
            self.rejected += round_stats.rejected

    def to_dict(self) -> dict:
        latency = self.round_latency.to_dict()
        return {
            # Canonical stats() shape (shared by stream/replica/serve):
            # every component reports ops_total and p50_s/p95_s/p99_s.
            "ops_total": self.ops_applied,
            "p50_s": latency["p50_s"],
            "p95_s": latency["p95_s"],
            "p99_s": latency["p99_s"],
            "rounds_observed": self.rounds_observed,
            "rounds_predicted": self.rounds_predicted,
            "ops_applied": self.ops_applied,
            "ops_ignored": self.ops_ignored,
            "round_latency": latency,
            "merges_applied": self.merges_applied,
            "splits_applied": self.splits_applied,
            "moves_applied": self.moves_applied,
            "verifications": self.verifications,
            "candidates_scored": self.candidates_scored,
            "rejected": self.rejected,
        }


class MetricsRegistry:
    """All service-level counters, keyed by shard plus stream totals."""

    def __init__(self, n_shards: int) -> None:
        self.shards = [ShardMetrics() for _ in range(n_shards)]
        self.events_ingested = 0
        self.batches_applied = 0
        self.batch_latency = LatencyStat()
        self.checkpoints_taken = 0
        self.recoveries = 0

    def shard(self, index: int) -> ShardMetrics:
        return self.shards[index]

    def throughput_events_per_s(self) -> float:
        """Applied operations per second of round-processing time."""
        busy = sum(shard.round_latency.total for shard in self.shards)
        applied = sum(shard.ops_applied for shard in self.shards)
        return applied / busy if busy > 0 else 0.0

    def snapshot(self, legacy: bool = True) -> dict:
        """Counters as one dict, in the canonical stats() key shape.

        ``ops_total`` and the ``p50_s``/``p95_s``/``p99_s`` percentile
        trio (of batch-apply latency) are the cross-layer contract;
        ``legacy=True`` (the default, for one release) additionally
        emits the pre-1.4 alias ``events_ingested``.
        """
        latency = self.batch_latency.to_dict()
        out = {
            "ops_total": self.events_ingested,
            "p50_s": latency["p50_s"],
            "p95_s": latency["p95_s"],
            "p99_s": latency["p99_s"],
            "batches_applied": self.batches_applied,
            "batch_latency": latency,
            "throughput_events_per_s": self.throughput_events_per_s(),
            "checkpoints_taken": self.checkpoints_taken,
            "recoveries": self.recoveries,
            "shards": [shard.to_dict() for shard in self.shards],
        }
        if legacy:
            out["events_ingested"] = self.events_ingested
        return out
