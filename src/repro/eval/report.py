"""Fixed-width table rendering for the benchmark harness.

Every bench prints the paper's reported values next to the measured
ones; this keeps the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def format_cell(value: Any, precision: int = 3) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Render an aligned ASCII table."""
    rendered_rows = [[format_cell(cell, precision) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(separator)
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
    precision: int = 3,
) -> None:
    print()
    print(render_table(headers, rows, title=title, precision=precision))
