"""Pair-counting clustering metrics (§7.1 "Measurement", citing [7]).

Two objects form a *positive pair* when they share a cluster. Comparing
a candidate clustering against a reference (the paper uses the batch
algorithm's result as ground truth):

* pair precision — fraction of the candidate's co-clustered pairs that
  are co-clustered in the reference;
* pair recall — fraction of the reference's co-clustered pairs the
  candidate reproduces;
* pair F1 — their harmonic mean (Table 2's measure).

Computed from the contingency table in O(n + #non-empty cells), never
materialising pairs — the Road workloads have clusters with thousands
of members.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping


def _pairs(count: int) -> int:
    return count * (count - 1) // 2


def _labels_of(clustering) -> dict[int, int]:
    """Accept a Clustering, a mapping, or an iterable of groups."""
    if hasattr(clustering, "labels"):
        return clustering.labels()
    if isinstance(clustering, Mapping):
        return dict(clustering)
    labels: dict[int, int] = {}
    for idx, group in enumerate(clustering):
        for obj_id in group:
            labels[obj_id] = idx
    return labels


@dataclass(frozen=True)
class PairMetrics:
    """Pairwise precision / recall / F1 between candidate and reference."""

    precision: float
    recall: float
    f1: float
    true_pairs: int
    candidate_pairs: int
    reference_pairs: int


def pair_metrics(candidate, reference) -> PairMetrics:
    """Pair-counting metrics of ``candidate`` against ``reference``.

    Both arguments may be :class:`~repro.clustering.state.Clustering`
    instances, ``{object: label}`` mappings, or iterables of groups.
    Only objects present in *both* clusterings are compared.
    """
    cand = _labels_of(candidate)
    ref = _labels_of(reference)
    common = cand.keys() & ref.keys()

    cand_sizes: dict[int, int] = {}
    ref_sizes: dict[int, int] = {}
    cells: dict[tuple[int, int], int] = {}
    for obj_id in common:
        c_label = cand[obj_id]
        r_label = ref[obj_id]
        cand_sizes[c_label] = cand_sizes.get(c_label, 0) + 1
        ref_sizes[r_label] = ref_sizes.get(r_label, 0) + 1
        cells[(c_label, r_label)] = cells.get((c_label, r_label), 0) + 1

    true_pairs = sum(_pairs(count) for count in cells.values())
    candidate_pairs = sum(_pairs(count) for count in cand_sizes.values())
    reference_pairs = sum(_pairs(count) for count in ref_sizes.values())

    precision = true_pairs / candidate_pairs if candidate_pairs else 1.0
    recall = true_pairs / reference_pairs if reference_pairs else 1.0
    f1 = 2 * precision * recall / (precision + recall) if (precision + recall) else 0.0
    return PairMetrics(
        precision=precision,
        recall=recall,
        f1=f1,
        true_pairs=true_pairs,
        candidate_pairs=candidate_pairs,
        reference_pairs=reference_pairs,
    )


def pair_f1(candidate, reference) -> float:
    """Shorthand for :func:`pair_metrics`'s F1."""
    return pair_metrics(candidate, reference).f1
