"""Experiment harness: run clustering methods over dynamic workloads.

This is the machinery behind every figure/table bench: it feeds a
:class:`~repro.data.workload.DynamicWorkload` to a method, times each
round's re-clustering, and records the per-round clustering labels so
quality metrics (pair F1 against the batch reference, objective scores)
can be computed afterwards.

Supported execution modes (§7.1 "Comparison"):

* batch reference — re-cluster from scratch every snapshot;
* incremental methods (Naive / Greedy / DynamicC) — stateful rounds;
* DynamicC's two evaluation scenarios: **DynamicSet** (each round starts
  from DynamicC's own previous output — the default stateful mode) and
  **GreedySet** (each round starts from the reference method's previous
  output, via ``reset_from``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.clustering.incremental import IncrementalClusterer
from repro.clustering.state import Clustering
from repro.core.dynamicc import DynamicC
from repro.data.workload import DynamicWorkload
from repro.eval.pair_metrics import PairMetrics, pair_metrics
from repro.similarity.graph import SimilarityGraph


class BatchAlgorithm(Protocol):
    """Anything with a HillClimbing-compatible ``cluster`` method."""

    def cluster(self, graph: SimilarityGraph, initial=None, log=None, restrict_to=None) -> Clustering:
        ...


ScoreFn = Callable[[Clustering], float]


@dataclass
class RoundRecord:
    """Observed outcome of one snapshot for one method."""

    index: int
    phase: str  # "observe" or "predict"
    latency: float
    num_clusters: int
    labels: dict[int, int]
    score: float | None = None
    extra: dict = field(default_factory=dict)


@dataclass
class MethodRun:
    """Per-round results of one method over one workload."""

    name: str
    rounds: list[RoundRecord] = field(default_factory=list)
    train_time: float = 0.0
    bootstrap_labels: dict[int, int] = field(default_factory=dict)

    def predict_rounds(self) -> list[RoundRecord]:
        return [r for r in self.rounds if r.phase == "predict"]

    def latencies(self) -> list[float]:
        return [r.latency for r in self.predict_rounds()]

    def total_latency(self) -> float:
        return sum(self.latencies())

    def scores(self) -> list[float]:
        return [r.score for r in self.predict_rounds() if r.score is not None]


def _load_initial(graph: SimilarityGraph, workload: DynamicWorkload) -> None:
    for obj_id, payload in workload.initial.items():
        graph.add_object(obj_id, payload)


def _apply_snapshot_to_graph(graph: SimilarityGraph, snapshot) -> None:
    for obj_id in snapshot.removed:
        graph.remove_object(obj_id)
    for obj_id, payload in snapshot.updated.items():
        graph.update_object(obj_id, payload)
    for obj_id, payload in snapshot.added.items():
        graph.add_object(obj_id, payload)


def run_batch_per_round(
    workload: DynamicWorkload,
    batch_factory: Callable[[], BatchAlgorithm],
    score_fn: ScoreFn | None = None,
    name: str = "batch",
) -> MethodRun:
    """Re-cluster from scratch every snapshot (the paper's ground truth)."""
    graph = workload.dataset.graph()
    _load_initial(graph, workload)
    run = MethodRun(name=name)

    batch = batch_factory()
    start = time.perf_counter()
    clustering = batch.cluster(graph)
    bootstrap_latency = time.perf_counter() - start
    run.bootstrap_labels = clustering.labels()
    run.rounds.append(
        RoundRecord(
            index=0,
            phase="predict",
            latency=bootstrap_latency,
            num_clusters=clustering.num_clusters(),
            labels=clustering.labels(),
            score=score_fn(clustering) if score_fn else None,
        )
    )
    for index, snapshot in enumerate(workload.snapshots, start=1):
        _apply_snapshot_to_graph(graph, snapshot)
        batch = batch_factory()
        start = time.perf_counter()
        clustering = batch.cluster(graph)
        latency = time.perf_counter() - start
        run.rounds.append(
            RoundRecord(
                index=index,
                phase="predict",
                latency=latency,
                num_clusters=clustering.num_clusters(),
                labels=clustering.labels(),
                score=score_fn(clustering) if score_fn else None,
            )
        )
    return run


def run_incremental(
    workload: DynamicWorkload,
    method_factory: Callable[[SimilarityGraph], IncrementalClusterer],
    bootstrap: Callable[[SimilarityGraph], Clustering] | None = None,
    train_rounds: int = 0,
    score_fn: ScoreFn | None = None,
    reset_from: MethodRun | None = None,
    name: str | None = None,
) -> MethodRun:
    """Run a stateful incremental method over the workload.

    Parameters
    ----------
    bootstrap:
        Builds the round-0 clustering over the initial records (usually
        the batch algorithm); all-singletons when omitted.
    train_rounds:
        For DynamicC methods: the first ``train_rounds`` snapshots are
        consumed as *observation* rounds (batch runs + evolution
        capture) followed by model fitting; other methods process them
        normally but the rounds are tagged "observe" so benches can
        compare prediction rounds only.
    reset_from:
        GreedySet mode — before each prediction round the method's
        clustering is reset to this run's previous-round labels.
    score_fn:
        Optional clustering score recorded per round.
    """
    graph = workload.dataset.graph()
    _load_initial(graph, workload)
    method = method_factory(graph)
    run = MethodRun(name=name or method.name)

    if bootstrap is not None:
        method.bootstrap(bootstrap(graph))
    else:
        method.bootstrap(Clustering.singletons(graph))
    run.bootstrap_labels = method.clustering.labels()

    is_dynamicc = isinstance(method, DynamicC)
    trained = False
    for index, snapshot in enumerate(workload.snapshots, start=1):
        observing = is_dynamicc and index <= train_rounds
        if is_dynamicc and not observing and not trained:
            start = time.perf_counter()
            method.train()
            run.train_time += time.perf_counter() - start
            trained = True
        if reset_from is not None and not observing:
            # GreedySet: start this round from the reference method's
            # clustering *after the previous snapshot*.
            if index == 1:
                previous = reset_from.bootstrap_labels
            else:
                previous = next(
                    r.labels for r in reset_from.rounds if r.index == index - 1
                )
            method.bootstrap(Clustering.from_labels(graph, previous))

        if observing:
            start = time.perf_counter()
            method.observe_round(
                added=snapshot.added,
                removed=snapshot.removed,
                updated=snapshot.updated,
            )
            latency = time.perf_counter() - start
            run.train_time += latency
        else:
            # Graph maintenance is untimed — it is identical for every
            # method including the batch reference, whose timing also
            # excludes it (§7.1 reports *re-clustering* latency).
            method.ingest(
                added=snapshot.added,
                removed=snapshot.removed,
                updated=snapshot.updated,
            )
            start = time.perf_counter()
            method.recluster()
            latency = time.perf_counter() - start

        clustering = method.clustering
        extra: dict = {}
        if is_dynamicc and not observing:
            stats = method.last_round_stats
            extra = {
                "verifications": stats.verifications,
                "merges": stats.merges_applied,
                "splits": stats.splits_applied,
                "candidates": stats.candidates_scored,
                "rejected": stats.rejected,
            }
        run.rounds.append(
            RoundRecord(
                index=index,
                phase="observe" if observing else "predict",
                latency=latency,
                num_clusters=clustering.num_clusters(),
                labels=clustering.labels(),
                score=score_fn(clustering) if score_fn else None,
                extra=extra,
            )
        )
    if is_dynamicc and not trained:
        raise ValueError(
            "train_rounds consumed every snapshot; leave prediction rounds"
        )
    return run


def f1_against_reference(run: MethodRun, reference: MethodRun) -> list[PairMetrics]:
    """Per-round pair metrics of a method against the batch reference.

    Reference round indices are matched by snapshot index (the batch run
    has a round 0 for the initial clustering; incremental runs start at
    round 1).
    """
    ref_by_index = {r.index: r for r in reference.rounds}
    out = []
    for record in run.predict_rounds():
        ref = ref_by_index[record.index]
        out.append(pair_metrics(record.labels, ref.labels))
    return out
