"""Purity [50] and inverse purity [9] (Table 3's extra metrics).

Purity maps each candidate cluster to its best-matching reference
cluster and measures the covered fraction; inverse purity swaps the
roles. Purity rewards precision-like behaviour (homogeneous clusters),
inverse purity rewards recall-like behaviour (complete clusters).
"""

from __future__ import annotations

from .pair_metrics import _labels_of


def purity(candidate, reference) -> float:
    """(1/N) Σ over candidate clusters of max overlap with a reference cluster."""
    cand = _labels_of(candidate)
    ref = _labels_of(reference)
    common = cand.keys() & ref.keys()
    if not common:
        return 1.0
    overlap: dict[int, dict[int, int]] = {}
    for obj_id in common:
        row = overlap.setdefault(cand[obj_id], {})
        r_label = ref[obj_id]
        row[r_label] = row.get(r_label, 0) + 1
    return sum(max(row.values()) for row in overlap.values()) / len(common)


def inverse_purity(candidate, reference) -> float:
    """Purity with the roles of candidate and reference swapped."""
    return purity(reference, candidate)
