"""Clustering-quality metrics and reporting (§7.1 "Measurement")."""

from .pair_metrics import PairMetrics, pair_f1, pair_metrics
from .purity import inverse_purity, purity
from .report import print_table, render_table

__all__ = [
    "PairMetrics",
    "inverse_purity",
    "pair_f1",
    "pair_metrics",
    "print_table",
    "purity",
    "render_table",
]
