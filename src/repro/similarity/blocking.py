"""Candidate generation (blocking) for the dynamic similarity graph.

Scoring every pair of objects is quadratic; record-linkage systems use
*blocking* to propose only plausibly-similar candidate pairs. We provide
three interchangeable indexes:

* :class:`BruteForceIndex` — every other object is a candidate. Exact,
  used in tests and for small workloads.
* :class:`TokenBlockingIndex` — textual records share a block per token
  (standard token blocking for entity resolution).
* a spatial grid for numeric vectors lives in :mod:`repro.similarity.grid_index`.

All indexes support dynamic add/remove, matching the paper's dynamic
workload (add/remove/update operations, §3.1).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import defaultdict
from typing import Any, Callable, Iterable

from .jaccard import tokenize


class CandidateIndex(ABC):
    """Dynamic index proposing candidate neighbours for a payload."""

    @abstractmethod
    def add(self, obj_id: int, payload: Any) -> None:
        """Register an object with the index."""

    @abstractmethod
    def remove(self, obj_id: int, payload: Any) -> None:
        """Remove a previously-added object."""

    @abstractmethod
    def candidates(self, payload: Any) -> set[int]:
        """Object ids that could be similar to ``payload``.

        The returned set may contain the querying object's own id; the
        similarity graph filters self-pairs.
        """


class BruteForceIndex(CandidateIndex):
    """All registered objects are candidates (exact, O(n) per query)."""

    def __init__(self) -> None:
        self._ids: set[int] = set()

    def add(self, obj_id: int, payload: Any) -> None:
        self._ids.add(obj_id)

    def remove(self, obj_id: int, payload: Any) -> None:
        self._ids.discard(obj_id)

    def candidates(self, payload: Any) -> set[int]:
        return set(self._ids)

    def __len__(self) -> int:
        return len(self._ids)


class TokenBlockingIndex(CandidateIndex):
    """Token blocking: objects sharing at least one token are candidates.

    Parameters
    ----------
    key:
        Extracts the blocking tokens from a payload. Defaults to
        tokenizing ``str(payload)``; dataset generators pass a custom key
        returning pre-computed token sets.
    max_block_size:
        Tokens whose block grows beyond this many objects are treated as
        stop words and stop generating candidates (a standard guard
        against huge blocks dominating the candidate count). ``None``
        disables the guard.
    """

    def __init__(
        self,
        key: Callable[[Any], Iterable[str]] | None = None,
        max_block_size: int | None = 200,
    ) -> None:
        self._key = key if key is not None else lambda payload: tokenize(str(payload))
        self._blocks: dict[str, set[int]] = defaultdict(set)
        self._max_block_size = max_block_size
        # Tokens computed at add time, so remove never re-tokenizes.
        self._tokens: dict[int, tuple[str, ...]] = {}

    def add(self, obj_id: int, payload: Any) -> None:
        tokens = tuple(self._key(payload))
        self._tokens[obj_id] = tokens
        for token in tokens:
            self._blocks[token].add(obj_id)

    def remove(self, obj_id: int, payload: Any) -> None:
        tokens = self._tokens.pop(obj_id, None)
        if tokens is None:
            tokens = tuple(self._key(payload))
        for token in tokens:
            block = self._blocks.get(token)
            if block is None:
                continue
            block.discard(obj_id)
            if not block:
                del self._blocks[token]

    def candidates(self, payload: Any) -> set[int]:
        found: set[int] = set()
        for token in self._key(payload):
            block = self._blocks.get(token)
            if block is None:
                continue
            if self._max_block_size is not None and len(block) > self._max_block_size:
                continue
            found.update(block)
        return found

    def block_sizes(self) -> dict[str, int]:
        """Diagnostic: current block sizes keyed by token."""
        return {token: len(block) for token, block in self._blocks.items()}
