"""Cosine trigram similarity (MusicBrainz-like dataset, Table 1).

The paper cites Nentwig & Rahm [39], who compare song records with a
cosine similarity over character trigram frequency vectors. We pad the
string with sentinel characters so short strings still produce trigrams.
"""

from __future__ import annotations

import math
from collections import Counter

from .base import SimilarityFunction, clamp01

_PAD = "\x00"


def trigram_profile(text: str) -> Counter:
    """Character-trigram frequency profile of a lower-cased string."""
    padded = f"{_PAD}{_PAD}{text.lower()}{_PAD}{_PAD}"
    return Counter(padded[i : i + 3] for i in range(len(padded) - 2))


def cosine_trigram(a: str, b: str) -> float:
    """Cosine similarity between trigram profiles, in [0, 1]."""
    profile_a = a if isinstance(a, Counter) else trigram_profile(a)
    profile_b = b if isinstance(b, Counter) else trigram_profile(b)
    if not profile_a or not profile_b:
        return 0.0
    # Iterate over the smaller profile for the dot product.
    if len(profile_b) < len(profile_a):
        profile_a, profile_b = profile_b, profile_a
    dot = sum(count * profile_b.get(gram, 0) for gram, count in profile_a.items())
    if dot == 0:
        return 0.0
    norm_a = math.sqrt(sum(c * c for c in profile_a.values()))
    norm_b = math.sqrt(sum(c * c for c in profile_b.values()))
    return clamp01(dot / (norm_a * norm_b))


class CosineTrigramSimilarity(SimilarityFunction):
    """Cosine similarity over character trigram profiles."""

    name = "cosine-trigram"

    def similarity(self, a, b) -> float:
        return cosine_trigram(a, b)

    def prepare(self, payload) -> Counter:
        """Build the trigram profile once per object, not once per pair."""
        return payload if isinstance(payload, Counter) else trigram_profile(payload)
