"""Normalized Levenshtein similarity (Yujian & Bo [49] style).

Used (mixed with Jaccard) for the Febrl-like synthetic dataset, Table 1.
"""

from __future__ import annotations

from .base import SimilarityFunction


def levenshtein_distance(a: str, b: str) -> int:
    """Classic edit distance with a two-row dynamic program.

    O(len(a) * len(b)) time, O(min(len(a), len(b))) memory.
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    # Keep the inner loop over the shorter string.
    if len(b) > len(a):
        a, b = b, a
    previous = list(range(len(b) + 1))
    current = [0] * (len(b) + 1)
    for i, ch_a in enumerate(a, start=1):
        current[0] = i
        for j, ch_b in enumerate(b, start=1):
            cost = 0 if ch_a == ch_b else 1
            current[j] = min(
                previous[j] + 1,      # deletion
                current[j - 1] + 1,   # insertion
                previous[j - 1] + cost,  # substitution
            )
        previous, current = current, previous
    return previous[len(b)]


def normalized_levenshtein(a: str, b: str) -> float:
    """Similarity ``1 - d(a, b) / max(|a|, |b|)`` in [0, 1]."""
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein_distance(a, b) / longest


class LevenshteinSimilarity(SimilarityFunction):
    """Normalized Levenshtein similarity between strings."""

    name = "levenshtein"

    def similarity(self, a: str, b: str) -> float:
        return normalized_levenshtein(a, b)
